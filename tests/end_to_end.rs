//! Cross-crate integration tests: drive the full stack (trace generation →
//! schemes → simulator → experiment tables) and check the paper's headline
//! qualitative results.

use ariadne::core::{AriadneConfig, AriadneScheme, SizeConfig};
use ariadne::mem::PageLocation;
use ariadne::sim::experiments::{self, ExperimentOptions};
use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne::trace::{AppName, Scenario};
use ariadne::zram::{MemoryConfig, SwapScheme};

fn quick_config() -> SimulationConfig {
    SimulationConfig::new(11).with_scale(512)
}

#[test]
fn facade_reexports_every_layer() {
    // Name one item through each re-exported module path so a broken
    // `pub use` in the facade fails this test rather than only downstream
    // builds. The paths mirror the crate map in README.md.
    let _codec: ariadne::compress::Algorithm = ariadne::compress::Algorithm::Lz4;
    let _page = ariadne::mem::PageId::new(ariadne::mem::AppId::new(1), ariadne::mem::Pfn::new(0));
    let _app: ariadne::trace::AppName = ariadne::trace::AppName::Twitter;
    let _memory = ariadne::zram::MemoryConfig::pixel7_scaled(1024);
    let _sizes = ariadne::core::SizeConfig::k1_k2_k16();
    let _spec: ariadne::sim::SchemeSpec = ariadne::sim::SchemeSpec::Zram;
    assert!(!ariadne::VERSION.is_empty());
}

#[test]
fn headline_result_ariadne_relaunches_faster_than_zram() {
    let scenario = Scenario::relaunch_study(AppName::Youtube);

    let mut zram = MobileSystem::new(SchemeSpec::Zram, quick_config());
    zram.run_scenario(&scenario);

    let mut ariadne = MobileSystem::new(
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        quick_config(),
    );
    ariadne.run_scenario(&scenario);

    let mut dram = MobileSystem::new(SchemeSpec::Dram, quick_config());
    dram.run_scenario(&scenario);

    let zram_ms = zram.average_relaunch_millis();
    let ariadne_ms = ariadne.average_relaunch_millis();
    let dram_ms = dram.average_relaunch_millis();

    assert!(
        ariadne_ms < zram_ms,
        "Ariadne ({ariadne_ms:.1} ms) must relaunch faster than ZRAM ({zram_ms:.1} ms)"
    );
    assert!(
        dram_ms <= ariadne_ms,
        "the DRAM lower bound ({dram_ms:.1} ms) cannot be slower than Ariadne ({ariadne_ms:.1} ms)"
    );
}

#[test]
fn ariadne_reduces_compression_related_cpu_relative_to_zram() {
    let scenario = Scenario::relaunch_study(AppName::Twitter);

    let mut zram = MobileSystem::new(SchemeSpec::Zram, quick_config());
    zram.run_scenario(&scenario);
    let mut ariadne = MobileSystem::new(
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        quick_config(),
    );
    ariadne.run_scenario(&scenario);

    let zram_cpu = zram.stats().compression_cpu();
    let ariadne_cpu = ariadne.stats().compression_cpu();
    assert!(
        ariadne_cpu.as_nanos() < zram_cpu.as_nanos() * 12 / 10,
        "Ariadne comp+decomp CPU ({:.2} ms) should not exceed ZRAM ({:.2} ms) by more than 20 %",
        ariadne_cpu.as_millis_f64(),
        zram_cpu.as_millis_f64()
    );
}

#[test]
fn every_scheme_preserves_page_reachability_under_pressure() {
    // Whatever the scheme does (compress, swap, writeback), a page that was
    // registered must still be readable afterwards — unless the scheme
    // explicitly dropped it, which only plain ZRAM may do.
    let scenario = Scenario::relaunch_study(AppName::Firefox);
    for spec in [
        SchemeSpec::Swap,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_al(SizeConfig::k1_k2_k16()),
    ] {
        let mut system = MobileSystem::new(spec, quick_config());
        system.run_scenario(&scenario);
        assert_eq!(
            system.stats().dropped_pages,
            0,
            "{} dropped pages it should have preserved",
            spec.label()
        );
    }
}

#[test]
fn ariadne_scheme_is_usable_directly_through_the_facade() {
    // Exercise the public API without the simulator: construct the scheme,
    // feed it pages and force a reclaim, exactly as a downstream user would.
    use ariadne::mem::reclaim::ReclaimReason;
    use ariadne::mem::{ReclaimRequest, SimClock};
    use ariadne::trace::WorkloadBuilder;
    use ariadne::zram::{AccessKind, SchemeContext};

    let workloads = vec![WorkloadBuilder::new(3).scale(1024).build(AppName::Edge)];
    let ctx = SchemeContext::new(3, &workloads);
    let mut clock = SimClock::new();
    let memory = MemoryConfig::pixel7_scaled(1024);
    let mut scheme = AriadneScheme::new(AriadneConfig::ehl_1k_2k_16k(memory));

    let pages: Vec<_> = workloads[0].pages.iter().map(|p| p.page).collect();
    for &page in pages.iter().take(64) {
        scheme.register_page(page, &mut clock, &ctx);
    }
    let outcome = scheme.reclaim(
        ReclaimRequest {
            target_pages: 16,
            reason: ReclaimReason::LowWatermark,
        },
        &mut clock,
        &ctx,
    );
    assert_eq!(outcome.pages_reclaimed, 16);
    let compressed = scheme.stats().compression_log[0];
    assert_eq!(scheme.location_of(compressed), PageLocation::Zpool);
    let access = scheme.access(compressed, AccessKind::Relaunch, &mut clock, &ctx);
    assert_eq!(access.found_in, PageLocation::Zpool);
    assert_eq!(scheme.location_of(compressed), PageLocation::Dram);
}

#[test]
fn experiment_harness_produces_a_table_for_every_catalog_entry() {
    // Smoke-run the cheap experiments end-to-end through the public harness.
    let opts = ExperimentOptions {
        seed: 1,
        scale: 512,
        quick: true,
        oracle: true,
        thermal: None,
    };
    for name in [
        "table1",
        "fig5",
        "table3",
        "multiapp",
        "writeback",
        "lifecycle",
    ] {
        let table = experiments::run_by_name(name, &opts)
            .unwrap_or_else(|| panic!("experiment {name} missing"));
        assert!(table.row_count() > 0, "{name} produced no rows");
    }
    assert_eq!(experiments::catalog().len(), 18);
}
