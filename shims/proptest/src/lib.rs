//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Supports the subset the workspace's property tests use: the `Strategy`
//! trait with `prop_map`/`boxed`, `arbitrary` via `any::<T>()`, range and
//! tuple strategies, `collection::vec`, `prop_oneof!`, and the `proptest!`
//! test macro with `ProptestConfig::with_cases`. Unlike the real crate it
//! does **not** shrink failing inputs — a failing case panics with the
//! standard assertion message plus the case number, which together with the
//! deterministic per-test seed is enough to reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] abstraction: composable random-value generators.

    use super::TestRng;

    /// A composable generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod arbitrary {
    //! `any::<T>()`: canonical strategies for primitive types.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy generating the full range of a primitive type.
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $method:ident),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.$method() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int! {
        u8 => next_u64,
        u16 => next_u64,
        u32 => next_u64,
        u64 => next_u64,
        usize => next_u64,
        i8 => next_u64,
        i16 => next_u64,
        i32 => next_u64,
        i64 => next_u64,
        isize => next_u64
    }

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                type Strategy = ($($name::Strategy,)+);

                fn arbitrary() -> Self::Strategy {
                    ($($name::arbitrary(),)+)
                }
            }
        )*};
    }

    impl_arbitrary_tuple! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }

    /// Returns the canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.usize_below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration (`ProptestConfig`).

    /// Subset of `proptest::test_runner::Config` the workspace uses.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic RNG driving all strategies (SplitMix64 via the rand shim).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for one property, seeded from the test's name so runs
    /// are reproducible and distinct tests draw distinct streams.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0x00A1_AD0E_5EED_u64;
        for byte in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(byte));
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in a half-open range.
    pub fn range<T: rand::SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        self.inner.gen_range(range)
    }
}

/// Uniform choice between strategies; all arms are boxed to a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: like `assert!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property assertion: like `assert_eq!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property assertion: like `assert_ne!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (
        $(#[test] fn $name:ident ( $($args:tt)* ) $body:block)*
    ) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default())
            $(#[test] fn $name ( $($args)* ) $body)*);
    };
    (@expand ($config:expr)
        $(#[test] fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($pat,)*) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)*
                    );
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case}/{} failed for `{}`",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_draws_from_every_arm() {
        let strategy = prop_oneof![0usize..1, 1usize..2, 2usize..3];
        let mut rng = crate::TestRng::for_test("union_draws_from_every_arm");
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[strategy.generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_respects_size_range() {
        let strategy = crate::collection::vec(any::<u8>(), 3..7);
        let mut rng = crate::TestRng::for_test("vec_respects_size_range");
        for _ in 0..128 {
            let v = strategy.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_pairs_are_in_range(pair in (0usize..10, any::<bool>())) {
            prop_assert!(pair.0 < 10);
        }

        #[test]
        fn mapped_strategies_apply(n in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 10);
        }
    }
}
