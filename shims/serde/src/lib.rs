//! Offline stand-in for `serde` (see `shims/README.md`).
//!
//! Provides the `Serialize` / `Deserialize` trait names and the derive
//! macros under the paths the real crate uses. The traits are markers with a
//! blanket impl, so bounds like `T: Serialize` are always satisfiable; the
//! derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
