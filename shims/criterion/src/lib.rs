//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Provides the harness surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, per-input
//! benches, throughput annotation — and really measures wall-clock time,
//! printing one line per benchmark. It performs none of criterion's
//! statistical analysis; the numbers are indicative only, which matches how
//! the workspace treats host-side wall-clock (simulated latency comes from
//! the calibrated cost model, not from these benches).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_with_input(BenchmarkId::from_parameter(""), &(), |b, ()| f(b));
        group.finish();
        self
    }
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`, timing the routine passed to
    /// [`Bencher::iter`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.mean);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
                let gib_s = bytes as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!("  ({gib_s:.3} GiB/s)")
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let elem_s = n as f64 / mean.as_secs_f64();
                format!("  ({elem_s:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:>12.3} µs/iter{}",
            self.name,
            id.label,
            mean.as_secs_f64() * 1e6,
            rate
        );
    }
}

/// Adapter so `bench_function` accepts either a string or a [`BenchmarkId`].
pub struct BenchIdOrName(BenchmarkId);

impl From<&str> for BenchIdOrName {
    fn from(s: &str) -> Self {
        BenchIdOrName(BenchmarkId::from_parameter(s))
    }
}

impl From<String> for BenchIdOrName {
    fn from(s: String) -> Self {
        BenchIdOrName(BenchmarkId::from_parameter(s))
    }
}

impl From<BenchmarkId> for BenchIdOrName {
    fn from(id: BenchmarkId) -> Self {
        BenchIdOrName(id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, running one warm-up plus `sample_size` measured
    /// iterations, and records the mean per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Opaque value barrier preventing the optimizer from deleting the routine.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name. Both the `name/config/targets` and the positional
/// forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_reports() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut group = criterion.benchmark_group("shim_smoke");
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up plus sample_size iterations");
    }

    criterion_group! {
        name = demo_group;
        config = Criterion::default().sample_size(2);
        targets = demo_target
    }

    fn demo_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macro_generated_group_runs() {
        demo_group();
    }
}
