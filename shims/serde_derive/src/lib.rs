//! No-op stand-in for `serde_derive` (offline build, see `shims/README.md`).
//!
//! The derives expand to nothing: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-compatible annotations and
//! never serializes through them, so an empty expansion keeps every type
//! compiling without pulling in the real code generator.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
