//! Offline stand-in for `rand` 0.8 (see `shims/README.md`).
//!
//! Implements the small slice of the `rand` API the workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_bool,
//! gen_range}` and `seq::SliceRandom::shuffle` — on top of a SplitMix64
//! generator. SplitMix64 passes BigCrush for the statistical properties the
//! synthetic workload generators rely on (uniformity, independence of
//! low/high bits) and is deterministic across platforms, which the
//! trace-calibration tests require.

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `low..high` (half-open). Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (range.start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let fraction = hits as f64 / 20_000.0;
        assert!((fraction - 0.25).abs() < 0.02, "got {fraction}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }
}
