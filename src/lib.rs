//! Ariadne reproduction — facade crate.
//!
//! This crate re-exports the whole workspace behind a single dependency so
//! downstream users (and the bundled examples and integration tests) can
//! write `use ariadne::...` and reach every layer:
//!
//! * [`compress`] — LZ4-style / LZO-style / BDI codecs, chunked framing and
//!   the chunk-size latency model;
//! * [`mem`] — the simulated memory hierarchy (DRAM, LRU lists, zpool, flash
//!   swap, clock, CPU accounting, reclaim control);
//! * [`trace`] — calibrated synthetic workloads for the ten applications the
//!   paper evaluates;
//! * [`zram`] — the `SwapScheme` abstraction and the DRAM / SWAP / ZRAM
//!   baselines;
//! * [`core`] — Ariadne itself (HotnessOrg, AdaptiveComp, PreDecomp);
//! * [`sim`] — the whole-system simulator and the experiment harness that
//!   regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
//! use ariadne::trace::{AppName, Scenario};
//!
//! let config = SimulationConfig::new(42).with_scale(512);
//! let mut system = MobileSystem::new(SchemeSpec::Zram, config);
//! system.run_scenario(&Scenario::relaunch_study(AppName::Twitter));
//! assert_eq!(system.measurements().len(), 1);
//! ```
//!
//! # Concurrent scenarios
//!
//! Overlapping multi-app timelines are composed with the scenario DSL and
//! replayed through the deterministic discrete-event engine (the same
//! snippet appears in README.md):
//!
//! ```
//! use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
//! use ariadne::trace::{AppName, ScenarioBuilder};
//!
//! let scenario = ScenarioBuilder::new("morning-rush")
//!     // staggered launches whose lifetimes overlap
//!     .launch_storm(&[AppName::Twitter, AppName::Youtube, AppName::TikTok], 200)
//!     .after_millis(500)
//!     // a 30 % pressure spike lands at the same instant as the relaunch
//!     .relaunch_under_pressure(AppName::Twitter, 0, 30)
//!     .after_millis(250)
//!     .relaunch(AppName::Youtube, 0)
//!     // let ZSWAP flush / Ariadne pre-decompress between events
//!     .with_background_drains()
//!     .build();
//! assert!(scenario.has_overlap());
//!
//! let config = SimulationConfig::new(42).with_scale(512);
//! let mut system = MobileSystem::new(SchemeSpec::Zram, config);
//! system.run_timed(&scenario);
//! assert_eq!(system.measurements().len(), 2);
//! ```
//!
//! # Process lifecycle (lmkd kills and cold launches)
//!
//! When a scheme cannot absorb memory pressure, the low-memory killer
//! terminates cached background apps — their entire footprint is freed
//! through `SwapScheme::release_app` and the next relaunch is re-costed
//! as a full cold launch:
//!
//! ```
//! use ariadne::sim::{AppState, MobileSystem, RelaunchKind, SchemeSpec, SimulationConfig};
//! use ariadne::trace::AppName;
//!
//! let config = SimulationConfig::new(42).with_scale(512);
//! let mut system = MobileSystem::new(SchemeSpec::Zram, config);
//! system.launch(AppName::Twitter);
//! system.background(AppName::Twitter);
//!
//! // What lmkd does when the PSI stall signal crosses its threshold
//! // (scenarios built with `.with_lmkd()` arm it on the event queue):
//! let freed = system.kill_app(AppName::Twitter);
//! assert!(freed.total_pages() > 0);
//! assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Killed));
//!
//! // The process is gone: the next relaunch pays the full cold launch.
//! let measurement = system.relaunch(AppName::Twitter, 0);
//! assert_eq!(measurement.kind, RelaunchKind::Cold);
//! assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Alive));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ariadne_compress as compress;
pub use ariadne_core as core;
pub use ariadne_mem as mem;
pub use ariadne_sim as sim;
pub use ariadne_trace as trace;
pub use ariadne_zram as zram;

/// The workspace version (all crates are released in lockstep).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
