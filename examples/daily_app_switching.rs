//! A day of application switching: users relaunch applications more than a
//! hundred times per day (§1 of the paper). This example replays several
//! rounds of the light switching workload and reports the latency and CPU
//! cost each swap scheme accumulates.
//!
//! Run with `cargo run --example daily_app_switching --release`.

use ariadne::core::SizeConfig;
use ariadne::sim::{EnergyModel, MobileSystem, SchemeSpec, SimulationConfig};
use ariadne::trace::Scenario;

fn main() {
    let config = SimulationConfig::new(7).with_scale(128);
    let scenario = Scenario::light_switching(2); // 20 relaunches
    let energy_model = EnergyModel::pixel7();

    println!("Two rounds of switching through all ten applications:\n");
    println!(
        "{:<26} {:>10} {:>16} {:>16} {:>12}",
        "scheme", "relaunches", "avg relaunch ms", "comp+decomp cpu", "energy (J)"
    );
    for spec in [
        SchemeSpec::Dram,
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut system = MobileSystem::new(spec, config);
        system.run_scenario(&scenario);
        let cpu_ms = system.stats().compression_cpu().as_millis_f64() * config.scale as f64;
        let energy = energy_model.energy_joules(
            60.0,
            8.0,
            system.cpu(),
            &system.stats().flash,
            config.scale,
        );
        println!(
            "{:<26} {:>10} {:>16.1} {:>13.1} ms {:>12.1}",
            spec.label(),
            system.measurements().len(),
            system.average_relaunch_millis(),
            cpu_ms,
            energy,
        );
    }
}
