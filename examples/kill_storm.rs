//! Ariadne surviving a memory hog that forces kills under ZRAM.
//!
//! Runs the canonical kill-storm scenario — six apps launched in an
//! overlapping storm, a foreground memory hog allocating in critical
//! bursts, background churn, then a relaunch sweep — with the low-memory
//! killer armed, for all five schemes. Schemes whose relaunches stall
//! (SWAP re-reads everything from flash; ZRAM decompresses on demand and
//! drops data on zpool overflow) push the PSI signal over lmkd's threshold
//! and lose cached apps; every killed app comes back as a *cold* launch.
//! Ariadne keeps its relaunch stalls low enough to ride out the same storm
//! with more of its apps alive.
//!
//! ```text
//! cargo run --release --example kill_storm
//! ```

use ariadne::sim::experiments::lifecycle::evaluated_schemes;
use ariadne::sim::experiments::runner::run_cells;
use ariadne::sim::{MobileSystem, RelaunchKind, SimulationConfig};
use ariadne::trace::TimedScenario;

fn main() {
    let scenario = TimedScenario::kill_storm();
    assert!(scenario.lmkd, "the storm arms the low-memory killer");
    println!(
        "kill storm: {} events over {} ms across {} apps (lmkd armed)\n",
        scenario.events.len(),
        scenario.duration_millis(),
        scenario.apps().len()
    );

    // One OS thread per scheme; a vendor-sized zpool (1/16) that the hog
    // genuinely drives past what it can absorb.
    let config = SimulationConfig::new(42)
        .with_scale(256)
        .with_zpool_shrink(16);
    let rows = run_cells(evaluated_schemes(), |spec| {
        let mut system = MobileSystem::new(spec, config);
        system.run_timed(&scenario);
        (
            spec.label(),
            system.kills(),
            system.measurements_of(RelaunchKind::Cold).len(),
            system.average_relaunch_millis_of(RelaunchKind::Warm),
            system.average_relaunch_millis_of(RelaunchKind::Cold),
            system.alive_apps(),
        )
    });

    println!(
        "{:<24} {:>6} {:>6} {:>12} {:>12} {:>6}",
        "scheme", "kills", "cold", "avg warm", "avg cold", "alive"
    );
    let mut kills_by_scheme = Vec::new();
    for (scheme, kills, cold, warm_ms, cold_ms, alive) in rows {
        println!(
            "{scheme:<24} {kills:>6} {cold:>6} {warm_ms:>10.2}ms {cold_ms:>10.2}ms {alive:>6}"
        );
        kills_by_scheme.push((scheme, kills));
    }

    let kills_of = |name: &str| {
        kills_by_scheme
            .iter()
            .find(|(scheme, _)| scheme == name)
            .map(|(_, kills)| *kills)
            .unwrap_or(0)
    };
    assert!(
        kills_of("ZRAM") > kills_of("Ariadne-EHL-1K-2K-16K"),
        "ZRAM must lose strictly more apps than Ariadne in this storm"
    );
    println!(
        "\nAriadne lost {} app(s) where ZRAM lost {} — fewer kills, fewer cold launches.",
        kills_of("Ariadne-EHL-1K-2K-16K"),
        kills_of("ZRAM"),
    );
}
