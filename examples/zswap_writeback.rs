//! Flash wear and data loss under sustained memory pressure.
//!
//! Plain ZRAM never touches flash but may drop compressed data when the
//! zpool fills (applications then effectively relaunch cold); ZSWAP and
//! Ariadne write compressed data back to flash instead. Because Ariadne
//! writes *compressed cold* data only, it keeps both relaunch latency and
//! flash wear low.
//!
//! Run with `cargo run --example zswap_writeback --release`.

use ariadne::core::SizeConfig;
use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne::trace::Scenario;

fn main() {
    let scale = 128;
    let config = SimulationConfig::new(5).with_scale(scale);
    let scenario = Scenario::heavy_switching(2);

    println!(
        "{:<26} {:>14} {:>16} {:>16} {:>16}",
        "scheme", "flash writes", "MB written (fs)", "dropped pages", "avg relaunch ms"
    );
    for spec in [
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut system = MobileSystem::new(spec, config);
        system.run_scenario(&scenario);
        let stats = system.stats();
        println!(
            "{:<26} {:>14} {:>16.1} {:>16} {:>16.1}",
            spec.label(),
            stats.flash.writes,
            stats.flash.bytes_written as f64 * scale as f64 / (1024.0 * 1024.0),
            stats.dropped_pages,
            system.average_relaunch_millis(),
        );
    }
    println!(
        "\nAriadne's hot and warm data stays in DRAM or the zpool; only compressed cold\n\
         data reaches flash, which preserves flash lifetime relative to raw swapping."
    );
}
