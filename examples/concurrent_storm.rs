//! Concurrent multi-app storm through the discrete-event engine.
//!
//! Builds an overlapping three-app timeline with the scenario DSL — a
//! launch storm, background churn, and relaunches arriving while
//! memory-pressure spikes are still being absorbed — then runs it for all
//! five schemes on the parallel grid runner (one OS thread per scheme,
//! results merged in a fixed order).
//!
//! ```text
//! cargo run --release --example concurrent_storm
//! ```

use ariadne::sim::experiments::runner::{run_grid, GridCell};
use ariadne::sim::SimulationConfig;
use ariadne::trace::{AppName, ScenarioBuilder};

fn main() {
    // Three apps with overlapping lifetimes: YouTube launches before
    // Twitter is backgrounded, TikTok relaunches while a 30 % pressure
    // spike is being absorbed.
    let scenario = ScenarioBuilder::new("three-app-demo")
        .launch_storm(&[AppName::Twitter, AppName::Youtube, AppName::TikTok], 200)
        .after_millis(500)
        .relaunch_under_pressure(AppName::Twitter, 0, 30)
        .after_millis(250)
        .relaunch(AppName::Youtube, 0)
        .pressure(20)
        .after_millis(250)
        .relaunch(AppName::TikTok, 0)
        .with_background_drains()
        .build();
    assert!(scenario.has_overlap());

    let config = SimulationConfig::new(42).with_scale(256);
    let cells: Vec<GridCell> = ariadne::sim::experiments::concurrent::evaluated_schemes()
        .into_iter()
        .map(|spec| GridCell {
            spec,
            scenario: scenario.clone(),
        })
        .collect();

    println!(
        "{} events over {} ms across {} apps\n",
        scenario.events.len(),
        scenario.duration_millis(),
        scenario.apps().len()
    );
    println!(
        "{:<24} {:>14} {:>10} {:>10} {:>10}",
        "scheme", "avg relaunch", "comp ops", "decomp ops", "events"
    );
    for outcome in run_grid(config, cells) {
        println!(
            "{:<24} {:>12.2}ms {:>10} {:>10} {:>10}",
            outcome.scheme,
            outcome.average_relaunch_millis,
            outcome.compression_ops,
            outcome.decompression_ops,
            outcome.events
        );
    }
}
