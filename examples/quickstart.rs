//! Quickstart: compare one application relaunch under ZRAM and Ariadne.
//!
//! Run with `cargo run --example quickstart --release`.

use ariadne::core::SizeConfig;
use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne::trace::{AppName, Scenario};

fn main() {
    // Scale 1/128 keeps the example fast; the relative results are the same
    // as at full scale.
    let config = SimulationConfig::new(2024).with_scale(128);
    let scenario = Scenario::relaunch_study(AppName::Youtube);

    println!("Relaunching YouTube after nine other apps filled memory:\n");
    println!(
        "{:<26} {:>14} {:>12} {:>14}",
        "scheme", "relaunch (ms)", "comp ops", "comp ratio"
    );
    for spec in [
        SchemeSpec::Dram,
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        SchemeSpec::ariadne_al(SizeConfig::k1_k2_k16()),
    ] {
        let mut system = MobileSystem::new(spec, config);
        system.run_scenario(&scenario);
        println!(
            "{:<26} {:>14.1} {:>12} {:>13.2}x",
            spec.label(),
            system.average_relaunch_millis(),
            system.stats().compression_ops,
            system.stats().compression_ratio(),
        );
    }
    println!(
        "\nAriadne keeps relaunch-critical (hot) data uncompressed and compresses cold\n\
         data in large chunks, so it relaunches close to the DRAM lower bound while\n\
         still reclaiming as much memory as ZRAM."
    );
}
