//! Gaming under memory pressure: BangDream is the paper's most
//! memory-hungry application (821 MB of anonymous data after five minutes)
//! and the one with the least hot data. This example relaunches it
//! repeatedly while other applications keep the device under pressure and
//! inspects where its relaunch data was found each time.
//!
//! Run with `cargo run --example gaming_under_pressure --release`.

use ariadne::core::SizeConfig;
use ariadne::mem::PageLocation;
use ariadne::sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne::trace::{AppName, Scenario, ScenarioEvent, ScenarioKind};

fn gaming_scenario(rounds: usize) -> Scenario {
    let mut events = Vec::new();
    for app in AppName::ALL {
        events.push(ScenarioEvent::Launch(app));
        events.push(ScenarioEvent::Background(app));
    }
    for round in 0..rounds {
        events.push(ScenarioEvent::Relaunch {
            app: AppName::BangDream,
            relaunch_index: round,
        });
        events.push(ScenarioEvent::Background(AppName::BangDream));
        // A couple of heavyweight apps run in between gaming sessions.
        for other in [AppName::Youtube, AppName::Firefox] {
            events.push(ScenarioEvent::Relaunch {
                app: other,
                relaunch_index: round,
            });
            events.push(ScenarioEvent::Background(other));
        }
    }
    Scenario {
        kind: ScenarioKind::Heavy,
        events,
    }
}

fn main() {
    let config = SimulationConfig::new(99).with_scale(128);
    let scenario = gaming_scenario(3);

    for spec in [
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut system = MobileSystem::new(spec, config);
        system.run_scenario(&scenario);
        println!("== {} ==", spec.label());
        for measurement in system
            .measurements()
            .iter()
            .filter(|m| m.app == AppName::BangDream)
        {
            let from =
                |location: PageLocation| measurement.found_in.get(&location).copied().unwrap_or(0);
            println!(
                "  relaunch: {:>8.1} ms   (dram {:>5}, zpool {:>5}, flash {:>4}, prefetched {:>4})",
                measurement.full_scale_millis(config.scale),
                from(PageLocation::Dram),
                from(PageLocation::Zpool),
                from(PageLocation::Flash),
                from(PageLocation::PreDecompBuffer),
            );
        }
        println!(
            "  compression ops: {}, ratio {:.2}x, flash writes {}\n",
            system.stats().compression_ops,
            system.stats().compression_ratio(),
            system.stats().flash.writes,
        );
    }
}
