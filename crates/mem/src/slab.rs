//! Dense slab storage with generation-checked keys, intrusive link chains
//! and a fast non-cryptographic hasher.
//!
//! The per-page bookkeeping structures in this workspace (zpool entries,
//! flash slots, LRU nodes, hotness lists) all used to be `HashMap`s keyed by
//! rich identifiers, with `BTreeSet`s maintaining deterministic secondary
//! orders. At simulation scale those probes dominate the profile: every
//! fault, store and kill pays SipHash over multi-word keys plus B-tree node
//! churn. This module provides the dense replacements:
//!
//! * [`Slab`] — a `Vec`-backed arena with a free list. Each occupied slot is
//!   addressed by a [`SlabKey`] carrying a *generation*, so a key held across
//!   a remove/reuse cycle is detected as stale instead of aliasing the new
//!   occupant (the classic ABA hazard of index reuse).
//! * [`Chain`] — an intrusive doubly-linked list threaded *through* slab
//!   slots. Every slot carries two independent link pairs ("channels"), so a
//!   value can sit on two orders at once (e.g. an oracle entry on both the
//!   recency list and the payload-budget list). Iteration order is insertion
//!   order, which is exactly the deterministic order the `BTreeSet`-based
//!   indices provided before (handles/slots are allocated in ascending order,
//!   so ascending-key order ≡ insertion order).
//! * [`FxHasher`] — the Firefox/rustc multiply-rotate hash for the hash maps
//!   that must remain (key → slot lookups). It is not DoS-resistant, which is
//!   fine for a simulator hashing its own dense identifiers, and it is
//!   several times cheaper than SipHash-1-3 on small keys.
//!
//! None of this changes any simulated outcome: the structures store the same
//! values and expose the same deterministic orders; only the cost of
//! maintaining them changes. The determinism and oracle-equivalence suites
//! pin that property.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Sentinel index meaning "no slot" in intrusive links.
pub const NIL: u32 = u32::MAX;

/// Number of independent intrusive link channels per slot.
pub const CHANNELS: usize = 2;

// ---------------------------------------------------------------------------
// Fast hashing
// ---------------------------------------------------------------------------

/// The multiply-rotate hasher used by rustc ("FxHash").
///
/// Deterministic (no per-process random seed) and very fast on the small
/// fixed-size keys this workspace hashes (`PageId`, `AppId`, handles). Not
/// collision-resistant against adversarial input — do not use for untrusted
/// keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

/// Key addressing an occupied [`Slab`] slot: a dense index plus the slot's
/// generation at insertion time. A stale key (the slot was freed, possibly
/// reused) fails generation validation instead of silently aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The slot index (dense, reused after removal).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation the slot had when this key was issued.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Pack into a single `u64` (generation in the high half). Useful for
    /// embedding a slab key in an existing `u64` handle type.
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Inverse of [`SlabKey::pack`].
    #[must_use]
    pub fn unpack(raw: u64) -> SlabKey {
        SlabKey {
            index: (raw & 0xffff_ffff) as u32,
            generation: (raw >> 32) as u32,
        }
    }
}

impl fmt::Display for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab:{}g{}", self.index, self.generation)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Links {
    prev: u32,
    next: u32,
}

const UNLINKED: Links = Links {
    prev: NIL,
    next: NIL,
};

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
    links: [Links; CHANNELS],
}

/// A dense arena with generation-checked keys and per-slot intrusive links.
///
/// ```
/// use ariadne_mem::slab::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(b), Some("beta"));
/// // The freed slot is reused, but the old key no longer resolves:
/// let c = slab.insert("gamma");
/// assert_eq!(c.index(), b.index());
/// assert_eq!(slab.get(b), None);
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Create an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Create an empty slab with room for `capacity` values.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, reusing a freed slot if one exists.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-list slot was occupied");
            slot.value = Some(value);
            slot.links = [UNLINKED; CHANNELS];
            SlabKey {
                index,
                generation: slot.generation,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 indices");
            assert!(index != NIL, "slab full");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
                links: [UNLINKED; CHANNELS],
            });
            SlabKey {
                index,
                generation: 0,
            }
        }
    }

    fn slot(&self, key: SlabKey) -> Option<&Slot<T>> {
        self.slots
            .get(key.index as usize)
            .filter(|s| s.generation == key.generation && s.value.is_some())
    }

    /// Whether `key` addresses a live value (right slot *and* generation).
    #[must_use]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.slot(key).is_some()
    }

    /// The value behind `key`, if it is still live.
    #[must_use]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        self.slot(key).and_then(|s| s.value.as_ref())
    }

    /// Mutable access to the value behind `key`, if it is still live.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        self.slots
            .get_mut(key.index as usize)
            .filter(|s| s.generation == key.generation && s.value.is_some())
            .and_then(|s| s.value.as_mut())
    }

    /// Remove the value behind `key`. The slot's generation is bumped so any
    /// outstanding copy of `key` turns stale. The caller must have unlinked
    /// the slot from every [`Chain`] first (checked in debug builds).
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation || slot.value.is_none() {
            return None;
        }
        debug_assert!(
            slot.links.iter().all(|l| *l == UNLINKED),
            "removing a slot still linked on a chain"
        );
        slot.generation = slot.generation.wrapping_add(1);
        self.len -= 1;
        self.free.push(key.index);
        slot.value.take()
    }

    /// The value at raw `index`, ignoring generations. Intended for chain
    /// traversal, where the chain invariant guarantees liveness.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    #[must_use]
    pub fn value_at(&self, index: u32) -> &T {
        self.slots[index as usize]
            .value
            .as_ref()
            .expect("chained slot is occupied")
    }

    /// Mutable variant of [`Slab::value_at`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn value_at_mut(&mut self, index: u32) -> &mut T {
        self.slots[index as usize]
            .value
            .as_mut()
            .expect("chained slot is occupied")
    }

    /// The current generation-checked key for the occupied slot at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    #[must_use]
    pub fn key_at(&self, index: u32) -> SlabKey {
        let slot = &self.slots[index as usize];
        assert!(slot.value.is_some(), "key_at on a vacant slot");
        SlabKey {
            index,
            generation: slot.generation,
        }
    }

    /// Iterate over occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    SlabKey {
                        index: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Drop every value and reset the free list (generations are kept so
    /// keys issued before the clear stay stale).
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.value.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                slot.links = [UNLINKED; CHANNELS];
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }

    fn links(&self, index: u32, channel: usize) -> Links {
        self.slots[index as usize].links[channel]
    }

    fn links_mut(&mut self, index: u32, channel: usize) -> &mut Links {
        &mut self.slots[index as usize].links[channel]
    }
}

// ---------------------------------------------------------------------------
// Intrusive chains
// ---------------------------------------------------------------------------

/// An intrusive doubly-linked list threaded through [`Slab`] slots on one of
/// the [`CHANNELS`] link channels.
///
/// The chain stores raw indices (no generations): the owner guarantees that
/// every linked slot is live, and [`Slab::remove`] asserts (in debug builds)
/// that a slot leaves every chain before it is freed. Iteration runs
/// head→tail, i.e. insertion order under pure [`Chain::push_back`] use —
/// the deterministic order that replaced the ascending-key `BTreeSet`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for Chain {
    fn default() -> Self {
        Self::new()
    }
}

impl Chain {
    /// An empty chain.
    #[must_use]
    pub const fn new() -> Self {
        Chain {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    #[must_use]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// First (oldest under `push_back`) linked slot index.
    #[must_use]
    pub fn head(self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last (newest under `push_back`) linked slot index.
    #[must_use]
    pub fn tail(self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Append the slot at `index` to the tail.
    pub fn push_back<T>(&mut self, slab: &mut Slab<T>, channel: usize, index: u32) {
        *slab.links_mut(index, channel) = Links {
            prev: self.tail,
            next: NIL,
        };
        if self.tail != NIL {
            slab.links_mut(self.tail, channel).next = index;
        } else {
            self.head = index;
        }
        self.tail = index;
        self.len += 1;
    }

    /// Prepend the slot at `index` to the head.
    pub fn push_front<T>(&mut self, slab: &mut Slab<T>, channel: usize, index: u32) {
        *slab.links_mut(index, channel) = Links {
            prev: NIL,
            next: self.head,
        };
        if self.head != NIL {
            slab.links_mut(self.head, channel).prev = index;
        } else {
            self.tail = index;
        }
        self.head = index;
        self.len += 1;
    }

    /// Unlink the slot at `index` from the chain.
    pub fn unlink<T>(&mut self, slab: &mut Slab<T>, channel: usize, index: u32) {
        let Links { prev, next } = slab.links(index, channel);
        if prev != NIL {
            slab.links_mut(prev, channel).next = next;
        } else {
            debug_assert_eq!(self.head, index, "unlinking a slot not on this chain");
            self.head = next;
        }
        if next != NIL {
            slab.links_mut(next, channel).prev = prev;
        } else {
            debug_assert_eq!(self.tail, index, "unlinking a slot not on this chain");
            self.tail = prev;
        }
        *slab.links_mut(index, channel) = UNLINKED;
        self.len -= 1;
    }

    /// Move an already-linked slot to the head (LRU "touch").
    pub fn move_front<T>(&mut self, slab: &mut Slab<T>, channel: usize, index: u32) {
        if self.head == index {
            return;
        }
        self.unlink(slab, channel, index);
        self.push_front(slab, channel, index);
    }

    /// Move an already-linked slot to the tail.
    pub fn move_back<T>(&mut self, slab: &mut Slab<T>, channel: usize, index: u32) {
        if self.tail == index {
            return;
        }
        self.unlink(slab, channel, index);
        self.push_back(slab, channel, index);
    }

    /// Iterate slot indices head→tail.
    pub fn indices<'a, T>(self, slab: &'a Slab<T>, channel: usize) -> ChainIndices<'a, T> {
        ChainIndices {
            slab,
            channel,
            cursor: self.head,
            rev_cursor: self.tail,
            done: self.len == 0,
        }
    }
}

/// Iterator over the slot indices of a [`Chain`], head→tail (reversible).
pub struct ChainIndices<'a, T> {
    slab: &'a Slab<T>,
    channel: usize,
    cursor: u32,
    rev_cursor: u32,
    done: bool,
}

impl<T> Iterator for ChainIndices<'_, T> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.done {
            return None;
        }
        let index = self.cursor;
        if index == self.rev_cursor {
            self.done = true;
        } else {
            self.cursor = self.slab.links(index, self.channel).next;
        }
        Some(index)
    }
}

impl<T> DoubleEndedIterator for ChainIndices<'_, T> {
    fn next_back(&mut self) -> Option<u32> {
        if self.done {
            return None;
        }
        let index = self.rev_cursor;
        if index == self.cursor {
            self.done = true;
        } else {
            self.rev_cursor = self.slab.links(index, self.channel).prev;
        }
        Some(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10u32);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn generation_detects_aba() {
        let mut slab = Slab::new();
        let stale = slab.insert("first");
        slab.remove(stale);
        let fresh = slab.insert("second");
        assert_eq!(fresh.index(), stale.index(), "slot is reused");
        assert_ne!(fresh.generation(), stale.generation());
        assert!(!slab.contains(stale));
        assert_eq!(slab.get(stale), None);
        assert_eq!(slab.get(fresh), Some(&"second"));
        assert_eq!(slab.remove(stale), None);
        assert_eq!(slab.remove(fresh), Some("second"));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut slab = Slab::new();
        let first = slab.insert(0u8);
        slab.remove(first);
        let key = slab.insert(1u8);
        assert!(key.generation() > 0);
        assert_eq!(SlabKey::unpack(key.pack()), key);
    }

    #[test]
    fn key_at_matches_iter() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..5).map(|i| slab.insert(i)).collect();
        slab.remove(keys[2]);
        let listed: Vec<_> = slab.iter().map(|(k, _)| k).collect();
        assert_eq!(listed.len(), 4);
        for key in listed {
            assert_eq!(slab.key_at(key.index()), key);
        }
    }

    #[test]
    fn chain_preserves_insertion_order() {
        let mut slab = Slab::new();
        let mut chain = Chain::new();
        let keys: Vec<_> = (0..4).map(|i| slab.insert(i * 10)).collect();
        for key in &keys {
            chain.push_back(&mut slab, 0, key.index());
        }
        let order: Vec<_> = chain.indices(&slab, 0).map(|i| *slab.value_at(i)).collect();
        assert_eq!(order, vec![0, 10, 20, 30]);
        assert_eq!(chain.head(), Some(keys[0].index()));
        assert_eq!(chain.tail(), Some(keys[3].index()));
    }

    #[test]
    fn chain_unlink_middle_and_ends() {
        let mut slab = Slab::new();
        let mut chain = Chain::new();
        let keys: Vec<_> = (0..5).map(|i| slab.insert(i)).collect();
        for key in &keys {
            chain.push_back(&mut slab, 0, key.index());
        }
        chain.unlink(&mut slab, 0, keys[2].index()); // middle
        chain.unlink(&mut slab, 0, keys[0].index()); // head
        chain.unlink(&mut slab, 0, keys[4].index()); // tail
        let left: Vec<_> = chain.indices(&slab, 0).map(|i| *slab.value_at(i)).collect();
        assert_eq!(left, vec![1, 3]);
        assert_eq!(chain.len(), 2);
        // The unlinked slots can now be removed.
        assert_eq!(slab.remove(keys[2]), Some(2));
    }

    #[test]
    fn two_channels_are_independent() {
        let mut slab = Slab::new();
        let mut by_insert = Chain::new();
        let mut by_touch = Chain::new();
        let keys: Vec<_> = (0..3).map(|i| slab.insert(i)).collect();
        for key in &keys {
            by_insert.push_back(&mut slab, 0, key.index());
            by_touch.push_back(&mut slab, 1, key.index());
        }
        by_touch.move_front(&mut slab, 1, keys[2].index());
        let insert_order: Vec<_> = by_insert
            .indices(&slab, 0)
            .map(|i| *slab.value_at(i))
            .collect();
        let touch_order: Vec<_> = by_touch
            .indices(&slab, 1)
            .map(|i| *slab.value_at(i))
            .collect();
        assert_eq!(insert_order, vec![0, 1, 2]);
        assert_eq!(touch_order, vec![2, 0, 1]);
    }

    #[test]
    fn chain_reverse_iteration() {
        let mut slab = Slab::new();
        let mut chain = Chain::new();
        for i in 0..4 {
            let key = slab.insert(i);
            chain.push_back(&mut slab, 0, key.index());
        }
        let rev: Vec<_> = chain
            .indices(&slab, 0)
            .rev()
            .map(|i| *slab.value_at(i))
            .collect();
        assert_eq!(rev, vec![3, 2, 1, 0]);
    }

    #[test]
    fn clear_invalidates_keys() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..3).map(|i| slab.insert(i)).collect();
        slab.clear();
        assert!(slab.is_empty());
        for key in keys {
            assert!(!slab.contains(key));
        }
        let fresh = slab.insert(9);
        assert_eq!(slab.get(fresh), Some(&9));
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(0x1234_5678_u64);
        let b = build.hash_one(0x1234_5678_u64);
        let c = build.hash_one(0x1234_5679_u64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Byte-slice and integer paths both terminate and differ per input.
        let d = build.hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice());
        let e = build.hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice());
        assert_ne!(d, e);
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&999), Some(&1998));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
