//! Page frames, application identifiers, hotness levels and page locations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Page size used throughout the workspace (4 KiB, as on the Pixel 7).
pub const PAGE_SIZE: usize = 4096;

/// A page frame number.
///
/// PFNs are per-application in this reproduction (each app's anonymous
/// address space is numbered from zero), which matches how the paper's traces
/// record pages as (UID, PFN) pairs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Pfn(u64);

impl Pfn {
    /// Create a PFN.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Pfn(value)
    }

    /// The raw frame number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The PFN `offset` frames after this one.
    #[must_use]
    pub fn offset(self, offset: u64) -> Pfn {
        Pfn(self.0 + offset)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{}", self.0)
    }
}

/// An application identifier (Android UID in the paper's traces).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AppId(u32);

impl AppId {
    /// Create an application id.
    #[must_use]
    pub const fn new(value: u32) -> Self {
        AppId(value)
    }

    /// The raw id.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app:{}", self.0)
    }
}

/// A globally unique page identifier: application plus frame number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PageId {
    app: AppId,
    pfn: Pfn,
}

impl PageId {
    /// Create a page id.
    #[must_use]
    pub const fn new(app: AppId, pfn: Pfn) -> Self {
        PageId { app, pfn }
    }

    /// The owning application.
    #[must_use]
    pub fn app(self) -> AppId {
        self.app
    }

    /// The page frame number within the application.
    #[must_use]
    pub fn pfn(self) -> Pfn {
        self.pfn
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.app, self.pfn)
    }
}

/// The three hotness levels Ariadne distinguishes (§3, Insight 1).
///
/// * `Hot` — used during application relaunch; directly determines relaunch
///   latency.
/// * `Warm` — potentially used during execution after the relaunch.
/// * `Cold` — usually never used again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Hotness {
    /// Used during application relaunch.
    Hot,
    /// Potentially used during post-relaunch execution.
    Warm,
    /// Usually not used again.
    Cold,
}

impl Hotness {
    /// All hotness levels, hottest first.
    pub const ALL: [Hotness; 3] = [Hotness::Hot, Hotness::Warm, Hotness::Cold];

    /// Lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hotness::Hot => "hot",
            Hotness::Warm => "warm",
            Hotness::Cold => "cold",
        }
    }
}

impl fmt::Display for Hotness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a page currently lives in the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageLocation {
    /// Uncompressed in main memory.
    Dram,
    /// Compressed in the zpool.
    Zpool,
    /// Compressed (or raw, for the SWAP baseline) in the flash swap area.
    Flash,
    /// Sitting decompressed in Ariadne's pre-decompression buffer.
    PreDecompBuffer,
    /// Not present anywhere (never allocated or already discarded).
    Absent,
}

impl fmt::Display for PageLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PageLocation::Dram => "dram",
            PageLocation::Zpool => "zpool",
            PageLocation::Flash => "flash",
            PageLocation::PreDecompBuffer => "predecomp-buffer",
            PageLocation::Absent => "absent",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn page_id_is_usable_as_a_map_key() {
        let mut set = HashSet::new();
        set.insert(PageId::new(AppId::new(1), Pfn::new(1)));
        set.insert(PageId::new(AppId::new(1), Pfn::new(2)));
        set.insert(PageId::new(AppId::new(2), Pfn::new(1)));
        assert_eq!(set.len(), 3);
        assert!(set.contains(&PageId::new(AppId::new(2), Pfn::new(1))));
    }

    #[test]
    fn pfn_offset_advances_frames() {
        assert_eq!(Pfn::new(10).offset(5), Pfn::new(15));
    }

    #[test]
    fn hotness_ordering_is_hot_first() {
        assert!(Hotness::Hot < Hotness::Warm);
        assert!(Hotness::Warm < Hotness::Cold);
        assert_eq!(Hotness::ALL[0], Hotness::Hot);
    }

    #[test]
    fn display_formats_are_compact() {
        let page = PageId::new(AppId::new(7), Pfn::new(99));
        assert_eq!(page.to_string(), "app:7/pfn:99");
        assert_eq!(Hotness::Warm.to_string(), "warm");
        assert_eq!(PageLocation::Zpool.to_string(), "zpool");
    }
}
