//! A generic least-recently-used list.
//!
//! The Linux kernel keeps anonymous pages on per-cgroup active/inactive LRU
//! lists; baseline ZRAM picks compression victims from the tail of the
//! inactive list, and Ariadne's HotnessOrg replaces the two lists with three
//! (hot/warm/cold). [`LruList`] is the shared building block: an ordered set
//! with O(1) membership tests, O(1) promotion to the head (most recently
//! used) and O(1) eviction from the tail (least recently used).
//!
//! Internally it is an intrusive [`Chain`] through a
//! generation-checked [`Slab`], with an
//! [`FxHashMap`] resolving keys to slots — so there
//! is no per-operation allocation once the slab has grown, and the key probe
//! pays the cheap multiply-rotate hash instead of SipHash.

use crate::slab::{Chain, ChainIndices, FxHashMap, Slab};
use std::fmt;
use std::hash::Hash;

/// Link channel the recency chain uses (LRU lists only need one order).
const LRU_CHANNEL: usize = 0;

/// An ordered set with LRU semantics.
///
/// The *head* of the list is the most recently used element; the *tail* is
/// the least recently used one (the eviction candidate).
///
/// ```
/// use ariadne_mem::LruList;
///
/// let mut lru = LruList::new();
/// lru.touch(1);
/// lru.touch(2);
/// lru.touch(3);
/// lru.touch(1); // 1 becomes most recently used again
/// assert_eq!(lru.pop_lru(), Some(2));
/// assert_eq!(lru.pop_lru(), Some(3));
/// assert_eq!(lru.pop_lru(), Some(1));
/// assert!(lru.is_empty());
/// ```
#[derive(Clone)]
pub struct LruList<K> {
    slab: Slab<K>,
    chain: Chain,
    index: FxHashMap<K, u32>,
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    /// Create an empty list.
    #[must_use]
    pub fn new() -> Self {
        LruList {
            slab: Slab::new(),
            chain: Chain::new(),
            index: FxHashMap::default(),
        }
    }

    /// Number of elements on the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is on the list.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Insert `key` at the head (most recently used position), or move it
    /// there if it is already present. Returns `true` if the key was newly
    /// inserted.
    pub fn touch(&mut self, key: K) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.chain.move_front(&mut self.slab, LRU_CHANNEL, slot);
            false
        } else {
            let slot = self.slab.insert(key.clone()).index();
            self.index.insert(key, slot);
            self.chain.push_front(&mut self.slab, LRU_CHANNEL, slot);
            true
        }
    }

    /// Insert `key` at the tail (least recently used position), or move it
    /// there if already present. Baseline reclaim uses this to demote pages;
    /// HotnessOrg uses it when initialising cold data. Returns `true` if the
    /// key was newly inserted.
    pub fn insert_lru(&mut self, key: K) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            self.chain.move_back(&mut self.slab, LRU_CHANNEL, slot);
            false
        } else {
            let slot = self.slab.insert(key.clone()).index();
            self.index.insert(key, slot);
            self.chain.push_back(&mut self.slab, LRU_CHANNEL, slot);
            true
        }
    }

    /// Remove and return the least recently used element.
    pub fn pop_lru(&mut self) -> Option<K> {
        let slot = self.chain.tail()?;
        let key = self.slab.value_at(slot).clone();
        self.index.remove(&key);
        self.chain.unlink(&mut self.slab, LRU_CHANNEL, slot);
        self.slab.remove(self.slab.key_at(slot));
        Some(key)
    }

    /// Look at the least recently used element without removing it.
    #[must_use]
    pub fn peek_lru(&self) -> Option<&K> {
        self.chain.tail().map(|slot| self.slab.value_at(slot))
    }

    /// Look at the most recently used element without removing it.
    #[must_use]
    pub fn peek_mru(&self) -> Option<&K> {
        self.chain.head().map(|slot| self.slab.value_at(slot))
    }

    /// Remove `key` from the list. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            None => false,
            Some(slot) => {
                self.chain.unlink(&mut self.slab, LRU_CHANNEL, slot);
                self.slab.remove(self.slab.key_at(slot));
                true
            }
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.index.clear();
        self.chain = Chain::new();
    }

    /// Iterate from most recently used to least recently used.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            slab: &self.slab,
            indices: self.chain.indices(&self.slab, LRU_CHANNEL),
        }
    }

    /// Iterate from least to most recently used (the order in which the
    /// kernel would scan for reclaim victims).
    pub fn iter_lru(&self) -> IterLru<'_, K> {
        IterLru {
            slab: &self.slab,
            indices: self.chain.indices(&self.slab, LRU_CHANNEL),
        }
    }

    /// Drain up to `count` elements from the LRU end, returning them in
    /// eviction order.
    pub fn drain_lru(&mut self, count: usize) -> Vec<K> {
        let mut out = Vec::with_capacity(count.min(self.len()));
        while out.len() < count {
            match self.pop_lru() {
                Some(key) => out.push(key),
                None => break,
            }
        }
        out
    }
}

impl<K: Eq + Hash + Clone + fmt::Debug> fmt::Debug for LruList<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<K: Eq + Hash + Clone> FromIterator<K> for LruList<K> {
    /// Builds a list where the *last* item of the iterator ends up most
    /// recently used, matching repeated calls to [`LruList::touch`].
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut list = LruList::new();
        for key in iter {
            list.touch(key);
        }
        list
    }
}

impl<K: Eq + Hash + Clone> Extend<K> for LruList<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for key in iter {
            self.touch(key);
        }
    }
}

/// Iterator over a [`LruList`] from most to least recently used.
pub struct Iter<'a, K> {
    slab: &'a Slab<K>,
    indices: ChainIndices<'a, K>,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;
    fn next(&mut self) -> Option<Self::Item> {
        self.indices.next().map(|slot| self.slab.value_at(slot))
    }
}

/// Iterator over a [`LruList`] from least to most recently used.
pub struct IterLru<'a, K> {
    slab: &'a Slab<K>,
    indices: ChainIndices<'a, K>,
}

impl<'a, K> Iterator for IterLru<'a, K> {
    type Item = &'a K;
    fn next(&mut self) -> Option<Self::Item> {
        self.indices
            .next_back()
            .map(|slot| self.slab.value_at(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_by_recency() {
        let mut lru = LruList::new();
        for i in 0..5 {
            lru.touch(i);
        }
        lru.touch(0);
        assert_eq!(lru.peek_mru(), Some(&0));
        assert_eq!(lru.peek_lru(), Some(&1));
        assert_eq!(lru.iter().copied().collect::<Vec<_>>(), vec![0, 4, 3, 2, 1]);
        assert_eq!(
            lru.iter_lru().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 0]
        );
    }

    #[test]
    fn insert_lru_places_at_tail() {
        let mut lru = LruList::new();
        lru.touch("a");
        lru.touch("b");
        lru.insert_lru("c");
        assert_eq!(lru.pop_lru(), Some("c"));
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut lru = LruList::new();
        for i in 0..10 {
            lru.touch(i);
        }
        assert!(lru.remove(&3));
        assert!(!lru.remove(&3));
        assert_eq!(lru.len(), 9);
        lru.touch(100);
        assert_eq!(lru.len(), 10);
        assert!(lru.contains(&100));
        assert!(!lru.contains(&3));
    }

    #[test]
    fn drain_lru_returns_eviction_order() {
        let mut lru: LruList<u32> = (0..6).collect();
        let drained = lru.drain_lru(3);
        assert_eq!(drained, vec![0, 1, 2]);
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn drain_more_than_len_stops_early() {
        let mut lru: LruList<u32> = (0..3).collect();
        assert_eq!(lru.drain_lru(10).len(), 3);
        assert!(lru.is_empty());
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut lru: LruList<u32> = (0..100).collect();
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.peek_lru(), None);
        lru.touch(5);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn touch_of_existing_key_returns_false() {
        let mut lru = LruList::new();
        assert!(lru.touch(1));
        assert!(!lru.touch(1));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut lru = LruList::new();
        lru.touch(42);
        assert_eq!(lru.peek_mru(), lru.peek_lru());
        assert!(lru.remove(&42));
        assert_eq!(lru.peek_mru(), None);
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn extend_and_from_iterator_agree() {
        let a: LruList<u32> = (0..10).collect();
        let mut b = LruList::new();
        b.extend(0..10);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn debug_output_lists_entries() {
        let lru: LruList<u32> = (0..3).collect();
        let text = format!("{lru:?}");
        assert!(text.contains('2') && text.contains('0'));
    }

    #[test]
    fn heavy_mixed_workload_keeps_index_consistent() {
        let mut lru = LruList::new();
        let mut expected_len = 0usize;
        for round in 0..1000u32 {
            let key = round % 64;
            if round % 3 == 0 {
                if lru.remove(&key) {
                    expected_len -= 1;
                }
            } else if lru.touch(key) {
                expected_len += 1;
            }
            assert_eq!(lru.len(), expected_len);
        }
        // Every key reachable by iteration must be reported as contained.
        let keys: Vec<u32> = lru.iter().copied().collect();
        assert_eq!(keys.len(), lru.len());
        for key in keys {
            assert!(lru.contains(&key));
        }
    }
}
