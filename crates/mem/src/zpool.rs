//! The zpool: the DRAM region ZRAM stores compressed data in.
//!
//! Compressed entries are written to sector-numbered 4 KiB blocks, allocated
//! sequentially (like the zram block device the paper traces, whose traces
//! record a "ZRAM sector" per page). Keeping the sector numbers around is
//! what lets the workspace study *Insight 3*: pages that are compressed
//! together get adjacent sectors, so swap-in streams that touch adjacent
//! sectors exhibit the locality Table 3 reports and PreDecomp exploits.
//!
//! Entries live in a generation-checked [`Slab`]: a [`ZpoolHandle`] packs the
//! slot index and its generation, so a handle held across a remove/reuse
//! cycle reports [`MemError::StaleHandle`] instead of aliasing the new
//! occupant. Three sector-ordered indices (all entries / cold entries /
//! hot single-page entries) turn the old full-table scans — writeback victim
//! selection, PreDecomp's next-sector lookup, the hot-refill sweep — into
//! O(log n) range queries, and per-app membership is an intrusive chain
//! through the slab slots so kill storms stay linear in the victim's own
//! entries.

use crate::error::MemError;
use crate::page::{Hotness, PageId};
use crate::slab::{Chain, FxHashMap, Slab, SlabKey};
use ariadne_compress::ChunkSize;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Size of one zpool block (and of one zram sector) in bytes.
pub const ZPOOL_BLOCK_SIZE: usize = 4096;

/// Link channel of the per-app entry chain.
const APP_CHANNEL: usize = 0;

/// Handle to an entry stored in the zpool.
///
/// The raw value packs the entry's slab slot and generation; handles are
/// opaque tickets (sector numbers, not handles, are what the simulation
/// observes), and a stale handle is detected rather than reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZpoolHandle(u64);

impl ZpoolHandle {
    /// The raw handle value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    fn key(self) -> SlabKey {
        SlabKey::unpack(self.0)
    }

    fn from_key(key: SlabKey) -> Self {
        ZpoolHandle(key.pack())
    }
}

impl fmt::Display for ZpoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zh:{}", self.0)
    }
}

/// A zram sector number: the position of an entry's first block in the pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ZpoolSector(u64);

impl ZpoolSector {
    /// Create a sector number.
    #[must_use]
    pub fn new(value: u64) -> Self {
        ZpoolSector(value)
    }

    /// The raw sector number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Absolute distance in sectors between two entries; small distances mean
    /// the entries were compressed around the same time.
    #[must_use]
    pub fn distance(self, other: ZpoolSector) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for ZpoolSector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sector:{}", self.0)
    }
}

/// Metadata for one compressed entry in the zpool.
///
/// An entry covers one or more pages: baseline ZRAM always stores exactly one
/// page per entry, while Ariadne's AdaptiveComp stores a whole compression
/// chunk (possibly many pages of cold data) per entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZpoolEntry {
    /// The pages whose data this entry holds, in address order.
    pub pages: Vec<PageId>,
    /// Sector number of the entry (allocation order).
    pub sector: ZpoolSector,
    /// Bytes of original (uncompressed) data.
    pub original_bytes: usize,
    /// Bytes the compressed image occupies in the pool.
    pub compressed_bytes: usize,
    /// Chunk size the data was compressed with.
    pub chunk_size: ChunkSize,
    /// Hotness level the data had when it was compressed (used for
    /// writeback-victim selection and reporting).
    pub hotness: Hotness,
}

impl ZpoolEntry {
    /// Number of 4 KiB zpool blocks the entry occupies.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.compressed_bytes.div_ceil(ZPOOL_BLOCK_SIZE).max(1)
    }

    /// Whether the entry qualifies for a pre-decompression refill: labelled
    /// hot and covering a single page (the buffer holds individual pages).
    #[must_use]
    pub fn is_hot_single(&self) -> bool {
        self.hotness == Hotness::Hot && self.pages.len() == 1
    }
}

/// Aggregate statistics about zpool usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZpoolStats {
    /// Number of entries currently stored.
    pub entries: usize,
    /// Total original bytes of the stored entries.
    pub original_bytes: usize,
    /// Total compressed bytes of the stored entries.
    pub compressed_bytes: usize,
    /// Number of store operations performed over the pool's lifetime.
    pub stores: usize,
    /// Number of remove (load/invalidate) operations over the lifetime.
    pub removals: usize,
}

/// The compressed-page pool.
///
/// ```
/// use ariadne_mem::{AppId, Hotness, PageId, Pfn, Zpool};
/// use ariadne_compress::ChunkSize;
///
/// let mut pool = Zpool::new(1024 * 1024);
/// let page = PageId::new(AppId::new(1), Pfn::new(3));
/// let handle = pool
///     .store(vec![page], 4096, 1200, ChunkSize::k4(), Hotness::Cold)
///     .unwrap();
/// assert_eq!(pool.entry(handle).unwrap().pages, vec![page]);
/// assert_eq!(pool.handle_for(page), Some(handle));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Zpool {
    capacity: usize,
    used: usize,
    next_sector: u64,
    entries: Slab<ZpoolEntry>,
    page_index: FxHashMap<PageId, ZpoolHandle>,
    /// Per-application entry chain, threaded through the slab slots. Keeps
    /// `release_app` (kill storms) linear in the victim's own entries, in a
    /// deterministic order: entries are only ever appended, so chain order is
    /// store order — exactly the ascending-handle order the old `BTreeSet`
    /// index iterated in.
    app_chains: FxHashMap<crate::page::AppId, Chain>,
    /// All live entries keyed by sector: O(log n) successor queries for
    /// PreDecomp and O(log n) oldest-entry lookup for writeback.
    by_sector: BTreeMap<u64, ZpoolHandle>,
    /// Cold entries keyed by sector (writeback's preferred victims).
    cold_by_sector: BTreeMap<u64, ZpoolHandle>,
    /// Hot single-page entries keyed by sector (PreDecomp refill candidates).
    hot_single_by_sector: BTreeMap<u64, ZpoolHandle>,
    /// Running totals so [`Zpool::stats`] is O(1) instead of a full scan.
    original_total: usize,
    compressed_total: usize,
    stores: usize,
    removals: usize,
}

impl Zpool {
    /// Create a zpool with `capacity` bytes (the paper's parameter `S`,
    /// 3 GB on the evaluated device).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Zpool {
            capacity,
            ..Zpool::default()
        }
    }

    /// Configured capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently occupied by compressed entries (block-granular).
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether storing `compressed_bytes` more would exceed capacity.
    #[must_use]
    pub fn would_overflow(&self, compressed_bytes: usize) -> bool {
        let blocks = compressed_bytes.div_ceil(ZPOOL_BLOCK_SIZE).max(1);
        self.used + blocks * ZPOOL_BLOCK_SIZE > self.capacity
    }

    /// Number of entries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store a compressed entry covering `pages`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ZpoolFull`] if the entry does not fit, and
    /// [`MemError::InvalidParameter`] if `pages` is empty or one of the pages
    /// is already stored in the pool.
    pub fn store(
        &mut self,
        pages: Vec<PageId>,
        original_bytes: usize,
        compressed_bytes: usize,
        chunk_size: ChunkSize,
        hotness: Hotness,
    ) -> Result<ZpoolHandle, MemError> {
        let _zpool = ariadne_obs::profile::span(ariadne_obs::Phase::Zpool);
        if pages.is_empty() {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: "an entry must cover at least one page".to_string(),
            });
        }
        if let Some(dup) = pages.iter().find(|p| self.page_index.contains_key(p)) {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: format!("page {dup} is already stored in the zpool"),
            });
        }
        // Compression groups never mix applications (AdaptiveComp groups
        // per-app victim lists), so one per-app chain per entry suffices.
        let app = pages[0].app();
        debug_assert!(
            pages.iter().all(|p| p.app() == app),
            "zpool entry mixes applications"
        );
        let entry = ZpoolEntry {
            pages,
            sector: ZpoolSector::new(self.next_sector),
            original_bytes,
            compressed_bytes,
            chunk_size,
            hotness,
        };
        let bytes = entry.blocks() * ZPOOL_BLOCK_SIZE;
        if self.used + bytes > self.capacity {
            return Err(MemError::ZpoolFull {
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        self.next_sector += entry.blocks() as u64;
        self.used += bytes;
        self.original_total += entry.original_bytes;
        self.compressed_total += entry.compressed_bytes;
        let sector = entry.sector.value();
        let hot_single = entry.is_hot_single();
        let cold = entry.hotness == Hotness::Cold;
        let key = self.entries.insert(entry);
        let handle = ZpoolHandle::from_key(key);
        for page in &self.entries.get(key).expect("just inserted").pages {
            self.page_index.insert(*page, handle);
        }
        self.app_chains.entry(app).or_default().push_back(
            &mut self.entries,
            APP_CHANNEL,
            key.index(),
        );
        self.by_sector.insert(sector, handle);
        if cold {
            self.cold_by_sector.insert(sector, handle);
        }
        if hot_single {
            self.hot_single_by_sector.insert(sector, handle);
        }
        self.stores += 1;
        Ok(handle)
    }

    /// Look up the entry behind `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the entry was already removed.
    pub fn entry(&self, handle: ZpoolHandle) -> Result<&ZpoolEntry, MemError> {
        self.entries.get(handle.key()).ok_or(MemError::StaleHandle)
    }

    /// The handle of the entry holding `page`, if any.
    #[must_use]
    pub fn handle_for(&self, page: PageId) -> Option<ZpoolHandle> {
        self.page_index.get(&page).copied()
    }

    /// Whether `page` is stored (as part of any entry) in the pool.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.page_index.contains_key(&page)
    }

    /// Remove the entry behind `handle`, returning its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the entry was already removed.
    pub fn remove(&mut self, handle: ZpoolHandle) -> Result<ZpoolEntry, MemError> {
        let _zpool = ariadne_obs::profile::span(ariadne_obs::Phase::Zpool);
        let key = handle.key();
        if !self.entries.contains(key) {
            return Err(MemError::StaleHandle);
        }
        let app = self.entries.get(key).expect("checked live").pages[0].app();
        let mut chain = *self.app_chains.get(&app).expect("app chain exists");
        chain.unlink(&mut self.entries, APP_CHANNEL, key.index());
        if chain.is_empty() {
            self.app_chains.remove(&app);
        } else {
            self.app_chains.insert(app, chain);
        }
        let entry = self.entries.remove(key).expect("checked live");
        self.discard_indexed(handle, &entry);
        self.removals += 1;
        Ok(entry)
    }

    /// Drop an entry's secondary-index footprint and running totals.
    fn discard_indexed(&mut self, handle: ZpoolHandle, entry: &ZpoolEntry) {
        let _ = handle;
        self.used -= entry.blocks() * ZPOOL_BLOCK_SIZE;
        self.original_total -= entry.original_bytes;
        self.compressed_total -= entry.compressed_bytes;
        for page in &entry.pages {
            self.page_index.remove(page);
        }
        let sector = entry.sector.value();
        self.by_sector.remove(&sector);
        if entry.hotness == Hotness::Cold {
            self.cold_by_sector.remove(&sector);
        }
        if entry.is_hot_single() {
            self.hot_single_by_sector.remove(&sector);
        }
    }

    /// Remove every entry belonging to `app` (its process was killed) and
    /// free the blocks. Returns `(entries removed, pages released)`.
    ///
    /// Served by the per-app chain: the cost is proportional to the victim's
    /// own entries, not to the pool size, so lmkd kill storms stay linear
    /// instead of going quadratic in zpool entries. Entries are released in
    /// chain (= store) order, the same deterministic order the old
    /// ascending-handle `BTreeSet` produced.
    pub fn release_app(&mut self, app: crate::page::AppId) -> (usize, usize) {
        let _zpool = ariadne_obs::profile::span(ariadne_obs::Phase::Zpool);
        let Some(chain) = self.app_chains.remove(&app) else {
            return (0, 0);
        };
        let doomed: Vec<SlabKey> = chain
            .indices(&self.entries, APP_CHANNEL)
            .map(|i| self.entries.key_at(i))
            .collect();
        let mut pages = 0usize;
        let mut chain = chain;
        for key in &doomed {
            chain.unlink(&mut self.entries, APP_CHANNEL, key.index());
            let entry = self.entries.remove(*key).expect("doomed handle is live");
            debug_assert!(
                entry.pages.iter().all(|p| p.app() == app),
                "zpool entry mixes applications"
            );
            self.discard_indexed(ZpoolHandle::from_key(*key), &entry);
            pages += entry.pages.len();
            self.removals += 1;
        }
        (doomed.len(), pages)
    }

    /// The entry whose sector immediately follows `sector`, if any.
    ///
    /// PreDecomp uses this to find the "next" compressed data after the one
    /// being faulted in, because adjacent sectors were compressed together
    /// and — per the paper's Insight 3 — are likely to be accessed together.
    #[must_use]
    pub fn next_by_sector(&self, sector: ZpoolSector) -> Option<(ZpoolHandle, &ZpoolEntry)> {
        self.by_sector
            .range(sector.value() + 1..)
            .next()
            .map(|(_, h)| (*h, self.entries.get(h.key()).expect("indexed entry live")))
    }

    /// The live entry with the lowest sector (the oldest data in the pool).
    #[must_use]
    pub fn oldest(&self) -> Option<(ZpoolHandle, &ZpoolEntry)> {
        self.by_sector
            .iter()
            .next()
            .map(|(_, h)| (*h, self.entries.get(h.key()).expect("indexed entry live")))
    }

    /// The cold entry with the lowest sector (writeback's preferred victim).
    #[must_use]
    pub fn oldest_cold(&self) -> Option<(ZpoolHandle, &ZpoolEntry)> {
        self.cold_by_sector
            .iter()
            .next()
            .map(|(_, h)| (*h, self.entries.get(h.key()).expect("indexed entry live")))
    }

    /// Number of hot single-page entries (pre-decompression refill
    /// candidates), maintained incrementally so callers polling for deferred
    /// work do not scan the pool.
    #[must_use]
    pub fn hot_single_count(&self) -> usize {
        self.hot_single_by_sector.len()
    }

    /// Up to `limit` hot single-page entries, oldest (lowest sector) first.
    #[must_use]
    pub fn hot_single_oldest(&self, limit: usize) -> Vec<ZpoolHandle> {
        self.hot_single_by_sector
            .values()
            .take(limit)
            .copied()
            .collect()
    }

    /// Iterate over all entries in ascending sector order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (ZpoolHandle, &ZpoolEntry)> {
        self.by_sector
            .values()
            .map(|h| (*h, self.entries.get(h.key()).expect("indexed entry live")))
    }

    /// Aggregate usage statistics (O(1): served from running totals).
    #[must_use]
    pub fn stats(&self) -> ZpoolStats {
        ZpoolStats {
            entries: self.entries.len(),
            original_bytes: self.original_total,
            compressed_bytes: self.compressed_total,
            stores: self.stores,
            removals: self.removals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    fn store_one(pool: &mut Zpool, app: u32, pfn: u64, compressed: usize) -> ZpoolHandle {
        pool.store(
            vec![page(app, pfn)],
            4096,
            compressed,
            ChunkSize::k4(),
            Hotness::Cold,
        )
        .unwrap()
    }

    #[test]
    fn store_and_lookup_roundtrip() {
        let mut pool = Zpool::new(1 << 20);
        let handle = store_one(&mut pool, 1, 5, 1000);
        let entry = pool.entry(handle).unwrap();
        assert_eq!(entry.pages, vec![page(1, 5)]);
        assert_eq!(entry.compressed_bytes, 1000);
        assert_eq!(pool.handle_for(page(1, 5)), Some(handle));
        assert!(pool.contains(page(1, 5)));
    }

    #[test]
    fn sectors_are_allocated_sequentially() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 1000);
        let h2 = store_one(&mut pool, 1, 2, 9000); // 3 blocks
        let h3 = store_one(&mut pool, 1, 3, 500);
        let s1 = pool.entry(h1).unwrap().sector.value();
        let s2 = pool.entry(h2).unwrap().sector.value();
        let s3 = pool.entry(h3).unwrap().sector.value();
        assert_eq!(s1, 0);
        assert_eq!(s2, 1);
        assert_eq!(s3, 4); // 9000 bytes occupies 3 sectors
    }

    #[test]
    fn usage_is_block_granular() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 100);
        assert_eq!(pool.used_bytes(), ZPOOL_BLOCK_SIZE);
        store_one(&mut pool, 1, 2, 4097);
        assert_eq!(pool.used_bytes(), 3 * ZPOOL_BLOCK_SIZE);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut pool = Zpool::new(2 * ZPOOL_BLOCK_SIZE);
        store_one(&mut pool, 1, 1, 4096);
        store_one(&mut pool, 1, 2, 4096);
        let err = pool.store(vec![page(1, 3)], 4096, 4096, ChunkSize::k4(), Hotness::Cold);
        assert!(matches!(err, Err(MemError::ZpoolFull { .. })));
        assert!(pool.would_overflow(1));
    }

    #[test]
    fn duplicate_pages_are_rejected() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 100);
        let err = pool.store(vec![page(1, 1)], 4096, 100, ChunkSize::k4(), Hotness::Hot);
        assert!(matches!(err, Err(MemError::InvalidParameter { .. })));
    }

    #[test]
    fn empty_page_list_is_rejected() {
        let mut pool = Zpool::new(1 << 20);
        assert!(pool
            .store(vec![], 0, 0, ChunkSize::k4(), Hotness::Cold)
            .is_err());
    }

    #[test]
    fn remove_releases_space_and_index() {
        let mut pool = Zpool::new(1 << 20);
        let handle = store_one(&mut pool, 1, 1, 5000);
        assert_eq!(pool.used_bytes(), 2 * ZPOOL_BLOCK_SIZE);
        let entry = pool.remove(handle).unwrap();
        assert_eq!(entry.pages.len(), 1);
        assert_eq!(pool.used_bytes(), 0);
        assert!(!pool.contains(page(1, 1)));
        assert!(matches!(pool.remove(handle), Err(MemError::StaleHandle)));
        assert!(matches!(pool.entry(handle), Err(MemError::StaleHandle)));
    }

    #[test]
    fn stale_handle_is_detected_after_slot_reuse() {
        let mut pool = Zpool::new(1 << 20);
        let old = store_one(&mut pool, 1, 1, 1000);
        pool.remove(old).unwrap();
        // The freed slot is reused by the next store; the old handle must
        // stay stale rather than resolve to the new occupant.
        let new = store_one(&mut pool, 2, 9, 2000);
        assert!(matches!(pool.entry(old), Err(MemError::StaleHandle)));
        assert!(matches!(pool.remove(old), Err(MemError::StaleHandle)));
        assert_eq!(pool.entry(new).unwrap().pages, vec![page(2, 9)]);
    }

    #[test]
    fn multi_page_entries_index_every_page() {
        let mut pool = Zpool::new(1 << 20);
        let pages = vec![page(2, 10), page(2, 11), page(2, 12), page(2, 13)];
        let handle = pool
            .store(
                pages.clone(),
                4 * 4096,
                6000,
                ChunkSize::k16(),
                Hotness::Cold,
            )
            .unwrap();
        for p in &pages {
            assert_eq!(pool.handle_for(*p), Some(handle));
        }
        pool.remove(handle).unwrap();
        for p in &pages {
            assert_eq!(pool.handle_for(*p), None);
        }
    }

    #[test]
    fn next_by_sector_finds_the_neighbour() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 4096);
        let h2 = store_one(&mut pool, 1, 2, 4096);
        let h3 = store_one(&mut pool, 1, 3, 4096);
        let s1 = pool.entry(h1).unwrap().sector;
        let (next, _) = pool.next_by_sector(s1).unwrap();
        assert_eq!(next, h2);
        let s3 = pool.entry(h3).unwrap().sector;
        assert!(pool.next_by_sector(s3).is_none());
    }

    #[test]
    fn oldest_and_oldest_cold_track_sector_order() {
        let mut pool = Zpool::new(1 << 20);
        let hot = pool
            .store(vec![page(1, 1)], 4096, 1000, ChunkSize::k1(), Hotness::Hot)
            .unwrap();
        let cold = store_one(&mut pool, 1, 2, 1000);
        let (h, _) = pool.oldest().unwrap();
        assert_eq!(h, hot, "oldest-any is the lowest sector");
        let (c, _) = pool.oldest_cold().unwrap();
        assert_eq!(c, cold, "oldest-cold skips the hot entry");
        pool.remove(cold).unwrap();
        assert!(pool.oldest_cold().is_none());
        assert_eq!(pool.oldest().unwrap().0, hot);
    }

    #[test]
    fn hot_single_index_tracks_refill_candidates() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = pool
            .store(vec![page(1, 1)], 4096, 900, ChunkSize::k1(), Hotness::Hot)
            .unwrap();
        // Multi-page hot entry and cold single page do not qualify.
        pool.store(
            vec![page(1, 2), page(1, 3)],
            8192,
            3000,
            ChunkSize::k2(),
            Hotness::Hot,
        )
        .unwrap();
        store_one(&mut pool, 1, 4, 900);
        let h2 = pool
            .store(vec![page(1, 5)], 4096, 900, ChunkSize::k1(), Hotness::Hot)
            .unwrap();
        assert_eq!(pool.hot_single_count(), 2);
        assert_eq!(pool.hot_single_oldest(10), vec![h1, h2]);
        assert_eq!(pool.hot_single_oldest(1), vec![h1]);
        pool.remove(h1).unwrap();
        assert_eq!(pool.hot_single_count(), 1);
        assert_eq!(pool.hot_single_oldest(10), vec![h2]);
    }

    #[test]
    fn iter_yields_ascending_sectors() {
        let mut pool = Zpool::new(1 << 20);
        for pfn in 0..10 {
            store_one(&mut pool, 1, pfn, 4096);
        }
        let sectors: Vec<u64> = pool.iter().map(|(_, e)| e.sector.value()).collect();
        let mut sorted = sectors.clone();
        sorted.sort_unstable();
        assert_eq!(sectors, sorted);
    }

    #[test]
    fn release_app_frees_every_entry_of_the_app() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 4096);
        pool.store(
            vec![page(1, 2), page(1, 3)],
            8192,
            3000,
            ChunkSize::k16(),
            Hotness::Cold,
        )
        .unwrap();
        store_one(&mut pool, 2, 1, 4096);
        let used_before = pool.used_bytes();

        let (entries, pages) = pool.release_app(AppId::new(1));
        assert_eq!((entries, pages), (2, 3));
        assert!(!pool.contains(page(1, 1)) && !pool.contains(page(1, 3)));
        assert!(pool.contains(page(2, 1)), "other apps keep their entries");
        assert_eq!(pool.used_bytes(), used_before - 2 * ZPOOL_BLOCK_SIZE);
        assert_eq!(pool.stats().removals, 2);
        // Releasing again finds nothing.
        assert_eq!(pool.release_app(AppId::new(1)), (0, 0));
    }

    #[test]
    fn app_index_stays_consistent_across_interleaved_operations() {
        let mut pool = Zpool::new(1 << 20);
        // Two apps, interleaved stores; remove some entries by handle before
        // the kills so the index has seen every mutation path.
        let h1 = store_one(&mut pool, 1, 1, 2048);
        let _h2 = store_one(&mut pool, 2, 1, 2048);
        let _h3 = store_one(&mut pool, 1, 2, 2048);
        pool.store(
            vec![page(2, 2), page(2, 3)],
            8192,
            3000,
            ChunkSize::k16(),
            Hotness::Cold,
        )
        .unwrap();
        pool.remove(h1).unwrap();

        // App 1 has one entry left, app 2 has two (one multi-page).
        assert_eq!(pool.release_app(AppId::new(1)), (1, 1));
        assert!(!pool.contains(page(1, 2)));
        assert_eq!(pool.release_app(AppId::new(1)), (0, 0));
        assert_eq!(pool.release_app(AppId::new(2)), (2, 3));
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
        // Re-storing after a full drain works and releases again cleanly.
        store_one(&mut pool, 1, 9, 1024);
        assert_eq!(pool.release_app(AppId::new(1)), (1, 1));
    }

    #[test]
    fn stats_track_lifetime_operations() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 2048);
        store_one(&mut pool, 1, 2, 2048);
        pool.remove(h1).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stores, 2);
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.original_bytes, 4096);
    }

    #[test]
    fn running_stats_match_a_full_recompute() {
        let mut pool = Zpool::new(1 << 20);
        let mut handles = Vec::new();
        for pfn in 0..20 {
            handles.push(store_one(
                &mut pool,
                1 + (pfn % 3) as u32,
                pfn,
                1000 + 137 * pfn as usize,
            ));
        }
        for handle in handles.iter().step_by(3) {
            pool.remove(*handle).unwrap();
        }
        pool.release_app(AppId::new(2));
        let stats = pool.stats();
        let original: usize = pool.iter().map(|(_, e)| e.original_bytes).sum();
        let compressed: usize = pool.iter().map(|(_, e)| e.compressed_bytes).sum();
        assert_eq!(stats.original_bytes, original);
        assert_eq!(stats.compressed_bytes, compressed);
        assert_eq!(stats.entries, pool.len());
    }

    #[test]
    fn sector_distance_is_symmetric() {
        assert_eq!(ZpoolSector::new(5).distance(ZpoolSector::new(9)), 4);
        assert_eq!(ZpoolSector::new(9).distance(ZpoolSector::new(5)), 4);
    }
}
