//! The zpool: the DRAM region ZRAM stores compressed data in.
//!
//! Compressed entries are written to sector-numbered 4 KiB blocks, allocated
//! sequentially (like the zram block device the paper traces, whose traces
//! record a "ZRAM sector" per page). Keeping the sector numbers around is
//! what lets the workspace study *Insight 3*: pages that are compressed
//! together get adjacent sectors, so swap-in streams that touch adjacent
//! sectors exhibit the locality Table 3 reports and PreDecomp exploits.

use crate::error::MemError;
use crate::page::{Hotness, PageId};
use ariadne_compress::ChunkSize;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Size of one zpool block (and of one zram sector) in bytes.
pub const ZPOOL_BLOCK_SIZE: usize = 4096;

/// Handle to an entry stored in the zpool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZpoolHandle(u64);

impl ZpoolHandle {
    /// The raw handle value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ZpoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zh:{}", self.0)
    }
}

/// A zram sector number: the position of an entry's first block in the pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ZpoolSector(u64);

impl ZpoolSector {
    /// Create a sector number.
    #[must_use]
    pub fn new(value: u64) -> Self {
        ZpoolSector(value)
    }

    /// The raw sector number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Absolute distance in sectors between two entries; small distances mean
    /// the entries were compressed around the same time.
    #[must_use]
    pub fn distance(self, other: ZpoolSector) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for ZpoolSector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sector:{}", self.0)
    }
}

/// Metadata for one compressed entry in the zpool.
///
/// An entry covers one or more pages: baseline ZRAM always stores exactly one
/// page per entry, while Ariadne's AdaptiveComp stores a whole compression
/// chunk (possibly many pages of cold data) per entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZpoolEntry {
    /// The pages whose data this entry holds, in address order.
    pub pages: Vec<PageId>,
    /// Sector number of the entry (allocation order).
    pub sector: ZpoolSector,
    /// Bytes of original (uncompressed) data.
    pub original_bytes: usize,
    /// Bytes the compressed image occupies in the pool.
    pub compressed_bytes: usize,
    /// Chunk size the data was compressed with.
    pub chunk_size: ChunkSize,
    /// Hotness level the data had when it was compressed (used for
    /// writeback-victim selection and reporting).
    pub hotness: Hotness,
}

impl ZpoolEntry {
    /// Number of 4 KiB zpool blocks the entry occupies.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.compressed_bytes.div_ceil(ZPOOL_BLOCK_SIZE).max(1)
    }
}

/// Aggregate statistics about zpool usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZpoolStats {
    /// Number of entries currently stored.
    pub entries: usize,
    /// Total original bytes of the stored entries.
    pub original_bytes: usize,
    /// Total compressed bytes of the stored entries.
    pub compressed_bytes: usize,
    /// Number of store operations performed over the pool's lifetime.
    pub stores: usize,
    /// Number of remove (load/invalidate) operations over the lifetime.
    pub removals: usize,
}

/// The compressed-page pool.
///
/// ```
/// use ariadne_mem::{AppId, Hotness, PageId, Pfn, Zpool};
/// use ariadne_compress::ChunkSize;
///
/// let mut pool = Zpool::new(1024 * 1024);
/// let page = PageId::new(AppId::new(1), Pfn::new(3));
/// let handle = pool
///     .store(vec![page], 4096, 1200, ChunkSize::k4(), Hotness::Cold)
///     .unwrap();
/// assert_eq!(pool.entry(handle).unwrap().pages, vec![page]);
/// assert_eq!(pool.handle_for(page), Some(handle));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Zpool {
    capacity: usize,
    used: usize,
    next_handle: u64,
    next_sector: u64,
    entries: HashMap<ZpoolHandle, ZpoolEntry>,
    page_index: HashMap<PageId, ZpoolHandle>,
    /// Per-application handle index: which entries hold data of each app.
    /// Keeps `release_app` (kill storms) linear in the victim's own entries
    /// instead of scanning the whole table per kill. Handles are kept in a
    /// `BTreeSet` so release order is deterministic.
    app_index: HashMap<crate::page::AppId, BTreeSet<ZpoolHandle>>,
    stores: usize,
    removals: usize,
}

impl Zpool {
    /// Create a zpool with `capacity` bytes (the paper's parameter `S`,
    /// 3 GB on the evaluated device).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Zpool {
            capacity,
            ..Zpool::default()
        }
    }

    /// Configured capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently occupied by compressed entries (block-granular).
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether storing `compressed_bytes` more would exceed capacity.
    #[must_use]
    pub fn would_overflow(&self, compressed_bytes: usize) -> bool {
        let blocks = compressed_bytes.div_ceil(ZPOOL_BLOCK_SIZE).max(1);
        self.used + blocks * ZPOOL_BLOCK_SIZE > self.capacity
    }

    /// Number of entries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store a compressed entry covering `pages`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ZpoolFull`] if the entry does not fit, and
    /// [`MemError::InvalidParameter`] if `pages` is empty or one of the pages
    /// is already stored in the pool.
    pub fn store(
        &mut self,
        pages: Vec<PageId>,
        original_bytes: usize,
        compressed_bytes: usize,
        chunk_size: ChunkSize,
        hotness: Hotness,
    ) -> Result<ZpoolHandle, MemError> {
        if pages.is_empty() {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: "an entry must cover at least one page".to_string(),
            });
        }
        if let Some(dup) = pages.iter().find(|p| self.page_index.contains_key(p)) {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: format!("page {dup} is already stored in the zpool"),
            });
        }
        let entry = ZpoolEntry {
            pages,
            sector: ZpoolSector::new(self.next_sector),
            original_bytes,
            compressed_bytes,
            chunk_size,
            hotness,
        };
        let bytes = entry.blocks() * ZPOOL_BLOCK_SIZE;
        if self.used + bytes > self.capacity {
            return Err(MemError::ZpoolFull {
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        let handle = ZpoolHandle(self.next_handle);
        self.next_handle += 1;
        self.next_sector += entry.blocks() as u64;
        self.used += bytes;
        for page in &entry.pages {
            self.page_index.insert(*page, handle);
            self.app_index.entry(page.app()).or_default().insert(handle);
        }
        self.entries.insert(handle, entry);
        self.stores += 1;
        Ok(handle)
    }

    /// Look up the entry behind `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the entry was already removed.
    pub fn entry(&self, handle: ZpoolHandle) -> Result<&ZpoolEntry, MemError> {
        self.entries.get(&handle).ok_or(MemError::StaleHandle)
    }

    /// The handle of the entry holding `page`, if any.
    #[must_use]
    pub fn handle_for(&self, page: PageId) -> Option<ZpoolHandle> {
        self.page_index.get(&page).copied()
    }

    /// Whether `page` is stored (as part of any entry) in the pool.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.page_index.contains_key(&page)
    }

    /// Remove the entry behind `handle`, returning its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the entry was already removed.
    pub fn remove(&mut self, handle: ZpoolHandle) -> Result<ZpoolEntry, MemError> {
        let entry = self.entries.remove(&handle).ok_or(MemError::StaleHandle)?;
        self.used -= entry.blocks() * ZPOOL_BLOCK_SIZE;
        for page in &entry.pages {
            self.page_index.remove(page);
            if let Some(handles) = self.app_index.get_mut(&page.app()) {
                handles.remove(&handle);
                if handles.is_empty() {
                    self.app_index.remove(&page.app());
                }
            }
        }
        self.removals += 1;
        Ok(entry)
    }

    /// Remove every entry belonging to `app` (its process was killed) and
    /// free the blocks. Returns `(entries removed, pages released)`.
    ///
    /// Served by the per-app handle index: the cost is proportional to the
    /// victim's own entries, not to the pool size, so lmkd kill storms stay
    /// linear instead of going quadratic in zpool entries.
    pub fn release_app(&mut self, app: crate::page::AppId) -> (usize, usize) {
        let Some(doomed) = self.app_index.remove(&app) else {
            return (0, 0);
        };
        let mut pages = 0usize;
        for handle in &doomed {
            let entry = self.entries.remove(handle).expect("doomed handle is live");
            // Compression groups never mix applications, so a whole entry
            // always belongs to the killed app.
            debug_assert!(
                entry.pages.iter().all(|p| p.app() == app),
                "zpool entry {handle} mixes applications"
            );
            self.used -= entry.blocks() * ZPOOL_BLOCK_SIZE;
            for page in &entry.pages {
                self.page_index.remove(page);
                // Defensive: if an entry ever mixed applications, drop the
                // other apps' cross-references so their index stays clean.
                if page.app() != app {
                    if let Some(handles) = self.app_index.get_mut(&page.app()) {
                        handles.remove(handle);
                        if handles.is_empty() {
                            self.app_index.remove(&page.app());
                        }
                    }
                }
            }
            pages += entry.pages.len();
            self.removals += 1;
        }
        (doomed.len(), pages)
    }

    /// The entry whose sector immediately follows `sector`, if any.
    ///
    /// PreDecomp uses this to find the "next" compressed data after the one
    /// being faulted in, because adjacent sectors were compressed together
    /// and — per the paper's Insight 3 — are likely to be accessed together.
    #[must_use]
    pub fn next_by_sector(&self, sector: ZpoolSector) -> Option<(ZpoolHandle, &ZpoolEntry)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sector.value() > sector.value())
            .min_by_key(|(_, e)| e.sector.value())
            .map(|(h, e)| (*h, e))
    }

    /// Iterate over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (ZpoolHandle, &ZpoolEntry)> {
        self.entries.iter().map(|(h, e)| (*h, e))
    }

    /// Aggregate usage statistics.
    #[must_use]
    pub fn stats(&self) -> ZpoolStats {
        ZpoolStats {
            entries: self.entries.len(),
            original_bytes: self.entries.values().map(|e| e.original_bytes).sum(),
            compressed_bytes: self.entries.values().map(|e| e.compressed_bytes).sum(),
            stores: self.stores,
            removals: self.removals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    fn store_one(pool: &mut Zpool, app: u32, pfn: u64, compressed: usize) -> ZpoolHandle {
        pool.store(
            vec![page(app, pfn)],
            4096,
            compressed,
            ChunkSize::k4(),
            Hotness::Cold,
        )
        .unwrap()
    }

    #[test]
    fn store_and_lookup_roundtrip() {
        let mut pool = Zpool::new(1 << 20);
        let handle = store_one(&mut pool, 1, 5, 1000);
        let entry = pool.entry(handle).unwrap();
        assert_eq!(entry.pages, vec![page(1, 5)]);
        assert_eq!(entry.compressed_bytes, 1000);
        assert_eq!(pool.handle_for(page(1, 5)), Some(handle));
        assert!(pool.contains(page(1, 5)));
    }

    #[test]
    fn sectors_are_allocated_sequentially() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 1000);
        let h2 = store_one(&mut pool, 1, 2, 9000); // 3 blocks
        let h3 = store_one(&mut pool, 1, 3, 500);
        let s1 = pool.entry(h1).unwrap().sector.value();
        let s2 = pool.entry(h2).unwrap().sector.value();
        let s3 = pool.entry(h3).unwrap().sector.value();
        assert_eq!(s1, 0);
        assert_eq!(s2, 1);
        assert_eq!(s3, 4); // 9000 bytes occupies 3 sectors
    }

    #[test]
    fn usage_is_block_granular() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 100);
        assert_eq!(pool.used_bytes(), ZPOOL_BLOCK_SIZE);
        store_one(&mut pool, 1, 2, 4097);
        assert_eq!(pool.used_bytes(), 3 * ZPOOL_BLOCK_SIZE);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut pool = Zpool::new(2 * ZPOOL_BLOCK_SIZE);
        store_one(&mut pool, 1, 1, 4096);
        store_one(&mut pool, 1, 2, 4096);
        let err = pool.store(vec![page(1, 3)], 4096, 4096, ChunkSize::k4(), Hotness::Cold);
        assert!(matches!(err, Err(MemError::ZpoolFull { .. })));
        assert!(pool.would_overflow(1));
    }

    #[test]
    fn duplicate_pages_are_rejected() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 100);
        let err = pool.store(vec![page(1, 1)], 4096, 100, ChunkSize::k4(), Hotness::Hot);
        assert!(matches!(err, Err(MemError::InvalidParameter { .. })));
    }

    #[test]
    fn empty_page_list_is_rejected() {
        let mut pool = Zpool::new(1 << 20);
        assert!(pool
            .store(vec![], 0, 0, ChunkSize::k4(), Hotness::Cold)
            .is_err());
    }

    #[test]
    fn remove_releases_space_and_index() {
        let mut pool = Zpool::new(1 << 20);
        let handle = store_one(&mut pool, 1, 1, 5000);
        assert_eq!(pool.used_bytes(), 2 * ZPOOL_BLOCK_SIZE);
        let entry = pool.remove(handle).unwrap();
        assert_eq!(entry.pages.len(), 1);
        assert_eq!(pool.used_bytes(), 0);
        assert!(!pool.contains(page(1, 1)));
        assert!(matches!(pool.remove(handle), Err(MemError::StaleHandle)));
        assert!(matches!(pool.entry(handle), Err(MemError::StaleHandle)));
    }

    #[test]
    fn multi_page_entries_index_every_page() {
        let mut pool = Zpool::new(1 << 20);
        let pages = vec![page(2, 10), page(2, 11), page(2, 12), page(2, 13)];
        let handle = pool
            .store(
                pages.clone(),
                4 * 4096,
                6000,
                ChunkSize::k16(),
                Hotness::Cold,
            )
            .unwrap();
        for p in &pages {
            assert_eq!(pool.handle_for(*p), Some(handle));
        }
        pool.remove(handle).unwrap();
        for p in &pages {
            assert_eq!(pool.handle_for(*p), None);
        }
    }

    #[test]
    fn next_by_sector_finds_the_neighbour() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 4096);
        let h2 = store_one(&mut pool, 1, 2, 4096);
        let h3 = store_one(&mut pool, 1, 3, 4096);
        let s1 = pool.entry(h1).unwrap().sector;
        let (next, _) = pool.next_by_sector(s1).unwrap();
        assert_eq!(next, h2);
        let s3 = pool.entry(h3).unwrap().sector;
        assert!(pool.next_by_sector(s3).is_none());
    }

    #[test]
    fn release_app_frees_every_entry_of_the_app() {
        let mut pool = Zpool::new(1 << 20);
        store_one(&mut pool, 1, 1, 4096);
        pool.store(
            vec![page(1, 2), page(1, 3)],
            8192,
            3000,
            ChunkSize::k16(),
            Hotness::Cold,
        )
        .unwrap();
        store_one(&mut pool, 2, 1, 4096);
        let used_before = pool.used_bytes();

        let (entries, pages) = pool.release_app(AppId::new(1));
        assert_eq!((entries, pages), (2, 3));
        assert!(!pool.contains(page(1, 1)) && !pool.contains(page(1, 3)));
        assert!(pool.contains(page(2, 1)), "other apps keep their entries");
        assert_eq!(pool.used_bytes(), used_before - 2 * ZPOOL_BLOCK_SIZE);
        assert_eq!(pool.stats().removals, 2);
        // Releasing again finds nothing.
        assert_eq!(pool.release_app(AppId::new(1)), (0, 0));
    }

    #[test]
    fn app_index_stays_consistent_across_interleaved_operations() {
        let mut pool = Zpool::new(1 << 20);
        // Two apps, interleaved stores; remove some entries by handle before
        // the kills so the index has seen every mutation path.
        let h1 = store_one(&mut pool, 1, 1, 2048);
        let _h2 = store_one(&mut pool, 2, 1, 2048);
        let _h3 = store_one(&mut pool, 1, 2, 2048);
        pool.store(
            vec![page(2, 2), page(2, 3)],
            8192,
            3000,
            ChunkSize::k16(),
            Hotness::Cold,
        )
        .unwrap();
        pool.remove(h1).unwrap();

        // App 1 has one entry left, app 2 has two (one multi-page).
        assert_eq!(pool.release_app(AppId::new(1)), (1, 1));
        assert!(!pool.contains(page(1, 2)));
        assert_eq!(pool.release_app(AppId::new(1)), (0, 0));
        assert_eq!(pool.release_app(AppId::new(2)), (2, 3));
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
        // Re-storing after a full drain works and releases again cleanly.
        store_one(&mut pool, 1, 9, 1024);
        assert_eq!(pool.release_app(AppId::new(1)), (1, 1));
    }

    #[test]
    fn stats_track_lifetime_operations() {
        let mut pool = Zpool::new(1 << 20);
        let h1 = store_one(&mut pool, 1, 1, 2048);
        store_one(&mut pool, 1, 2, 2048);
        pool.remove(h1).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stores, 2);
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.original_bytes, 4096);
    }

    #[test]
    fn sector_distance_is_symmetric() {
        assert_eq!(ZpoolSector::new(5).distance(ZpoolSector::new(9)), 4);
        assert_eq!(ZpoolSector::new(9).distance(ZpoolSector::new(5)), 4);
    }
}
