//! The kswapd-style reclaim controller.
//!
//! In Android, the `kswapd` kernel thread wakes up when free memory drops
//! below the low watermark and reclaims pages (for anonymous data: compresses
//! them into the zpool, or writes them to the flash swap area) until free
//! memory exceeds the high watermark. Direct reclaim happens synchronously
//! when an allocation cannot be satisfied at all.
//!
//! [`ReclaimController`] encapsulates the *when and how much* part of that
//! logic so every swap scheme reclaims under identical rules; the *which
//! pages and where to* part is the policy that differs between schemes and
//! lives in `ariadne-zram` / `ariadne-core`.

use crate::dram::MainMemory;
use crate::page::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Why a reclaim pass was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclaimReason {
    /// Free memory fell below the low watermark (background kswapd work).
    LowWatermark,
    /// An allocation needs `bytes` immediately (direct reclaim).
    DirectAllocation {
        /// Bytes the allocation needs.
        bytes: usize,
    },
    /// A proactive reclaim pass requested by policy (e.g. the vendor
    /// behaviour of periodically compressing background apps, §2.3).
    Proactive {
        /// Bytes the policy wants freed.
        bytes: usize,
    },
}

/// A request produced by the controller: reclaim at least `target_pages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimRequest {
    /// Number of pages the scheme should evict from DRAM.
    pub target_pages: usize,
    /// Why the pass was triggered.
    pub reason: ReclaimReason,
}

/// Lifetime statistics of the reclaim controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimControllerStats {
    /// Number of background (watermark-triggered) passes requested.
    pub background_passes: usize,
    /// Number of direct-reclaim passes requested.
    pub direct_passes: usize,
    /// Number of proactive passes requested.
    pub proactive_passes: usize,
    /// Total pages requested for reclaim.
    pub pages_requested: usize,
}

/// Decides when reclaim should run and how many pages it should free.
///
/// ```
/// use ariadne_mem::{MainMemory, ReclaimController, Watermarks};
///
/// let capacity = 64 * 4096;
/// let dram = MainMemory::new(capacity, Watermarks::new(8 * 4096, 16 * 4096).unwrap());
/// let mut kswapd = ReclaimController::new();
/// // Plenty of free memory: no reclaim needed.
/// assert!(kswapd.background_request(&dram).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReclaimController {
    stats: ReclaimControllerStats,
}

impl ReclaimController {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        ReclaimController::default()
    }

    /// If free memory is below the low watermark, produce the background
    /// reclaim request that would restore the high watermark.
    pub fn background_request(&mut self, dram: &MainMemory) -> Option<ReclaimRequest> {
        if !dram.below_low_watermark() {
            return None;
        }
        let bytes = dram.reclaim_target_bytes();
        let target_pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.stats.background_passes += 1;
        self.stats.pages_requested += target_pages;
        Some(ReclaimRequest {
            target_pages,
            reason: ReclaimReason::LowWatermark,
        })
    }

    /// Produce the direct-reclaim request needed to make room for an
    /// allocation of `bytes` (returns `None` if it already fits).
    pub fn direct_request(&mut self, dram: &MainMemory, bytes: usize) -> Option<ReclaimRequest> {
        if dram.free_bytes() >= bytes {
            return None;
        }
        let missing = bytes - dram.free_bytes();
        let target_pages = missing.div_ceil(PAGE_SIZE).max(1);
        self.stats.direct_passes += 1;
        self.stats.pages_requested += target_pages;
        Some(ReclaimRequest {
            target_pages,
            reason: ReclaimReason::DirectAllocation { bytes },
        })
    }

    /// Produce a proactive reclaim request for `bytes` (vendor-style periodic
    /// compression of background applications).
    pub fn proactive_request(&mut self, bytes: usize) -> ReclaimRequest {
        let target_pages = bytes.div_ceil(PAGE_SIZE).max(1);
        self.stats.proactive_passes += 1;
        self.stats.pages_requested += target_pages;
        ReclaimRequest {
            target_pages,
            reason: ReclaimReason::Proactive { bytes },
        }
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> ReclaimControllerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::Watermarks;
    use crate::page::{AppId, PageId, Pfn};

    fn dram_with_used(capacity_pages: usize, used_pages: usize) -> MainMemory {
        let capacity = capacity_pages * PAGE_SIZE;
        let marks = Watermarks::new(capacity / 8, capacity / 4).unwrap();
        let mut dram = MainMemory::new(capacity, marks);
        for i in 0..used_pages {
            dram.insert(PageId::new(AppId::new(1), Pfn::new(i as u64)))
                .unwrap();
        }
        dram
    }

    #[test]
    fn no_background_reclaim_when_memory_is_plentiful() {
        let dram = dram_with_used(100, 10);
        let mut kswapd = ReclaimController::new();
        assert!(kswapd.background_request(&dram).is_none());
        assert_eq!(kswapd.stats().background_passes, 0);
    }

    #[test]
    fn background_reclaim_targets_the_high_watermark() {
        // capacity 100 pages, low 12.5 pages, high 25 pages; use 95 pages.
        let dram = dram_with_used(100, 95);
        let mut kswapd = ReclaimController::new();
        let request = kswapd.background_request(&dram).unwrap();
        // free = 5 pages, need 25 -> reclaim 20 pages.
        assert_eq!(request.target_pages, 20);
        assert_eq!(request.reason, ReclaimReason::LowWatermark);
    }

    #[test]
    fn direct_reclaim_covers_the_allocation_gap() {
        let dram = dram_with_used(100, 98);
        let mut kswapd = ReclaimController::new();
        assert!(kswapd.direct_request(&dram, PAGE_SIZE).is_none());
        let request = kswapd.direct_request(&dram, 10 * PAGE_SIZE).unwrap();
        assert_eq!(request.target_pages, 8);
        assert!(matches!(
            request.reason,
            ReclaimReason::DirectAllocation { .. }
        ));
    }

    #[test]
    fn proactive_requests_always_fire() {
        let mut kswapd = ReclaimController::new();
        let request = kswapd.proactive_request(3 * PAGE_SIZE + 1);
        assert_eq!(request.target_pages, 4);
        assert_eq!(kswapd.stats().proactive_passes, 1);
    }

    #[test]
    fn stats_accumulate_across_requests() {
        let dram = dram_with_used(100, 95);
        let mut kswapd = ReclaimController::new();
        kswapd.background_request(&dram).unwrap();
        kswapd.direct_request(&dram, 20 * PAGE_SIZE).unwrap();
        kswapd.proactive_request(PAGE_SIZE);
        let stats = kswapd.stats();
        assert_eq!(stats.background_passes, 1);
        assert_eq!(stats.direct_passes, 1);
        assert_eq!(stats.proactive_passes, 1);
        assert!(stats.pages_requested >= 21);
    }
}
