//! Error type for memory-substrate operations.

use crate::page::PageId;
use std::error::Error;
use std::fmt;

/// Error returned by the memory-substrate components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The zpool has no free space for the requested allocation.
    ZpoolFull {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes currently free.
        available: usize,
    },
    /// The flash swap area has no free slots.
    SwapSpaceFull,
    /// A page was looked up that the component does not hold.
    PageNotFound {
        /// The page that was requested.
        page: PageId,
    },
    /// A zpool handle was used after the entry was removed.
    StaleHandle,
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// Why it was rejected.
        detail: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::ZpoolFull {
                requested,
                available,
            } => write!(
                f,
                "zpool full: requested {requested} bytes, {available} available"
            ),
            MemError::SwapSpaceFull => write!(f, "flash swap space is full"),
            MemError::PageNotFound { page } => write!(f, "page {page} not found"),
            MemError::StaleHandle => write!(f, "stale zpool handle"),
            MemError::InvalidParameter { parameter, detail } => {
                write!(f, "invalid parameter `{parameter}`: {detail}")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    #[test]
    fn display_is_informative() {
        let err = MemError::ZpoolFull {
            requested: 4096,
            available: 128,
        };
        assert!(err.to_string().contains("4096"));
        let err = MemError::PageNotFound {
            page: PageId::new(AppId::new(3), Pfn::new(77)),
        };
        assert!(err.to_string().contains("77"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MemError>();
    }
}
