//! CPU-time accounting, split by activity.
//!
//! The paper measures the CPU usage of the memory-reclaim path (kswapd) with
//! Perfetto and the CPU usage of compression/decompression separately
//! (Figures 3 and 11). [`CpuBreakdown`] is the ledger the simulator fills in:
//! every simulated activity that occupies a CPU core charges its cost to one
//! of the [`CpuActivity`] categories so experiments can report exactly the
//! slices the paper does.

use ariadne_compress::CostNanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The CPU-consuming activities tracked by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CpuActivity {
    /// Compressing anonymous data (ZRAM store path / Ariadne AdaptiveComp).
    Compression,
    /// Decompressing anonymous data (swap-in path / PreDecomp).
    Decompression,
    /// kswapd walking LRU lists, unmapping and selecting victim pages.
    ReclaimScan,
    /// Issuing and completing flash swap I/O (CPU side only).
    SwapIo,
    /// LRU/hotness list maintenance (HotnessOrg bookkeeping).
    ListMaintenance,
    /// Everything else (page-fault handling, copies).
    Other,
}

impl CpuActivity {
    /// All activities, in reporting order.
    pub const ALL: [CpuActivity; 6] = [
        CpuActivity::Compression,
        CpuActivity::Decompression,
        CpuActivity::ReclaimScan,
        CpuActivity::SwapIo,
        CpuActivity::ListMaintenance,
        CpuActivity::Other,
    ];

    /// Lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CpuActivity::Compression => "compression",
            CpuActivity::Decompression => "decompression",
            CpuActivity::ReclaimScan => "reclaim-scan",
            CpuActivity::SwapIo => "swap-io",
            CpuActivity::ListMaintenance => "list-maintenance",
            CpuActivity::Other => "other",
        }
    }
}

impl fmt::Display for CpuActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated CPU time per activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuBreakdown {
    compression: CostNanos,
    decompression: CostNanos,
    reclaim_scan: CostNanos,
    swap_io: CostNanos,
    list_maintenance: CostNanos,
    other: CostNanos,
}

impl CpuBreakdown {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        CpuBreakdown::default()
    }

    /// Charge `cost` to `activity`.
    pub fn charge(&mut self, activity: CpuActivity, cost: CostNanos) {
        *self.slot_mut(activity) += cost;
    }

    /// Total CPU time charged to `activity`.
    #[must_use]
    pub fn total_for(&self, activity: CpuActivity) -> CostNanos {
        *self.slot(activity)
    }

    /// Total CPU time across all activities.
    #[must_use]
    pub fn total(&self) -> CostNanos {
        CpuActivity::ALL.iter().map(|&a| self.total_for(a)).sum()
    }

    /// CPU time of the compression + decompression procedures — the quantity
    /// normalized in the paper's Figure 11.
    #[must_use]
    pub fn compression_related(&self) -> CostNanos {
        self.compression + self.decompression
    }

    /// CPU time of the memory-reclaim procedure (kswapd) — the quantity
    /// reported in the paper's Figure 3. The kernel's kswapd performs both
    /// the scan and the compression of victims, so both are included.
    #[must_use]
    pub fn reclaim_related(&self) -> CostNanos {
        self.reclaim_scan + self.compression + self.swap_io
    }

    /// Difference between two ledgers (`self - earlier`), used to measure a
    /// window of activity.
    #[must_use]
    pub fn since(&self, earlier: &CpuBreakdown) -> CpuBreakdown {
        let sub = |a: CostNanos, b: CostNanos| CostNanos(a.as_nanos().saturating_sub(b.as_nanos()));
        CpuBreakdown {
            compression: sub(self.compression, earlier.compression),
            decompression: sub(self.decompression, earlier.decompression),
            reclaim_scan: sub(self.reclaim_scan, earlier.reclaim_scan),
            swap_io: sub(self.swap_io, earlier.swap_io),
            list_maintenance: sub(self.list_maintenance, earlier.list_maintenance),
            other: sub(self.other, earlier.other),
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CpuBreakdown) {
        for activity in CpuActivity::ALL {
            self.charge(activity, other.total_for(activity));
        }
    }

    fn slot(&self, activity: CpuActivity) -> &CostNanos {
        match activity {
            CpuActivity::Compression => &self.compression,
            CpuActivity::Decompression => &self.decompression,
            CpuActivity::ReclaimScan => &self.reclaim_scan,
            CpuActivity::SwapIo => &self.swap_io,
            CpuActivity::ListMaintenance => &self.list_maintenance,
            CpuActivity::Other => &self.other,
        }
    }

    fn slot_mut(&mut self, activity: CpuActivity) -> &mut CostNanos {
        match activity {
            CpuActivity::Compression => &mut self.compression,
            CpuActivity::Decompression => &mut self.decompression,
            CpuActivity::ReclaimScan => &mut self.reclaim_scan,
            CpuActivity::SwapIo => &mut self.swap_io,
            CpuActivity::ListMaintenance => &mut self.list_maintenance,
            CpuActivity::Other => &mut self.other,
        }
    }
}

impl fmt::Display for CpuBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for activity in CpuActivity::ALL {
            let value = self.total_for(activity);
            if value != CostNanos::zero() {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}={:.3}ms", activity, value.as_millis_f64())?;
                first = false;
            }
        }
        if first {
            write!(f, "idle")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_activity() {
        let mut cpu = CpuBreakdown::new();
        cpu.charge(CpuActivity::Compression, CostNanos(100));
        cpu.charge(CpuActivity::Compression, CostNanos(50));
        cpu.charge(CpuActivity::Decompression, CostNanos(25));
        assert_eq!(cpu.total_for(CpuActivity::Compression), CostNanos(150));
        assert_eq!(cpu.compression_related(), CostNanos(175));
        assert_eq!(cpu.total(), CostNanos(175));
    }

    #[test]
    fn reclaim_related_includes_compression() {
        let mut cpu = CpuBreakdown::new();
        cpu.charge(CpuActivity::ReclaimScan, CostNanos(10));
        cpu.charge(CpuActivity::Compression, CostNanos(20));
        cpu.charge(CpuActivity::SwapIo, CostNanos(5));
        cpu.charge(CpuActivity::Decompression, CostNanos(100));
        assert_eq!(cpu.reclaim_related(), CostNanos(35));
    }

    #[test]
    fn since_computes_window_deltas() {
        let mut cpu = CpuBreakdown::new();
        cpu.charge(CpuActivity::Other, CostNanos(40));
        let snapshot = cpu;
        cpu.charge(CpuActivity::Other, CostNanos(60));
        cpu.charge(CpuActivity::SwapIo, CostNanos(7));
        let delta = cpu.since(&snapshot);
        assert_eq!(delta.total_for(CpuActivity::Other), CostNanos(60));
        assert_eq!(delta.total_for(CpuActivity::SwapIo), CostNanos(7));
    }

    #[test]
    fn merge_adds_ledgers() {
        let mut a = CpuBreakdown::new();
        a.charge(CpuActivity::Compression, CostNanos(5));
        let mut b = CpuBreakdown::new();
        b.charge(CpuActivity::Compression, CostNanos(6));
        b.charge(CpuActivity::ListMaintenance, CostNanos(1));
        a.merge(&b);
        assert_eq!(a.total_for(CpuActivity::Compression), CostNanos(11));
        assert_eq!(a.total(), CostNanos(12));
    }

    #[test]
    fn display_reports_nonzero_slices_or_idle() {
        assert_eq!(CpuBreakdown::new().to_string(), "idle");
        let mut cpu = CpuBreakdown::new();
        cpu.charge(CpuActivity::SwapIo, CostNanos(2_000_000));
        assert!(cpu.to_string().contains("swap-io=2.000ms"));
    }
}
