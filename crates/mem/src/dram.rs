//! The main-memory (DRAM) model with reclaim watermarks.
//!
//! [`MainMemory`] tracks which pages are resident uncompressed in DRAM and
//! how much of the configured capacity they (plus any reserved regions such
//! as the zpool) occupy. Like the kernel, it exposes *watermarks*: when free
//! memory drops below the **low** watermark the background reclaimer
//! (kswapd) starts compressing/swapping pages out, and it keeps going until
//! free memory rises above the **high** watermark.

use crate::error::MemError;
use crate::page::{PageId, PAGE_SIZE};
use crate::slab::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Reclaim watermarks, expressed in bytes of *free* memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watermarks {
    /// Background reclaim starts when free memory drops below this.
    pub low: usize,
    /// Background reclaim stops when free memory rises above this.
    pub high: usize,
}

impl Watermarks {
    /// Android-like defaults: low = 6.25 % of capacity, high = 10 %.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn android_default(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Watermarks {
            low: capacity / 16,
            high: capacity / 10,
        }
    }

    /// Build custom watermarks.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] if `low > high`.
    pub fn new(low: usize, high: usize) -> Result<Self, MemError> {
        if low > high {
            return Err(MemError::InvalidParameter {
                parameter: "watermarks",
                detail: format!("low ({low}) must not exceed high ({high})"),
            });
        }
        Ok(Watermarks { low, high })
    }
}

/// The uncompressed-page region of main memory.
///
/// ```
/// use ariadne_mem::{AppId, MainMemory, PageId, Pfn, Watermarks};
///
/// let capacity = 16 * 1024 * 1024;
/// let mut dram = MainMemory::new(capacity, Watermarks::android_default(capacity));
/// for i in 0..100 {
///     dram.insert(PageId::new(AppId::new(1), Pfn::new(i))).unwrap();
/// }
/// assert_eq!(dram.used_bytes(), 100 * 4096);
/// assert!(!dram.below_low_watermark());
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    capacity: usize,
    reserved: usize,
    /// Resident pages, partitioned per app so a kill evicts in time
    /// proportional to the victim's own footprint instead of scanning every
    /// resident page on the device.
    resident: FxHashMap<crate::page::AppId, FxHashSet<PageId>>,
    resident_count: usize,
    watermarks: Watermarks,
    peak_used: usize,
}

impl MainMemory {
    /// Create a DRAM model with `capacity` bytes and the given watermarks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, watermarks: Watermarks) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        MainMemory {
            capacity,
            reserved: 0,
            resident: FxHashMap::default(),
            resident_count: 0,
            watermarks,
            peak_used: 0,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured watermarks.
    #[must_use]
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Bytes currently used by resident pages plus reservations.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.resident_count * PAGE_SIZE + self.reserved
    }

    /// Peak value of [`MainMemory::used_bytes`] observed so far.
    #[must_use]
    pub fn peak_used_bytes(&self) -> usize {
        self.peak_used
    }

    /// Bytes currently free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.used_bytes())
    }

    /// Number of resident uncompressed pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident_count
    }

    /// Adjust the amount of capacity reserved for non-page uses (the zpool
    /// and the pre-decompression buffer reserve space this way).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] if the reservation would exceed
    /// total capacity.
    pub fn set_reserved(&mut self, bytes: usize) -> Result<(), MemError> {
        if bytes > self.capacity {
            return Err(MemError::InvalidParameter {
                parameter: "reserved",
                detail: format!("{bytes} exceeds capacity {}", self.capacity),
            });
        }
        self.reserved = bytes;
        self.note_usage();
        Ok(())
    }

    /// Bytes currently reserved for non-page uses.
    #[must_use]
    pub fn reserved_bytes(&self) -> usize {
        self.reserved
    }

    /// Whether `page` is resident.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.resident
            .get(&page.app())
            .is_some_and(|pages| pages.contains(&page))
    }

    /// Make `page` resident.
    ///
    /// Inserting may push usage past the watermarks — the caller (the swap
    /// scheme) is responsible for reclaiming afterwards, exactly as the
    /// kernel allows allocations to dip into the watermark gap and wakes
    /// kswapd asynchronously. Inserting beyond *capacity* is an error.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ZpoolFull`]-style capacity errors if there is no
    /// room at all, or succeeds trivially if the page is already resident.
    pub fn insert(&mut self, page: PageId) -> Result<(), MemError> {
        if self.contains(page) {
            return Ok(());
        }
        if self.free_bytes() < PAGE_SIZE {
            return Err(MemError::ZpoolFull {
                requested: PAGE_SIZE,
                available: self.free_bytes(),
            });
        }
        self.resident.entry(page.app()).or_default().insert(page);
        self.resident_count += 1;
        self.note_usage();
        Ok(())
    }

    /// Remove `page` from the resident set. Returns `true` if it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(pages) = self.resident.get_mut(&page.app()) else {
            return false;
        };
        let removed = pages.remove(&page);
        if removed {
            self.resident_count -= 1;
            if pages.is_empty() {
                self.resident.remove(&page.app());
            }
        }
        removed
    }

    /// Remove every resident page belonging to `app`, returning them.
    pub fn evict_app(&mut self, app: crate::page::AppId) -> Vec<PageId> {
        let Some(pages) = self.resident.remove(&app) else {
            return Vec::new();
        };
        self.resident_count -= pages.len();
        pages.into_iter().collect()
    }

    /// Whether free memory is below the low watermark (kswapd should run).
    #[must_use]
    pub fn below_low_watermark(&self) -> bool {
        self.free_bytes() < self.watermarks.low
    }

    /// Whether free memory is above the high watermark (kswapd may stop).
    #[must_use]
    pub fn above_high_watermark(&self) -> bool {
        self.free_bytes() > self.watermarks.high
    }

    /// Bytes that must be freed to reach the high watermark (zero if already
    /// above it).
    #[must_use]
    pub fn reclaim_target_bytes(&self) -> usize {
        self.watermarks.high.saturating_sub(self.free_bytes())
    }

    fn note_usage(&mut self) {
        self.peak_used = self.peak_used.max(self.used_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    #[test]
    fn insert_and_remove_track_usage() {
        let mut dram = MainMemory::new(1 << 20, Watermarks::android_default(1 << 20));
        assert!(dram.insert(page(1, 0)).is_ok());
        assert!(dram.insert(page(1, 1)).is_ok());
        assert_eq!(dram.used_bytes(), 2 * PAGE_SIZE);
        assert!(dram.remove(page(1, 0)));
        assert!(!dram.remove(page(1, 0)));
        assert_eq!(dram.resident_pages(), 1);
    }

    #[test]
    fn double_insert_is_idempotent() {
        let mut dram = MainMemory::new(1 << 20, Watermarks::android_default(1 << 20));
        dram.insert(page(1, 7)).unwrap();
        dram.insert(page(1, 7)).unwrap();
        assert_eq!(dram.used_bytes(), PAGE_SIZE);
    }

    #[test]
    fn capacity_is_enforced() {
        let capacity = 4 * PAGE_SIZE;
        let mut dram = MainMemory::new(capacity, Watermarks::new(0, 0).unwrap());
        for i in 0..4 {
            dram.insert(page(1, i)).unwrap();
        }
        assert!(dram.insert(page(1, 99)).is_err());
        assert_eq!(dram.free_bytes(), 0);
    }

    #[test]
    fn watermarks_flag_memory_pressure() {
        let capacity = 100 * PAGE_SIZE;
        let marks = Watermarks::new(10 * PAGE_SIZE, 20 * PAGE_SIZE).unwrap();
        let mut dram = MainMemory::new(capacity, marks);
        for i in 0..85 {
            dram.insert(page(1, i)).unwrap();
        }
        assert!(!dram.below_low_watermark());
        assert!(!dram.above_high_watermark());
        for i in 85..95 {
            dram.insert(page(1, i)).unwrap();
        }
        assert!(dram.below_low_watermark());
        assert_eq!(dram.reclaim_target_bytes(), 15 * PAGE_SIZE);
    }

    #[test]
    fn reservations_consume_capacity() {
        let capacity = 100 * PAGE_SIZE;
        let mut dram = MainMemory::new(capacity, Watermarks::android_default(capacity));
        dram.set_reserved(50 * PAGE_SIZE).unwrap();
        assert_eq!(dram.free_bytes(), 50 * PAGE_SIZE);
        assert!(dram.set_reserved(101 * PAGE_SIZE).is_err());
    }

    #[test]
    fn evict_app_removes_only_that_app() {
        let mut dram = MainMemory::new(1 << 22, Watermarks::android_default(1 << 22));
        for i in 0..10 {
            dram.insert(page(1, i)).unwrap();
            dram.insert(page(2, i)).unwrap();
        }
        let evicted = dram.evict_app(AppId::new(1));
        assert_eq!(evicted.len(), 10);
        assert_eq!(dram.resident_pages(), 10);
        assert!(evicted.iter().all(|p| p.app() == AppId::new(1)));
    }

    #[test]
    fn peak_usage_is_tracked() {
        let mut dram = MainMemory::new(1 << 20, Watermarks::android_default(1 << 20));
        for i in 0..20 {
            dram.insert(page(1, i)).unwrap();
        }
        for i in 0..20 {
            dram.remove(page(1, i));
        }
        assert_eq!(dram.peak_used_bytes(), 20 * PAGE_SIZE);
        assert_eq!(dram.used_bytes(), 0);
    }

    #[test]
    fn invalid_watermarks_are_rejected() {
        assert!(Watermarks::new(10, 5).is_err());
        assert!(Watermarks::new(5, 10).is_ok());
    }
}
