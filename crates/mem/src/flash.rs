//! The flash-memory swap device (UFS 3.1 on the Pixel 7), modelled as a
//! *queued* device rather than a bag of instantaneous writes.
//!
//! Flash-backed swap matters to the paper in two ways: the SWAP baseline
//! stores reclaimed pages there directly, and both ZSWAP and Ariadne write
//! *compressed* cold data there when the zpool fills up. Every write wears
//! the flash cells, so [`FlashDevice`] keeps the write statistics the paper
//! uses to argue that Ariadne (which swaps out compressed data, and mostly
//! cold data) writes less than a flash-only swap scheme.
//!
//! # The I/O model
//!
//! Historically the simulator charged every flash write as an inline
//! synchronous latency on the caller, so writeback could never overlap
//! foreground execution. [`FlashDevice`] now owns a single-channel command
//! queue ([`FlashIoConfig`]):
//!
//! * a **write submission** ([`FlashDevice::submit_writes`]) allocates the
//!   swap slots immediately (the data leaves DRAM at submission) but the
//!   device only *completes* the command later — each command costs a fixed
//!   per-command overhead plus a per-KiB transfer cost, and commands are
//!   serviced strictly in submission order;
//! * up to [`FlashIoConfig::max_batch_pages`] pages ride in one **batch
//!   command**, paying the fixed overhead once;
//! * at most [`FlashIoConfig::queue_depth`] commands may be outstanding —
//!   a submitter that finds the queue full stalls until the oldest command
//!   retires (the returned [`FlushResult::queue_stall`]);
//! * a **fault** on a page whose write is still in flight
//!   ([`FlashDevice::fault_in`]) stalls only until that command's
//!   completion instead of re-paying the full device read latency — the
//!   data is still in the in-memory write buffer;
//! * under [`FlashIoMode::Sync`] the queue is bypassed and every object is
//!   written inline, with the device time reported back to the caller as
//!   user-visible latency ([`FlushResult::sync_latency`]) — the comparison
//!   baseline the `writeback` experiment measures against.
//!
//! Completion is *time-driven and lazy*: any method that takes a `now`
//! timestamp first retires every command whose completion time has passed,
//! so behaviour depends only on simulated time, never on how often the
//! event engine polls (this is what keeps serial and parallel replays
//! byte-identical).

use crate::error::MemError;
use crate::page::{PageId, PAGE_SIZE};
use crate::slab::{Chain, FxHashMap, Slab, SlabKey};
use ariadne_compress::CostNanos;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Link channel of the per-app entry chain.
const APP_CHANNEL: usize = 0;
/// Link channel of the per-command entry chain: every *live* in-flight
/// entry of a queued write command is chained under its [`IoRequestId`],
/// so retirement walks exactly the entries that still need retiring —
/// fault-cancelled slots left the chain when they were cancelled.
const CMD_CHANNEL: usize = 1;

/// Identifier of a slot in the flash swap area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwapSlot(u64);

impl SwapSlot {
    /// The raw slot number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Construct a raw slot id in unit tests.
    #[cfg(test)]
    pub(crate) fn for_tests(raw: u64) -> Self {
        SwapSlot(raw)
    }
}

impl fmt::Display for SwapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot:{}", self.0)
    }
}

/// Identifier of one submitted device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IoRequestId(u64);

impl IoRequestId {
    /// The raw request number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Construct a raw request id in unit tests.
    #[cfg(test)]
    pub(crate) fn for_tests(raw: u64) -> Self {
        IoRequestId(raw)
    }
}

impl fmt::Display for IoRequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "io:{}", self.0)
    }
}

/// Whether flash writes are charged inline or queued on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashIoMode {
    /// Every write is serviced inline; the device time is returned to the
    /// caller as user-visible latency. Writeback can never overlap
    /// foreground execution (the legacy model, kept as a baseline).
    Sync,
    /// Writes are queued commands that complete asynchronously; the caller
    /// only ever pays a queue-full stall or an in-flight fault stall.
    Queued,
}

/// The device-queue cost model and knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlashIoConfig {
    /// Inline or queued write servicing.
    pub mode: FlashIoMode,
    /// Maximum number of outstanding commands before submitters stall.
    pub queue_depth: usize,
    /// Fixed cost of issuing one write command, in nanoseconds.
    pub write_command_overhead_ns: u64,
    /// Transfer cost per KiB written, in nanoseconds.
    pub write_per_kib_ns: u64,
    /// Maximum pages carried by one batch write command.
    pub max_batch_pages: usize,
    /// Wear-dependent latency inflation, in parts per million of the base
    /// command cost per average erase-block cycle consumed so far. Real
    /// flash programs slower as cells wear out (the controller retries and
    /// re-tunes program voltages); `0` — the default — disables the effect
    /// entirely, keeping every cost byte-identical to the unworn device.
    pub wear_latency_ppm_per_erase: u64,
}

impl FlashIoConfig {
    /// The queued UFS-3.1-like default: one 4 KiB page write costs the same
    /// 140 µs as [`MemTimingModel::pixel7`](crate::MemTimingModel::pixel7)
    /// charges (28 µs command overhead + 28 µs/KiB transfer), with a
    /// 32-command queue and 8-page batch commands.
    #[must_use]
    pub fn ufs31() -> Self {
        FlashIoConfig {
            mode: FlashIoMode::Queued,
            queue_depth: 32,
            write_command_overhead_ns: 28_000,
            write_per_kib_ns: 28_000,
            max_batch_pages: 8,
            wear_latency_ppm_per_erase: 0,
        }
    }

    /// A slower eMMC-like device for entry-class hardware: no command
    /// queue to speak of, higher per-command overhead and roughly a third
    /// of the UFS transfer rate.
    #[must_use]
    pub fn emmc() -> Self {
        FlashIoConfig {
            mode: FlashIoMode::Queued,
            queue_depth: 8,
            write_command_overhead_ns: 84_000,
            write_per_kib_ns: 84_000,
            max_batch_pages: 4,
            wear_latency_ppm_per_erase: 0,
        }
    }

    /// The synchronous baseline: identical costs, but every write is
    /// charged inline on the caller.
    #[must_use]
    pub fn sync() -> Self {
        FlashIoConfig {
            mode: FlashIoMode::Sync,
            ..FlashIoConfig::ufs31()
        }
    }

    /// Override the queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Override the batch size (clamped to at least 1); 1 disables batching.
    #[must_use]
    pub fn with_max_batch_pages(mut self, pages: usize) -> Self {
        self.max_batch_pages = pages.max(1);
        self
    }

    /// Enable wear-dependent latency inflation (see
    /// [`FlashIoConfig::wear_latency_ppm_per_erase`]); 0 disables it.
    #[must_use]
    pub fn with_wear_latency_ppm(mut self, ppm: u64) -> Self {
        self.wear_latency_ppm_per_erase = ppm;
        self
    }

    /// Device time to service one write command of `bytes` payload.
    #[must_use]
    pub fn write_command_cost(&self, bytes: usize) -> CostNanos {
        let kib = bytes.div_ceil(1024).max(1) as u128;
        CostNanos(
            u128::from(self.write_command_overhead_ns) + kib * u128::from(self.write_per_kib_ns),
        )
    }
}

impl Default for FlashIoConfig {
    fn default() -> Self {
        FlashIoConfig::ufs31()
    }
}

/// Wear and traffic statistics for the flash swap device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Number of objects written (each carries one swap slot).
    pub writes: usize,
    /// Total bytes written (flash lifetime is proportional to this).
    pub bytes_written: usize,
    /// Number of read operations performed.
    pub reads: usize,
    /// Total bytes read.
    pub bytes_read: usize,
    /// Number of device write commands issued (batch commands count once,
    /// so `commands <= writes` when batching is on).
    pub commands: usize,
    /// Physical bytes programmed into the cells: the page-rounded footprint
    /// of every stored object. The flash translation layer cannot program
    /// less than a page, so this is never below
    /// [`FlashStats::bytes_written`] — their ratio is the write
    /// amplification factor ([`FlashStats::waf`]).
    pub physical_bytes_written: usize,
    /// Erase-block cycles consumed across the whole device. Flash cells
    /// endure a bounded number of program/erase cycles, so this is the
    /// device-lifetime budget every write spends from.
    pub erases: usize,
}

impl FlashStats {
    /// The write amplification factor: physical bytes programmed per
    /// logical byte written. Page-rounding of sub-page compressed objects
    /// makes this ≥ 1; a device that has written nothing reports 1.
    #[must_use]
    pub fn waf(&self) -> f64 {
        if self.bytes_written == 0 {
            return 1.0;
        }
        self.physical_bytes_written as f64 / self.bytes_written as f64
    }
}

/// One object to be written by [`FlashDevice::submit_writes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// The pages the object covers.
    pub pages: Vec<PageId>,
    /// Uncompressed size of the object.
    pub original_bytes: usize,
    /// Bytes that actually hit the flash (compressed size for writeback).
    pub stored_bytes: usize,
    /// Whether the stored bytes are compressed.
    pub compressed: bool,
}

/// The outcome of one [`FlashDevice::submit_writes`] call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlushResult {
    /// Slots allocated for the accepted requests, in request order.
    pub slots: Vec<SwapSlot>,
    /// Device commands issued (after batching).
    pub commands: usize,
    /// Time the submitter had to wait for a free queue slot
    /// ([`FlashIoMode::Queued`] only).
    pub queue_stall: CostNanos,
    /// Inline device time charged to the caller ([`FlashIoMode::Sync`] only).
    pub sync_latency: CostNanos,
    /// Requests rejected for capacity (or validity); the caller decides
    /// whether their pages stay resident or are dropped.
    pub dropped: Vec<WriteRequest>,
}

/// The outcome of faulting a page back in via [`FlashDevice::fault_in`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultIn {
    /// The pages of the removed object.
    pub pages: Vec<PageId>,
    /// Bytes the object occupied on flash.
    pub stored_bytes: usize,
    /// Uncompressed size of the object.
    pub original_bytes: usize,
    /// Whether the stored bytes were compressed.
    pub compressed: bool,
    /// Remaining time until the object's write command completes — zero for
    /// objects already at rest on flash.
    pub stall: CostNanos,
    /// `true` when the object was still in the write queue: the caller pays
    /// [`FaultIn::stall`] instead of a device read.
    pub from_in_flight: bool,
}

/// A stored object in the flash swap area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct FlashEntry {
    /// The slot the object was allocated (slots are sequential and
    /// observable — swap-in traces record them — so they are allocated
    /// independently of the slab slot the entry happens to occupy).
    slot: SwapSlot,
    pages: Vec<PageId>,
    stored_bytes: usize,
    original_bytes: usize,
    compressed: bool,
    /// `Some(t)` while the object's write command is in flight (completes at
    /// simulated nanosecond `t`); `None` once at rest.
    completes_at: Option<u128>,
    /// The queued write command carrying the object — `Some` while the
    /// command is in flight (the entry is then on that command's
    /// [`CMD_CHANNEL`] chain), `None` once retired or written inline.
    command: Option<IoRequestId>,
}

/// The flash swap device.
///
/// ```
/// use ariadne_mem::{AppId, FlashDevice, PageId, Pfn};
///
/// let mut flash = FlashDevice::new(8 * 1024 * 1024);
/// let page = PageId::new(AppId::new(1), Pfn::new(0));
/// let slot = flash.write(vec![page], 4096, 4096, false).unwrap();
/// assert!(flash.contains(page));
/// let entry = flash.read(slot).unwrap();
/// assert_eq!(entry.0, vec![page]);
/// assert_eq!(flash.stats().bytes_written, 4096);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlashDevice {
    capacity: usize,
    used: usize,
    next_slot: u64,
    entries: Slab<FlashEntry>,
    slot_index: FxHashMap<SwapSlot, SlabKey>,
    page_index: FxHashMap<PageId, SwapSlot>,
    /// Per-application entry chain through the slab slots, so `release_app`
    /// (kill storms) walks the victim's own objects instead of filtering the
    /// whole table. Chain order is store order — deterministic.
    app_chains: FxHashMap<crate::page::AppId, Chain>,
    stats: FlashStats,
    io: FlashIoConfig,
    next_request: u64,
    /// Completion time of the last queued command (the single channel
    /// services commands back to back).
    busy_until: u128,
    /// Outstanding commands in completion order: `(completes_at, id)`. The
    /// slots each command still carries live on the command's
    /// [`CMD_CHANNEL`] chain (see [`FlashDevice::command_chains`]), so the
    /// queue itself holds no per-slot payload to clone or re-scan.
    outstanding: VecDeque<(u128, IoRequestId)>,
    /// Per-command chain through the slab slots of the *live* in-flight
    /// entries. A fault that cancels a slot unlinks it here immediately, so
    /// retirement walks only entries that actually need their
    /// `completes_at` cleared — never fault-cancelled tombstones.
    command_chains: FxHashMap<IoRequestId, Chain>,
    /// Parked fault tasks: faults served from in-flight commands, retired
    /// in one batch when their command completes.
    fault_tasks: crate::fault::FaultTaskTable,
    /// Program/erase cycles per erase block. Blocks are programmed
    /// round-robin (an idealized wear-levelling FTL): physical page `n`
    /// lands in block `(n / pages-per-block) % blocks`, and opening a
    /// fresh block costs that block one erase. Allocated lazily on the
    /// first write (the capacity is fixed by then).
    erase_counts: Vec<u32>,
    /// Physical pages programmed over the device lifetime (drives the
    /// round-robin block cursor; never decremented — wear is permanent).
    physical_pages_written: usize,
    /// Structured-event sink for writeback submit/complete (disabled by
    /// default — one branch; see `ariadne-obs`). Observation never perturbs
    /// the device: the handle only ever receives copies of values.
    trace: ariadne_obs::TraceHandle,
}

/// Bytes per simulated flash erase block (a typical 256 KiB block).
pub const ERASE_BLOCK_BYTES: usize = 64 * PAGE_SIZE;

impl FlashDevice {
    /// Create a flash swap area of `capacity` bytes with the default queued
    /// I/O model ([`FlashIoConfig::ufs31`]).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlashDevice {
            capacity,
            ..FlashDevice::default()
        }
    }

    /// Create a flash swap area with an explicit I/O model.
    #[must_use]
    pub fn with_io(capacity: usize, io: FlashIoConfig) -> Self {
        FlashDevice {
            capacity,
            io,
            ..FlashDevice::default()
        }
    }

    /// The I/O model in effect.
    #[must_use]
    pub fn io(&self) -> FlashIoConfig {
        self.io
    }

    /// Attach a trace sink: writeback submissions and completions are
    /// emitted through it (disabled handles cost one branch per call).
    pub fn set_trace(&mut self, trace: &ariadne_obs::TraceHandle) {
        self.trace = trace.clone();
    }

    /// Configured swap-area capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently stored (page-granular), including in-flight objects
    /// (their space is reserved at submission).
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of objects stored (including in-flight objects).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime read/write statistics.
    #[must_use]
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Whether `page` is currently stored in the swap area (at rest or with
    /// its write still in flight).
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.page_index.contains_key(&page)
    }

    /// The slot holding `page`, if any.
    #[must_use]
    pub fn slot_for(&self, page: PageId) -> Option<SwapSlot> {
        self.page_index.get(&page).copied()
    }

    /// Number of write commands still in flight.
    #[must_use]
    pub fn in_flight_commands(&self) -> usize {
        self.outstanding.len()
    }

    /// Program/erase cycles consumed per erase block, in block order.
    /// Empty until the first write allocates the block map.
    #[must_use]
    pub fn erase_counts(&self) -> &[u32] {
        &self.erase_counts
    }

    /// The most-cycled block's erase count — the figure a lifetime budget
    /// is judged against (0 for an unwritten device).
    #[must_use]
    pub fn max_erase_count(&self) -> u32 {
        self.erase_counts.iter().copied().max().unwrap_or(0)
    }

    /// Completion time of the earliest outstanding command, if any (what the
    /// event engine schedules its `IoComplete` events from).
    #[must_use]
    pub fn next_completion(&self) -> Option<u128> {
        self.outstanding.front().map(|(t, _)| *t)
    }

    /// Lifetime counters of the fault-task table (faults parked on
    /// in-flight commands and the batches that retired them).
    #[must_use]
    pub fn fault_task_stats(&self) -> crate::fault::FaultTaskStats {
        self.fault_tasks.stats()
    }

    /// Fault tasks currently parked (their commands have not retired yet).
    #[must_use]
    pub fn parked_fault_tasks(&self) -> usize {
        self.fault_tasks.parked()
    }

    /// The completion time of the in-flight command holding `slot`, or
    /// `None` if the slot is at rest (or free).
    #[must_use]
    pub fn pending_completion(&self, slot: SwapSlot) -> Option<u128> {
        self.entry(slot).and_then(|e| e.completes_at)
    }

    fn entry(&self, slot: SwapSlot) -> Option<&FlashEntry> {
        self.slot_index
            .get(&slot)
            .and_then(|k| self.entries.get(*k))
    }

    /// Detach the object in `slot` from every index (slot map, page index,
    /// per-app chain) and return it. The space accounting is left to the
    /// caller so each removal path charges what it means to.
    fn take_entry(&mut self, slot: SwapSlot) -> Option<FlashEntry> {
        let key = self.slot_index.remove(&slot)?;
        let live = self.entries.get(key).expect("indexed slot is live");
        let app = live.pages[0].app();
        let command = live.command;
        let mut chain = *self.app_chains.get(&app).expect("app chain exists");
        chain.unlink(&mut self.entries, APP_CHANNEL, key.index());
        if chain.is_empty() {
            self.app_chains.remove(&app);
        } else {
            self.app_chains.insert(app, chain);
        }
        // An in-flight entry also leaves its command's chain, so retirement
        // never sees (or pays for) a cancelled slot.
        if let Some(command) = command {
            let mut chain = *self
                .command_chains
                .get(&command)
                .expect("command chain exists");
            chain.unlink(&mut self.entries, CMD_CHANNEL, key.index());
            if chain.is_empty() {
                self.command_chains.remove(&command);
            } else {
                self.command_chains.insert(command, chain);
            }
        }
        let entry = self.entries.remove(key).expect("indexed slot is live");
        for page in &entry.pages {
            self.page_index.remove(page);
        }
        Some(entry)
    }

    /// Retire every command whose completion time has passed; its objects
    /// become at-rest flash data. Returns the number of commands retired.
    ///
    /// Each retiring command walks its own [`CMD_CHANNEL`] chain — only the
    /// entries still live and in flight — and drains its parked fault tasks
    /// in one batch. Fault-cancelled slots left the chain at cancellation
    /// time, so a relaunch storm's worth of faults adds nothing to the
    /// retirement cost.
    pub fn retire_completed(&mut self, now_nanos: u128) -> usize {
        let _io = ariadne_obs::profile::span(ariadne_obs::Phase::Io);
        let traced = self.trace.is_enabled();
        let mut retired = 0usize;
        while let Some((completes_at, _)) = self.outstanding.front() {
            if *completes_at > now_nanos {
                break;
            }
            let (completes_at, request) = self.outstanding.pop_front().expect("front exists");
            let mut trace_pages = 0usize;
            let mut trace_bytes = 0usize;
            if let Some(mut chain) = self.command_chains.remove(&request) {
                while let Some(index) = chain.head() {
                    chain.unlink(&mut self.entries, CMD_CHANNEL, index);
                    let entry = self.entries.value_at_mut(index);
                    entry.completes_at = None;
                    entry.command = None;
                    if traced {
                        trace_pages += entry.pages.len();
                        trace_bytes += entry.stored_bytes;
                    }
                }
            }
            self.fault_tasks.retire_command(request);
            // Stamped with the command's *completion* time, not `now`:
            // retirement may run lazily long after the device finished.
            self.trace.emit(completes_at, || {
                ariadne_obs::TraceEventKind::WritebackComplete {
                    pages: trace_pages,
                    bytes: trace_bytes,
                }
            });
            retired += 1;
        }
        retired
    }

    /// Write an object covering `pages` to the swap area, inline and
    /// unqueued (the legacy path; [`FlashIoMode::Sync`] submissions and unit
    /// tests use it).
    ///
    /// `stored_bytes` is what actually hits the flash (compressed size for
    /// ZSWAP-style writeback, `pages.len() * 4096` for the SWAP baseline).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SwapSpaceFull`] when the area cannot hold the
    /// object and [`MemError::InvalidParameter`] for an empty page list or a
    /// page that is already swapped out.
    pub fn write(
        &mut self,
        pages: Vec<PageId>,
        original_bytes: usize,
        stored_bytes: usize,
        compressed: bool,
    ) -> Result<SwapSlot, MemError> {
        self.validate(&pages, stored_bytes)?;
        if self.used + Self::footprint(stored_bytes) > self.capacity {
            return Err(MemError::SwapSpaceFull);
        }
        self.stats.commands += 1;
        let slot = self.store_entry(
            WriteRequest {
                pages,
                original_bytes,
                stored_bytes,
                compressed,
            },
            None,
            None,
        );
        self.debug_check_invariants();
        Ok(slot)
    }

    /// Submit a set of write requests at simulated time `now_nanos`.
    ///
    /// Invalid requests (empty page list, a page already swapped out) and
    /// requests the remaining capacity cannot hold are returned in
    /// [`FlushResult::dropped`]; everything else is accepted atomically per
    /// request. Under [`FlashIoMode::Queued`] accepted requests are packed
    /// into batch commands of at most [`FlashIoConfig::max_batch_pages`]
    /// pages; under [`FlashIoMode::Sync`] each request is written inline and
    /// its device time accumulates in [`FlushResult::sync_latency`].
    pub fn submit_writes(&mut self, requests: Vec<WriteRequest>, now_nanos: u128) -> FlushResult {
        let _io = ariadne_obs::profile::span(ariadne_obs::Phase::Io);
        self.retire_completed(now_nanos);
        let mut result = FlushResult::default();

        // Accept/reject pass. Track the projected footprint so a batch never
        // overshoots capacity even when individual requests would fit alone,
        // and the pages accepted so far so duplicates *within* the
        // submission are rejected like duplicates against stored data.
        let mut accepted: Vec<WriteRequest> = Vec::with_capacity(requests.len());
        let mut accepted_pages: std::collections::HashSet<PageId> =
            std::collections::HashSet::new();
        let mut projected = self.used;
        for request in requests {
            let mut request_pages = std::collections::HashSet::new();
            let invalid = request.pages.is_empty()
                || request.pages.iter().any(|p| {
                    self.page_index.contains_key(p)
                        || accepted_pages.contains(p)
                        || !request_pages.insert(*p)
                });
            let footprint = Self::footprint(request.stored_bytes);
            if invalid || projected + footprint > self.capacity {
                result.dropped.push(request);
            } else {
                projected += footprint;
                accepted_pages.extend(request_pages);
                accepted.push(request);
            }
        }
        if accepted.is_empty() {
            return result;
        }

        match self.io.mode {
            FlashIoMode::Sync => {
                let mut cursor = now_nanos;
                for request in accepted {
                    let cost = self.wear_adjusted_cost(request.stored_bytes);
                    result.commands += 1;
                    // The writer occupies the device inline: it first waits
                    // out any earlier busy window, then performs the write —
                    // both are part of its synchronous latency. Later reads
                    // queue behind the window too (see
                    // [`FlashDevice::fault_in`]); this is the contention the
                    // queued model eliminates by prioritizing reads.
                    let start = cursor.max(self.busy_until);
                    let completes = start + cost.as_nanos();
                    result.sync_latency += CostNanos(completes - cursor);
                    self.busy_until = completes;
                    cursor = completes;
                    let (trace_pages, trace_bytes) = (request.pages.len(), request.stored_bytes);
                    let slot = self.store_entry(request, None, None);
                    result.slots.push(slot);
                    self.trace
                        .emit(start, || ariadne_obs::TraceEventKind::WritebackSubmit {
                            commands: 1,
                            pages: trace_pages,
                            bytes: trace_bytes,
                            completes_at_nanos: completes,
                        });
                }
            }
            FlashIoMode::Queued => {
                let mut cursor = now_nanos;
                let mut command: Vec<WriteRequest> = Vec::new();
                let mut command_pages = 0usize;
                let flush_command =
                    |device: &mut FlashDevice, cmd: Vec<WriteRequest>, cursor: &mut u128| {
                        if cmd.is_empty() {
                            return (CostNanos::zero(), Vec::new());
                        }
                        let stall = device.wait_for_queue_slot(cursor);
                        let bytes: usize = cmd.iter().map(|r| r.stored_bytes).sum();
                        let trace_pages: usize = cmd.iter().map(|r| r.pages.len()).sum();
                        let start = (*cursor).max(device.busy_until);
                        let completes_at = start + device.wear_adjusted_cost(bytes).as_nanos();
                        device.busy_until = completes_at;
                        let request_id = IoRequestId(device.next_request);
                        device.next_request += 1;
                        let mut slots = Vec::with_capacity(cmd.len());
                        for request in cmd {
                            slots.push(device.store_entry(
                                request,
                                Some(completes_at),
                                Some(request_id),
                            ));
                        }
                        device.outstanding.push_back((completes_at, request_id));
                        device
                            .trace
                            .emit(start, || ariadne_obs::TraceEventKind::WritebackSubmit {
                                commands: 1,
                                pages: trace_pages,
                                bytes,
                                completes_at_nanos: completes_at,
                            });
                        (stall, slots)
                    };
                for request in accepted {
                    let pages = request.pages.len().max(1);
                    if command_pages + pages > self.io.max_batch_pages && !command.is_empty() {
                        let (stall, slots) =
                            flush_command(self, std::mem::take(&mut command), &mut cursor);
                        result.queue_stall += stall;
                        result.slots.extend(slots);
                        result.commands += 1;
                        command_pages = 0;
                    }
                    command_pages += pages;
                    command.push(request);
                }
                let (stall, slots) = flush_command(self, command, &mut cursor);
                if !slots.is_empty() {
                    result.commands += 1;
                }
                result.queue_stall += stall;
                result.slots.extend(slots);
            }
        }
        self.stats.commands += result.commands;
        self.debug_check_invariants();
        result
    }

    /// Block the submitter until the queue has a free command slot, retiring
    /// the commands that complete while it waits. Returns the stall and
    /// advances `cursor` past it.
    fn wait_for_queue_slot(&mut self, cursor: &mut u128) -> CostNanos {
        let mut stall = CostNanos::zero();
        while self.outstanding.len() >= self.io.queue_depth.max(1) {
            let oldest = self
                .outstanding
                .front()
                .map(|(t, _)| *t)
                .expect("queue is full");
            if oldest > *cursor {
                stall += CostNanos(oldest - *cursor);
                *cursor = oldest;
            }
            self.retire_completed(*cursor);
        }
        stall
    }

    /// Read the object in `slot` (without removing it), returning its pages,
    /// stored size, original size and whether it is compressed.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the slot is free.
    pub fn read(&mut self, slot: SwapSlot) -> Result<(Vec<PageId>, usize, usize, bool), MemError> {
        let entry = self.entry(slot).ok_or(MemError::StaleHandle)?;
        let pages = entry.pages.clone();
        let (stored, original, compressed) =
            (entry.stored_bytes, entry.original_bytes, entry.compressed);
        self.stats.reads += 1;
        self.stats.bytes_read += stored;
        Ok((pages, stored, original, compressed))
    }

    /// Remove the object in `slot` for a page fault at simulated time
    /// `now_nanos`.
    ///
    /// * If the object's write command is still in flight
    ///   ([`FlashIoMode::Queued`]), the fault pays only the remaining time
    ///   until completion ([`FaultIn::stall`]) — the data is served from
    ///   the in-memory write buffer and no device read happens.
    /// * Under [`FlashIoMode::Sync`], an at-rest fault must still wait for
    ///   the device to finish any synchronous writes issued before it
    ///   ([`FaultIn::stall`] is the remaining busy window) and then pays the
    ///   device read on top — synchronous writeback cannot overlap
    ///   foreground reads. The queued model prioritizes reads ahead of
    ///   pending write commands, so at-rest faults there never contend.
    ///
    /// The slot is always freed: a faulted-in object can never leave an
    /// orphaned slot behind.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the slot is free.
    pub fn fault_in(&mut self, slot: SwapSlot, now_nanos: u128) -> Result<FaultIn, MemError> {
        let _io = ariadne_obs::profile::span(ariadne_obs::Phase::Io);
        self.retire_completed(now_nanos);
        let entry = self.take_entry(slot).ok_or(MemError::StaleHandle)?;
        self.used -= Self::footprint(entry.stored_bytes);
        let (stall, from_in_flight) = match entry.completes_at {
            Some(completes_at) => {
                let stall = CostNanos(completes_at.saturating_sub(now_nanos));
                // Park a lightweight fault task on the command: the stall is
                // charged to this fault right here, and the record is drained
                // in one batch when the command retires. `take_entry` already
                // removed the slot from the command's chain, so parking is
                // this fault's only O(1) footprint on the retirement path.
                let command = entry.command.expect("in-flight entry has a command");
                self.fault_tasks.park(command, slot, stall, now_nanos);
                (stall, true)
            }
            None => {
                self.stats.reads += 1;
                self.stats.bytes_read += entry.stored_bytes;
                let contention = match self.io.mode {
                    FlashIoMode::Sync => CostNanos(self.busy_until.saturating_sub(now_nanos)),
                    FlashIoMode::Queued => CostNanos::zero(),
                };
                (contention, false)
            }
        };
        // Leak-proofing: a fault-in must fully release the slot — no page may
        // keep pointing at it (the property test in `tests/flash_io.rs` pins
        // the same invariant over arbitrary operation sequences).
        debug_assert!(
            entry.pages.iter().all(|p| !self.page_index.contains_key(p)),
            "fault-in left orphaned page-index entries for {slot}"
        );
        self.debug_check_invariants();
        Ok(FaultIn {
            pages: entry.pages,
            stored_bytes: entry.stored_bytes,
            original_bytes: entry.original_bytes,
            compressed: entry.compressed,
            stall,
            from_in_flight,
        })
    }

    /// Release every object belonging to `app` (its process was killed):
    /// the slots are freed without any device read — the data is simply
    /// invalidated, like discarding a dead process's swap entries.
    ///
    /// Objects whose write command is still in flight are released too: each
    /// leaves its command's chain as it is taken, the command itself stays
    /// queued and retires harmlessly later (its chain is simply shorter — or
    /// gone), so [`FlashDevice::leak_check`] holds throughout. Returns
    /// `(slots freed, pages released)`.
    pub fn release_app(&mut self, app: crate::page::AppId, now_nanos: u128) -> (usize, usize) {
        let _io = ariadne_obs::profile::span(ariadne_obs::Phase::Io);
        self.retire_completed(now_nanos);
        let Some(chain) = self.app_chains.get(&app) else {
            self.debug_check_invariants();
            return (0, 0);
        };
        let doomed: Vec<SwapSlot> = chain
            .indices(&self.entries, APP_CHANNEL)
            .map(|i| self.entries.value_at(i).slot)
            .collect();
        let mut pages = 0usize;
        for slot in &doomed {
            let entry = self.take_entry(*slot).expect("doomed slot is live");
            // Swap objects are always single-application (compression groups
            // never mix apps); a mixed entry would leak the other app's pages.
            debug_assert!(
                entry.pages.iter().all(|p| p.app() == app),
                "flash entry {slot} mixes applications"
            );
            self.used -= Self::footprint(entry.stored_bytes);
            pages += entry.pages.len();
        }
        self.debug_check_invariants();
        (doomed.len(), pages)
    }

    /// Remove the object in `slot`, freeing the space.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the slot is free.
    pub fn discard(&mut self, slot: SwapSlot) -> Result<(), MemError> {
        let entry = self.take_entry(slot).ok_or(MemError::StaleHandle)?;
        self.used -= Self::footprint(entry.stored_bytes);
        self.debug_check_invariants();
        Ok(())
    }

    /// Verify the slot-accounting invariants: every indexed page points at a
    /// live slot covering it, every stored page is indexed, the used-bytes
    /// counter matches the footprints of the live entries, and every
    /// outstanding command refers only to live in-flight slots.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant. Used by the
    /// property tests; debug builds also assert it after every mutation.
    pub fn leak_check(&self) -> Result<(), String> {
        let mut indexed_pages = 0usize;
        let mut used = 0usize;
        for (key, entry) in self.entries.iter() {
            let slot = &entry.slot;
            if self.slot_index.get(slot) != Some(&key) {
                return Err(format!("{slot} missing from the slot index"));
            }
            used += Self::footprint(entry.stored_bytes);
            for page in &entry.pages {
                match self.page_index.get(page) {
                    Some(s) if s == slot => indexed_pages += 1,
                    Some(other) => {
                        return Err(format!("page {page} of {slot} indexed to {other}"));
                    }
                    None => return Err(format!("page {page} of {slot} missing from the index")),
                }
            }
        }
        if indexed_pages != self.page_index.len() {
            return Err(format!(
                "{} orphaned page-index entries",
                self.page_index.len() - indexed_pages
            ));
        }
        if used != self.used {
            return Err(format!(
                "used-bytes leak: counter says {} but live entries occupy {used}",
                self.used
            ));
        }
        let mut last = 0u128;
        let mut outstanding_ids = std::collections::HashSet::new();
        let mut chained_entries = 0usize;
        for (completes_at, request) in &self.outstanding {
            if *completes_at < last {
                return Err(format!("command {request} completes out of order"));
            }
            last = *completes_at;
            outstanding_ids.insert(*request);
            if let Some(chain) = self.command_chains.get(request) {
                for index in chain.indices(&self.entries, CMD_CHANNEL) {
                    let entry = self.entries.value_at(index);
                    if entry.command != Some(*request) {
                        return Err(format!(
                            "{} chained under {request} but tagged {:?}",
                            entry.slot, entry.command
                        ));
                    }
                    if entry.completes_at != Some(*completes_at) {
                        return Err(format!(
                            "{} of outstanding {request} is already at rest",
                            entry.slot
                        ));
                    }
                    chained_entries += 1;
                }
            }
        }
        for command in self.command_chains.keys() {
            if !outstanding_ids.contains(command) {
                return Err(format!("command chain for retired/unknown {command}"));
            }
        }
        let in_flight_entries = self
            .entries
            .iter()
            .filter(|(_, e)| e.completes_at.is_some())
            .count();
        if chained_entries != in_flight_entries {
            return Err(format!(
                "{in_flight_entries} in-flight entries but {chained_entries} chained to commands"
            ));
        }
        for command in self.fault_tasks.commands_with_waiters() {
            if !outstanding_ids.contains(&command) {
                return Err(format!("fault tasks parked on retired/unknown {command}"));
            }
        }
        self.fault_tasks.leak_check()?;
        Ok(())
    }

    fn validate(&self, pages: &[PageId], _stored_bytes: usize) -> Result<(), MemError> {
        if pages.is_empty() {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: "a swap object must cover at least one page".to_string(),
            });
        }
        if let Some(dup) = pages.iter().find(|p| self.page_index.contains_key(p)) {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: format!("page {dup} is already in the swap area"),
            });
        }
        Ok(())
    }

    /// Allocate a slot and record the entry. The caller has already
    /// validated the request and reserved capacity. Wear statistics are
    /// charged at submission: the bytes hit the cells whether or not the
    /// command has retired yet.
    fn store_entry(
        &mut self,
        request: WriteRequest,
        completes_at: Option<u128>,
        command: Option<IoRequestId>,
    ) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        self.used += Self::footprint(request.stored_bytes);
        self.stats.writes += 1;
        self.stats.bytes_written += request.stored_bytes;
        self.charge_wear(Self::footprint(request.stored_bytes));
        let app = request.pages[0].app();
        debug_assert!(
            request.pages.iter().all(|p| p.app() == app),
            "flash entry mixes applications"
        );
        for page in &request.pages {
            self.page_index.insert(*page, slot);
        }
        let key = self.entries.insert(FlashEntry {
            slot,
            pages: request.pages,
            stored_bytes: request.stored_bytes,
            original_bytes: request.original_bytes,
            compressed: request.compressed,
            completes_at,
            command,
        });
        self.slot_index.insert(slot, key);
        self.app_chains.entry(app).or_default().push_back(
            &mut self.entries,
            APP_CHANNEL,
            key.index(),
        );
        if let Some(command) = command {
            self.command_chains.entry(command).or_default().push_back(
                &mut self.entries,
                CMD_CHANNEL,
                key.index(),
            );
        }
        slot
    }

    /// Charge `footprint` physical bytes of wear: advance the round-robin
    /// block cursor page by page, cycling the block every time a fresh one
    /// is opened. Called exactly once per stored object, at submission —
    /// the cells are programmed whether or not the command has retired,
    /// and a release or in-flight fault never un-programs them.
    fn charge_wear(&mut self, footprint: usize) {
        self.stats.physical_bytes_written += footprint;
        if self.erase_counts.is_empty() {
            let blocks = self.capacity.div_ceil(ERASE_BLOCK_BYTES).max(1);
            self.erase_counts = vec![0; blocks];
        }
        let pages_per_block = ERASE_BLOCK_BYTES / PAGE_SIZE;
        let blocks = self.erase_counts.len();
        for _ in 0..footprint / PAGE_SIZE {
            if self.physical_pages_written % pages_per_block == 0 {
                let block = (self.physical_pages_written / pages_per_block) % blocks;
                self.erase_counts[block] += 1;
                self.stats.erases += 1;
            }
            self.physical_pages_written += 1;
        }
    }

    /// The cost of one write command of `bytes` payload on *this* device,
    /// including wear-dependent latency inflation when the I/O model
    /// enables it (each average erase cycle consumed so far inflates the
    /// base cost by [`FlashIoConfig::wear_latency_ppm_per_erase`]).
    fn wear_adjusted_cost(&self, bytes: usize) -> CostNanos {
        let base = self.io.write_command_cost(bytes);
        if self.io.wear_latency_ppm_per_erase == 0 {
            return base;
        }
        let blocks = self.erase_counts.len().max(1) as u128;
        let avg_erases = self.stats.erases as u128 / blocks;
        let extra = base.as_nanos() * avg_erases * u128::from(self.io.wear_latency_ppm_per_erase)
            / 1_000_000;
        CostNanos(base.as_nanos() + extra)
    }

    /// Cheap O(1)-ish debug guard; the full [`FlashDevice::leak_check`] is
    /// exercised by the property tests (running it after every mutation
    /// would make large simulations quadratic even in debug builds).
    fn debug_check_invariants(&self) {
        debug_assert!(
            self.used <= self.capacity,
            "flash used {} exceeds capacity {}",
            self.used,
            self.capacity
        );
        debug_assert!(
            self.page_index.len() >= self.entries.len(),
            "fewer indexed pages than entries: an entry lost its pages"
        );
    }

    fn footprint(stored_bytes: usize) -> usize {
        stored_bytes.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    fn request(app: u32, pfn: u64) -> WriteRequest {
        WriteRequest {
            pages: vec![page(app, pfn)],
            original_bytes: PAGE_SIZE,
            stored_bytes: PAGE_SIZE,
            compressed: false,
        }
    }

    #[test]
    fn write_read_discard_cycle() {
        let mut flash = FlashDevice::new(1 << 20);
        let slot = flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        let (pages, stored, original, compressed) = flash.read(slot).unwrap();
        assert_eq!(pages, vec![page(1, 1)]);
        assert_eq!((stored, original, compressed), (4096, 4096, false));
        flash.discard(slot).unwrap();
        assert!(flash.is_empty());
        assert!(flash.read(slot).is_err());
        assert!(flash.discard(slot).is_err());
    }

    #[test]
    fn wear_statistics_accumulate() {
        let mut flash = FlashDevice::new(1 << 20);
        let s1 = flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        let s2 = flash
            .write(vec![page(1, 2), page(1, 3)], 8192, 3000, true)
            .unwrap();
        flash.read(s1).unwrap();
        flash.read(s2).unwrap();
        flash.read(s2).unwrap();
        let stats = flash.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.commands, 2);
        assert_eq!(stats.bytes_written, 4096 + 3000);
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.bytes_read, 4096 + 2 * 3000);
    }

    #[test]
    fn compressed_objects_use_less_space_than_raw() {
        let mut flash = FlashDevice::new(1 << 20);
        flash
            .write(vec![page(1, 1), page(1, 2), page(1, 3)], 12288, 4000, true)
            .unwrap();
        // Three compressed pages fit in one flash page.
        assert_eq!(flash.used_bytes(), PAGE_SIZE);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut flash = FlashDevice::new(2 * PAGE_SIZE);
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        flash.write(vec![page(1, 2)], 4096, 4096, false).unwrap();
        assert!(matches!(
            flash.write(vec![page(1, 3)], 4096, 4096, false),
            Err(MemError::SwapSpaceFull)
        ));
    }

    #[test]
    fn duplicate_and_empty_writes_are_rejected() {
        let mut flash = FlashDevice::new(1 << 20);
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        assert!(flash.write(vec![page(1, 1)], 4096, 4096, false).is_err());
        assert!(flash.write(vec![], 0, 0, false).is_err());
    }

    #[test]
    fn page_index_tracks_slots() {
        let mut flash = FlashDevice::new(1 << 20);
        let slot = flash
            .write(vec![page(3, 7), page(3, 8)], 8192, 8192, false)
            .unwrap();
        assert_eq!(flash.slot_for(page(3, 8)), Some(slot));
        flash.discard(slot).unwrap();
        assert_eq!(flash.slot_for(page(3, 8)), None);
    }

    #[test]
    fn queued_submissions_complete_in_order_and_batch() {
        let io = FlashIoConfig::ufs31().with_max_batch_pages(2);
        let mut flash = FlashDevice::with_io(1 << 20, io);
        let result = flash.submit_writes((0..3).map(|i| request(1, i)).collect(), 0);
        assert_eq!(result.slots.len(), 3);
        // Three single-page requests with a 2-page batch limit: two commands.
        assert_eq!(result.commands, 2);
        assert_eq!(flash.stats().commands, 2);
        assert_eq!(flash.stats().writes, 3);
        assert_eq!(result.queue_stall, CostNanos::zero());
        assert_eq!(result.sync_latency, CostNanos::zero());
        assert_eq!(flash.in_flight_commands(), 2);

        // First command: 2 pages = 8 KiB -> 28 + 8*28 = 252 µs.
        let first = flash.next_completion().unwrap();
        assert_eq!(first, 252_000);
        // Second command queues behind it: + (28 + 4*28) = 140 µs.
        assert_eq!(flash.pending_completion(result.slots[2]), Some(392_000));

        assert_eq!(flash.retire_completed(first), 1);
        assert_eq!(flash.in_flight_commands(), 1);
        assert_eq!(flash.pending_completion(result.slots[0]), None);
        assert!(flash.contains(page(1, 0)));
        flash.leak_check().unwrap();
    }

    #[test]
    fn faulting_an_in_flight_page_stalls_until_its_completion() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        let result = flash.submit_writes(vec![request(1, 1)], 1_000);
        let slot = result.slots[0];
        let completes = flash.pending_completion(slot).unwrap();
        let fault = flash.fault_in(slot, 41_000).unwrap();
        assert!(fault.from_in_flight);
        assert_eq!(fault.stall, CostNanos(completes - 41_000));
        assert_eq!(flash.stats().reads, 0, "no device read for in-flight data");
        assert!(flash.is_empty());
        assert_eq!(flash.used_bytes(), 0);
        // The command still retires harmlessly after the cancellation.
        flash.retire_completed(completes);
        assert_eq!(flash.in_flight_commands(), 0);
        flash.leak_check().unwrap();
    }

    #[test]
    fn fault_storm_on_one_command_charges_each_fault_its_own_stall() {
        // One batch command carrying 8 pages, then a storm of faults against
        // it while it is still in flight: every fault pays exactly the
        // remaining time from *its own* fault instant, parks one lightweight
        // task, and the command's retirement drains the whole batch at once.
        let io = FlashIoConfig::ufs31().with_max_batch_pages(8);
        let mut flash = FlashDevice::with_io(1 << 20, io);
        let result = flash.submit_writes((0..8).map(|i| request(1, i)).collect(), 0);
        assert_eq!(result.commands, 1);
        let completes = flash.pending_completion(result.slots[0]).unwrap();
        for (i, &slot) in result.slots.iter().enumerate() {
            let now = 1_000 * (i as u128 + 1);
            let fault = flash.fault_in(slot, now).unwrap();
            assert!(fault.from_in_flight);
            assert_eq!(fault.stall, CostNanos(completes - now), "fault {i}");
            assert_eq!(flash.parked_fault_tasks(), i + 1);
            flash.leak_check().unwrap();
        }
        assert_eq!(flash.stats().reads, 0, "in-flight faults never read");
        // The retirement drains all 8 parked tasks in one batch — exactly
        // once: a second retirement pass finds nothing left.
        assert_eq!(flash.retire_completed(completes), 1);
        assert_eq!(flash.parked_fault_tasks(), 0);
        let stats = flash.fault_task_stats();
        assert_eq!((stats.parked, stats.retired, stats.batches), (8, 8, 1));
        assert_eq!(flash.retire_completed(completes + 1), 0);
        assert_eq!(flash.fault_task_stats().retired, 8, "no double retirement");
        flash.leak_check().unwrap();
    }

    #[test]
    fn release_app_with_parked_fault_tasks_stays_leak_check_green() {
        let io = FlashIoConfig::ufs31().with_max_batch_pages(2);
        let mut flash = FlashDevice::with_io(1 << 20, io);
        // Two commands for app 1, one for app 2.
        let first = flash.submit_writes((0..4).map(|i| request(1, i)).collect(), 0);
        let other = flash.submit_writes(vec![request(2, 9)], 0);
        // A fault parks a waiter on app 1's first in-flight command...
        let fault = flash.fault_in(first.slots[0], 5_000).unwrap();
        assert!(fault.from_in_flight);
        assert_eq!(flash.parked_fault_tasks(), 1);
        flash.leak_check().unwrap();
        // ...then the app dies mid-writeback with the waiter still parked.
        let (slots_freed, pages_freed) = flash.release_app(AppId::new(1), 6_000);
        assert_eq!((slots_freed, pages_freed), (3, 3));
        assert_eq!(flash.parked_fault_tasks(), 1, "waiter survives the kill");
        flash.leak_check().unwrap();
        // The orphaned commands retire harmlessly and drain the waiter.
        let last = flash.pending_completion(other.slots[0]).unwrap();
        flash.retire_completed(last);
        assert_eq!(flash.parked_fault_tasks(), 0);
        assert_eq!(flash.in_flight_commands(), 0);
        assert!(flash.contains(page(2, 9)), "app 2's data is untouched");
        flash.leak_check().unwrap();
    }

    #[test]
    fn faulting_an_at_rest_page_counts_a_read_and_no_stall() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        let result = flash.submit_writes(vec![request(1, 1)], 0);
        let slot = result.slots[0];
        let completes = flash.pending_completion(slot).unwrap();
        let fault = flash.fault_in(slot, completes + 1).unwrap();
        assert!(!fault.from_in_flight);
        assert_eq!(fault.stall, CostNanos::zero());
        assert_eq!(flash.stats().reads, 1);
        assert!(flash.is_empty());
    }

    #[test]
    fn full_queue_stalls_the_submitter_until_the_oldest_retires() {
        let io = FlashIoConfig::ufs31()
            .with_queue_depth(2)
            .with_max_batch_pages(1);
        let mut flash = FlashDevice::with_io(1 << 20, io);
        let first = flash.submit_writes(vec![request(1, 1), request(1, 2)], 0);
        assert_eq!(first.queue_stall, CostNanos::zero());
        assert_eq!(flash.in_flight_commands(), 2);
        // The third submission finds the queue full and waits for command 1.
        let second = flash.submit_writes(vec![request(1, 3)], 0);
        assert_eq!(second.queue_stall, CostNanos(140_000));
        assert_eq!(flash.in_flight_commands(), 2);
        flash.leak_check().unwrap();
    }

    #[test]
    fn sync_mode_charges_inline_latency_and_never_queues() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::sync());
        let result = flash.submit_writes(vec![request(1, 1), request(1, 2)], 0);
        assert_eq!(result.commands, 2);
        assert_eq!(result.sync_latency, CostNanos(2 * 140_000));
        assert_eq!(flash.in_flight_commands(), 0);
        assert_eq!(flash.next_completion(), None);
        let fault = flash.fault_in(result.slots[0], 0).unwrap();
        assert!(!fault.from_in_flight);
    }

    #[test]
    fn oversized_batches_are_rejected_not_partially_written() {
        let mut flash = FlashDevice::with_io(3 * PAGE_SIZE, FlashIoConfig::ufs31());
        let result = flash.submit_writes((0..5).map(|i| request(1, i)).collect(), 0);
        assert_eq!(result.slots.len(), 3);
        assert_eq!(result.dropped.len(), 2);
        assert_eq!(flash.used_bytes(), 3 * PAGE_SIZE);
        flash.leak_check().unwrap();
    }

    #[test]
    fn duplicate_pages_in_a_submission_are_dropped() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        let result = flash.submit_writes(vec![request(1, 1), request(1, 2)], 0);
        assert_eq!(result.dropped.len(), 1);
        assert_eq!(result.dropped[0].pages, vec![page(1, 1)]);
        assert_eq!(result.slots.len(), 1);
    }

    #[test]
    fn duplicates_within_one_submission_are_dropped_too() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        // Two requests for the same page, plus one request that repeats a
        // page internally: only the first clean request survives.
        let result = flash.submit_writes(
            vec![
                request(1, 1),
                request(1, 1),
                WriteRequest {
                    pages: vec![page(1, 2), page(1, 2)],
                    original_bytes: 2 * PAGE_SIZE,
                    stored_bytes: 2 * PAGE_SIZE,
                    compressed: false,
                },
            ],
            0,
        );
        assert_eq!(result.slots.len(), 1);
        assert_eq!(result.dropped.len(), 2);
        flash.leak_check().unwrap();
    }

    #[test]
    fn release_app_frees_slots_including_in_flight_ones() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        // App 1: one at-rest object, one in-flight object. App 2: one object.
        let first = flash.submit_writes(vec![request(1, 1)], 0);
        let settled = flash.pending_completion(first.slots[0]).unwrap();
        flash.retire_completed(settled);
        flash.submit_writes(vec![request(1, 2), request(2, 1)], settled);
        assert_eq!(flash.in_flight_commands(), 1);

        let (slots, pages) = flash.release_app(AppId::new(1), settled);
        assert_eq!((slots, pages), (2, 2));
        assert!(!flash.contains(page(1, 1)) && !flash.contains(page(1, 2)));
        assert!(flash.contains(page(2, 1)), "other apps keep their data");
        flash.leak_check().unwrap();

        // The in-flight command retires harmlessly after the release.
        let completes = flash.next_completion().unwrap();
        flash.retire_completed(completes);
        assert_eq!(flash.in_flight_commands(), 0);
        flash.leak_check().unwrap();

        // Releasing again finds nothing.
        assert_eq!(flash.release_app(AppId::new(1), completes), (0, 0));
    }

    #[test]
    fn release_app_frees_capacity_for_new_writes() {
        let mut flash = FlashDevice::new(2 * PAGE_SIZE);
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        flash.write(vec![page(1, 2)], 4096, 4096, false).unwrap();
        assert_eq!(flash.free_bytes(), 0);
        flash.release_app(AppId::new(1), 0);
        assert_eq!(flash.free_bytes(), 2 * PAGE_SIZE);
        flash.write(vec![page(2, 1)], 4096, 4096, false).unwrap();
        flash.leak_check().unwrap();
    }

    #[test]
    fn wear_is_charged_per_physical_page_and_block() {
        let mut flash = FlashDevice::new(2 * ERASE_BLOCK_BYTES);
        assert_eq!(flash.max_erase_count(), 0);
        // A sub-page compressed object still programs one physical page.
        flash.write(vec![page(1, 0)], 4096, 1000, true).unwrap();
        let stats = flash.stats();
        assert_eq!(stats.bytes_written, 1000);
        assert_eq!(stats.physical_bytes_written, PAGE_SIZE);
        assert_eq!(stats.erases, 1, "the first page opens the first block");
        assert!((stats.waf() - PAGE_SIZE as f64 / 1000.0).abs() < 1e-12);

        // Fill the rest of block 0: no further erase until block 1 opens.
        let pages_per_block = ERASE_BLOCK_BYTES / PAGE_SIZE;
        for pfn in 1..pages_per_block as u64 {
            flash.write(vec![page(1, pfn)], 4096, 4096, false).unwrap();
        }
        assert_eq!(flash.stats().erases, 1);
        flash
            .write(vec![page(1, pages_per_block as u64)], 4096, 4096, false)
            .unwrap();
        assert_eq!(flash.stats().erases, 2, "crossing into block 1 erases it");
        assert_eq!(flash.erase_counts(), &[1, 1]);
        flash.leak_check().unwrap();
    }

    #[test]
    fn wear_survives_release_and_in_flight_faults() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        let result = flash.submit_writes(vec![request(1, 1), request(1, 2)], 0);
        let worn = flash.stats();
        assert_eq!(worn.physical_bytes_written, 2 * PAGE_SIZE);

        // An in-flight fault removes the object but not the programmed wear.
        flash.fault_in(result.slots[0], 10).unwrap();
        // A kill releases the rest; the cells stay programmed.
        flash.release_app(AppId::new(1), 20);
        let after = flash.stats();
        assert_eq!(after.physical_bytes_written, worn.physical_bytes_written);
        assert_eq!(after.erases, worn.erases);
        assert!(flash.is_empty());
        flash.leak_check().unwrap();
    }

    #[test]
    fn wear_latency_inflation_defaults_off_and_is_byte_identical() {
        let mut vanilla = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        let mut knobbed =
            FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31().with_wear_latency_ppm(0));
        let a = vanilla.submit_writes((0..4).map(|i| request(1, i)).collect(), 0);
        let b = knobbed.submit_writes((0..4).map(|i| request(1, i)).collect(), 0);
        assert_eq!(a, b);
        assert_eq!(vanilla.next_completion(), knobbed.next_completion());
    }

    #[test]
    fn worn_devices_write_slower_when_inflation_is_enabled() {
        // A tiny device (one erase block) so erases accumulate fast, with
        // 10 % extra latency per average erase cycle.
        let io = FlashIoConfig::sync().with_wear_latency_ppm(100_000);
        let mut flash = FlashDevice::with_io(ERASE_BLOCK_BYTES, io);
        let fresh = flash.submit_writes(vec![request(1, 0)], 0);
        // Costs reflect the wear accumulated *before* the command: the
        // first write of the device's life is uninflated.
        assert_eq!(fresh.sync_latency, CostNanos(140_000));

        // Cycle the block a few times via write/fault churn.
        let mut now = 1_000_000u128;
        let pages_per_block = (ERASE_BLOCK_BYTES / PAGE_SIZE) as u64;
        for round in 0..3u64 {
            for pfn in 1..pages_per_block {
                let slot = flash
                    .write(
                        vec![page(1, round * pages_per_block + pfn)],
                        4096,
                        4096,
                        false,
                    )
                    .unwrap();
                now += 1;
                flash.fault_in(slot, now).unwrap();
            }
        }
        let erases = flash.stats().erases;
        assert!(erases > 1, "churn must cycle the single block");
        let worn = flash.submit_writes(vec![request(2, 0)], now);
        let expected = 140_000 + 140_000 * u128::from(erases as u64) * 100_000 / 1_000_000;
        assert_eq!(worn.sync_latency, CostNanos(expected));
        assert!(worn.sync_latency > fresh.sync_latency);
    }

    #[test]
    fn sync_writers_wait_out_the_busy_window_they_find() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::sync());
        // An earlier (background) submission leaves the device busy until
        // 140 µs; a second writer at 40 µs must wait 100 µs and then write.
        flash.submit_writes(vec![request(1, 1)], 0);
        let result = flash.submit_writes(vec![request(1, 2)], 40_000);
        assert_eq!(result.sync_latency, CostNanos(100_000 + 140_000));
    }

    /// The hog-then-exit accounting audit: an app killed while its
    /// writeback command is still in flight must not double-count in the
    /// write or wear totals — not when it is released, not when the
    /// orphaned command retires, and a resubmission after the app's
    /// relaunch charges exactly one more submission's worth.
    #[test]
    fn release_mid_writeback_never_double_counts_write_or_wear_totals() {
        let mut flash = FlashDevice::with_io(1 << 20, FlashIoConfig::ufs31());
        let first = flash.submit_writes((0..4).map(|i| request(1, i)).collect(), 0);
        assert!(first.dropped.is_empty());
        let completes = flash.next_completion().expect("command is in flight");
        let submitted = flash.stats();

        // The hog exits while the command is still in flight.
        let (slots, pages) = flash.release_app(AppId::new(1), completes / 2);
        assert_eq!((slots, pages), (4, 4), "all four objects were in flight");
        assert_eq!(flash.stats(), submitted, "release must not touch totals");
        flash.leak_check().unwrap();

        // The orphaned command retires: still no extra accounting.
        flash.retire_completed(completes + 1);
        assert_eq!(
            flash.stats(),
            submitted,
            "retiring an orphaned command is free"
        );
        flash.leak_check().unwrap();

        // The app relaunches and the same pages are written back again:
        // exactly two submissions' worth, no more, no less.
        let second = flash.submit_writes((0..4).map(|i| request(1, i)).collect(), completes + 2);
        assert!(
            second.dropped.is_empty(),
            "released pages must be writable again"
        );
        let after = flash.stats();
        assert_eq!(after.writes, 2 * submitted.writes);
        assert_eq!(after.bytes_written, 2 * submitted.bytes_written);
        assert_eq!(
            after.physical_bytes_written,
            2 * submitted.physical_bytes_written
        );
        assert_eq!(after.commands, 2 * submitted.commands);
        assert!((after.waf() - submitted.waf()).abs() < f64::EPSILON);
        flash.leak_check().unwrap();
    }
}
