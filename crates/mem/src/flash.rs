//! The flash-memory swap device (UFS 3.1 on the Pixel 7).
//!
//! Flash-backed swap matters to the paper in two ways: the SWAP baseline
//! stores reclaimed pages there directly, and both ZSWAP and Ariadne write
//! *compressed* cold data there when the zpool fills up. Every write wears
//! the flash cells, so [`FlashDevice`] keeps the write statistics the paper
//! uses to argue that Ariadne (which swaps out compressed data, and mostly
//! cold data) writes less than a flash-only swap scheme.

use crate::error::MemError;
use crate::page::{PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a slot in the flash swap area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwapSlot(u64);

impl SwapSlot {
    /// The raw slot number.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SwapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot:{}", self.0)
    }
}

/// Wear and traffic statistics for the flash swap device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Number of write operations performed.
    pub writes: usize,
    /// Total bytes written (flash lifetime is proportional to this).
    pub bytes_written: usize,
    /// Number of read operations performed.
    pub reads: usize,
    /// Total bytes read.
    pub bytes_read: usize,
}

/// A stored object in the flash swap area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct FlashEntry {
    pages: Vec<PageId>,
    stored_bytes: usize,
    original_bytes: usize,
    compressed: bool,
}

/// The flash swap device.
///
/// ```
/// use ariadne_mem::{AppId, FlashDevice, PageId, Pfn};
///
/// let mut flash = FlashDevice::new(8 * 1024 * 1024);
/// let page = PageId::new(AppId::new(1), Pfn::new(0));
/// let slot = flash.write(vec![page], 4096, 4096, false).unwrap();
/// assert!(flash.contains(page));
/// let entry = flash.read(slot).unwrap();
/// assert_eq!(entry.0, vec![page]);
/// assert_eq!(flash.stats().bytes_written, 4096);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlashDevice {
    capacity: usize,
    used: usize,
    next_slot: u64,
    entries: HashMap<SwapSlot, FlashEntry>,
    page_index: HashMap<PageId, SwapSlot>,
    stats: FlashStats,
}

impl FlashDevice {
    /// Create a flash swap area of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlashDevice {
            capacity,
            ..FlashDevice::default()
        }
    }

    /// Configured swap-area capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently stored (page-granular).
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of objects stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime read/write statistics.
    #[must_use]
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Whether `page` is currently stored in the swap area.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.page_index.contains_key(&page)
    }

    /// The slot holding `page`, if any.
    #[must_use]
    pub fn slot_for(&self, page: PageId) -> Option<SwapSlot> {
        self.page_index.get(&page).copied()
    }

    /// Write an object covering `pages` to the swap area.
    ///
    /// `stored_bytes` is what actually hits the flash (compressed size for
    /// ZSWAP-style writeback, `pages.len() * 4096` for the SWAP baseline).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SwapSpaceFull`] when the area cannot hold the
    /// object and [`MemError::InvalidParameter`] for an empty page list or a
    /// page that is already swapped out.
    pub fn write(
        &mut self,
        pages: Vec<PageId>,
        original_bytes: usize,
        stored_bytes: usize,
        compressed: bool,
    ) -> Result<SwapSlot, MemError> {
        if pages.is_empty() {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: "a swap object must cover at least one page".to_string(),
            });
        }
        if let Some(dup) = pages.iter().find(|p| self.page_index.contains_key(p)) {
            return Err(MemError::InvalidParameter {
                parameter: "pages",
                detail: format!("page {dup} is already in the swap area"),
            });
        }
        let footprint = Self::footprint(stored_bytes);
        if self.used + footprint > self.capacity {
            return Err(MemError::SwapSpaceFull);
        }
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        self.used += footprint;
        self.stats.writes += 1;
        self.stats.bytes_written += stored_bytes;
        for page in &pages {
            self.page_index.insert(*page, slot);
        }
        self.entries.insert(
            slot,
            FlashEntry {
                pages,
                stored_bytes,
                original_bytes,
                compressed,
            },
        );
        Ok(slot)
    }

    /// Read the object in `slot` (without removing it), returning its pages,
    /// stored size, original size and whether it is compressed.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the slot is free.
    pub fn read(&mut self, slot: SwapSlot) -> Result<(Vec<PageId>, usize, usize, bool), MemError> {
        let entry = self.entries.get(&slot).ok_or(MemError::StaleHandle)?;
        self.stats.reads += 1;
        self.stats.bytes_read += entry.stored_bytes;
        Ok((
            entry.pages.clone(),
            entry.stored_bytes,
            entry.original_bytes,
            entry.compressed,
        ))
    }

    /// Remove the object in `slot`, freeing the space.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::StaleHandle`] if the slot is free.
    pub fn discard(&mut self, slot: SwapSlot) -> Result<(), MemError> {
        let entry = self.entries.remove(&slot).ok_or(MemError::StaleHandle)?;
        self.used -= Self::footprint(entry.stored_bytes);
        for page in &entry.pages {
            self.page_index.remove(page);
        }
        Ok(())
    }

    fn footprint(stored_bytes: usize) -> usize {
        stored_bytes.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    #[test]
    fn write_read_discard_cycle() {
        let mut flash = FlashDevice::new(1 << 20);
        let slot = flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        let (pages, stored, original, compressed) = flash.read(slot).unwrap();
        assert_eq!(pages, vec![page(1, 1)]);
        assert_eq!((stored, original, compressed), (4096, 4096, false));
        flash.discard(slot).unwrap();
        assert!(flash.is_empty());
        assert!(flash.read(slot).is_err());
        assert!(flash.discard(slot).is_err());
    }

    #[test]
    fn wear_statistics_accumulate() {
        let mut flash = FlashDevice::new(1 << 20);
        let s1 = flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        let s2 = flash
            .write(vec![page(1, 2), page(1, 3)], 8192, 3000, true)
            .unwrap();
        flash.read(s1).unwrap();
        flash.read(s2).unwrap();
        flash.read(s2).unwrap();
        let stats = flash.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.bytes_written, 4096 + 3000);
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.bytes_read, 4096 + 2 * 3000);
    }

    #[test]
    fn compressed_objects_use_less_space_than_raw() {
        let mut flash = FlashDevice::new(1 << 20);
        flash
            .write(vec![page(1, 1), page(1, 2), page(1, 3)], 12288, 4000, true)
            .unwrap();
        // Three compressed pages fit in one flash page.
        assert_eq!(flash.used_bytes(), PAGE_SIZE);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut flash = FlashDevice::new(2 * PAGE_SIZE);
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        flash.write(vec![page(1, 2)], 4096, 4096, false).unwrap();
        assert!(matches!(
            flash.write(vec![page(1, 3)], 4096, 4096, false),
            Err(MemError::SwapSpaceFull)
        ));
    }

    #[test]
    fn duplicate_and_empty_writes_are_rejected() {
        let mut flash = FlashDevice::new(1 << 20);
        flash.write(vec![page(1, 1)], 4096, 4096, false).unwrap();
        assert!(flash.write(vec![page(1, 1)], 4096, 4096, false).is_err());
        assert!(flash.write(vec![], 0, 0, false).is_err());
    }

    #[test]
    fn page_index_tracks_slots() {
        let mut flash = FlashDevice::new(1 << 20);
        let slot = flash
            .write(vec![page(3, 7), page(3, 8)], 8192, 8192, false)
            .unwrap();
        assert_eq!(flash.slot_for(page(3, 8)), Some(slot));
        flash.discard(slot).unwrap();
        assert_eq!(flash.slot_for(page(3, 8)), None);
    }
}
