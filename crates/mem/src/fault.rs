//! The lightweight fault-task table: slab-backed waiter bookkeeping for
//! page faults on in-flight flash write commands.
//!
//! When a fault hits a page whose write command is still queued on the
//! device, the fault's *cost* is known immediately (the remaining time to
//! the command's completion — [`crate::FaultIn::stall`] is computed at
//! fault time and charged to that fault alone). What used to be expensive
//! was the *bookkeeping*: every retiring command re-scanned its full slot
//! list through hash lookups, including slots long since cancelled by
//! faults, so a relaunch storm of N faults against a deep queue cost
//! O(N × queue-scan).
//!
//! Following the user-space-swap design of Zhong et al. ("Revisiting
//! Swapping in User-space with Lightweight Threading"), a fault on an
//! in-flight command now parks a *fault task* — a tiny slab-resident record
//! keyed by the command id — instead of leaving tombstones for the
//! retirement scan to skip. [`FlashDevice::retire_completed`] retires a
//! command's entire waiter list in one batch (a chain walk, no hashing, no
//! tombstones), so a storm costs O(faults + completions): each fault does
//! O(1) parking work and each completion touches exactly its own live
//! waiters.
//!
//! The table changes *when bookkeeping happens*, never *what is charged*:
//! every parked task carries the stall its fault already paid, and the
//! retirement batch only drains records. The simulation's
//! `AccessOutcome` totals are bit-identical with the table on — the
//! determinism suites pin that.
//!
//! [`FlashDevice::retire_completed`]: crate::FlashDevice::retire_completed

use crate::flash::{IoRequestId, SwapSlot};
use crate::slab::{Chain, FxHashMap, Slab};
use ariadne_compress::CostNanos;
use serde::{Deserialize, Serialize};

/// Link channel used for the per-command waiter chains. Fault tasks live in
/// their own slab, so channel 0 is free (the flash entry slab reserves
/// channel 0 for app chains and channel 1 for command chains).
const WAITER_CHANNEL: usize = 0;

/// One parked fault: a page fault that hit an in-flight write command and
/// was served from the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTask {
    /// The write command the fault waited on.
    pub command: IoRequestId,
    /// The swap slot the fault cancelled.
    pub slot: SwapSlot,
    /// The stall the fault was charged (remaining time to the command's
    /// completion at the moment it faulted). Parked for observability only:
    /// the fault already paid it.
    pub stall: CostNanos,
    /// Simulated nanosecond the fault parked.
    pub parked_at: u128,
}

/// Lifetime counters of the fault-task table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTaskStats {
    /// Fault tasks ever parked (== faults served from in-flight commands).
    pub parked: usize,
    /// Fault tasks retired (each exactly once, in its command's batch).
    pub retired: usize,
    /// Waiter batches drained (== retired commands that had waiters).
    pub batches: usize,
    /// Largest number of tasks simultaneously parked.
    pub peak_parked: usize,
}

/// Slab-backed table of parked fault tasks, chained per command id.
///
/// Parking is O(1) (slab insert + chain push). Retiring a command drains
/// its whole chain in one walk over live waiters — no hash lookups per
/// waiter, no visits to anything that is not a waiter of that command.
#[derive(Debug, Clone, Default)]
pub struct FaultTaskTable {
    tasks: Slab<FaultTask>,
    waiters: FxHashMap<IoRequestId, Chain>,
    stats: FaultTaskStats,
}

impl FaultTaskTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        FaultTaskTable::default()
    }

    /// Park a fault task on `command`. Returns the number of waiters now
    /// parked on that command (including this one).
    pub fn park(
        &mut self,
        command: IoRequestId,
        slot: SwapSlot,
        stall: CostNanos,
        now_nanos: u128,
    ) -> usize {
        let key = self.tasks.insert(FaultTask {
            command,
            slot,
            stall,
            parked_at: now_nanos,
        });
        let chain = self.waiters.entry(command).or_default();
        chain.push_back(&mut self.tasks, WAITER_CHANNEL, key.index());
        let parked_on_command = chain.len();
        self.stats.parked += 1;
        self.stats.peak_parked = self.stats.peak_parked.max(self.tasks.len());
        parked_on_command
    }

    /// Retire every waiter parked on `command` in one batch, returning the
    /// drained tasks in parking order. Each task is returned exactly once:
    /// the batch removes the records, so a second retirement of the same
    /// command finds no waiters.
    pub fn retire_command(&mut self, command: IoRequestId) -> Vec<FaultTask> {
        let Some(mut chain) = self.waiters.remove(&command) else {
            return Vec::new();
        };
        let mut drained = Vec::with_capacity(chain.len());
        while let Some(index) = chain.head() {
            chain.unlink(&mut self.tasks, WAITER_CHANNEL, index);
            let key = self.tasks.key_at(index);
            drained.push(self.tasks.remove(key).expect("chained task is live"));
        }
        self.stats.retired += drained.len();
        if !drained.is_empty() {
            self.stats.batches += 1;
        }
        drained
    }

    /// Number of tasks currently parked across all commands.
    #[must_use]
    pub fn parked(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks currently parked on `command`.
    #[must_use]
    pub fn parked_on(&self, command: IoRequestId) -> usize {
        self.waiters.get(&command).map_or(0, |c| c.len())
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> FaultTaskStats {
        self.stats
    }

    /// Commands that currently have parked waiters, for invariant checks.
    pub fn commands_with_waiters(&self) -> impl Iterator<Item = IoRequestId> + '_ {
        self.waiters.keys().copied()
    }

    /// Verify internal consistency: every chain entry is a live task keyed
    /// by that chain's command, and every live task is on its chain.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn leak_check(&self) -> Result<(), String> {
        let mut chained = 0usize;
        for (command, chain) in &self.waiters {
            if chain.is_empty() {
                return Err(format!("empty waiter chain left behind for {command}"));
            }
            for index in chain.indices(&self.tasks, WAITER_CHANNEL) {
                let task = self.tasks.value_at(index);
                if task.command != *command {
                    return Err(format!("task for {} chained under {command}", task.command));
                }
                chained += 1;
            }
        }
        if chained != self.tasks.len() {
            return Err(format!(
                "{} fault tasks not reachable from any waiter chain",
                self.tasks.len() - chained
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> IoRequestId {
        IoRequestId::for_tests(n)
    }

    fn slot(n: u64) -> SwapSlot {
        SwapSlot::for_tests(n)
    }

    #[test]
    fn waiters_on_the_same_command_retire_together_exactly_once() {
        let mut table = FaultTaskTable::new();
        assert_eq!(table.park(id(1), slot(10), CostNanos(100), 0), 1);
        assert_eq!(table.park(id(1), slot(11), CostNanos(90), 10), 2);
        assert_eq!(table.park(id(2), slot(12), CostNanos(50), 20), 1);
        table.leak_check().unwrap();

        let batch = table.retire_command(id(1));
        assert_eq!(batch.len(), 2, "both waiters of command 1 in one batch");
        assert_eq!(batch[0].slot, slot(10), "parking order preserved");
        assert_eq!(batch[1].slot, slot(11));
        assert!(
            table.retire_command(id(1)).is_empty(),
            "a second retirement finds nothing — each task retires once"
        );
        assert_eq!(table.parked(), 1, "command 2's waiter is untouched");
        assert_eq!(table.parked_on(id(2)), 1);
        table.leak_check().unwrap();

        let stats = table.stats();
        assert_eq!(stats.parked, 3);
        assert_eq!(stats.retired, 2);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.peak_parked, 3);
    }

    #[test]
    fn each_fault_records_its_own_stall() {
        let mut table = FaultTaskTable::new();
        // A storm of faults against one in-flight command: every fault
        // parks with the stall it was individually charged.
        let completes_at = 1_000u128;
        for (i, now) in [0u128, 250, 600, 999].iter().enumerate() {
            let stall = CostNanos(completes_at - now);
            table.park(id(7), slot(i as u64), stall, *now);
        }
        let batch = table.retire_command(id(7));
        let stalls: Vec<u128> = batch.iter().map(|t| t.stall.as_nanos()).collect();
        assert_eq!(stalls, vec![1000, 750, 400, 1]);
    }

    #[test]
    fn retiring_an_unknown_command_is_a_no_op() {
        let mut table = FaultTaskTable::new();
        assert!(table.retire_command(id(99)).is_empty());
        assert_eq!(table.stats().batches, 0);
    }
}
