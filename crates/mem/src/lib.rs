//! Mobile memory-hierarchy substrate for the Ariadne reproduction.
//!
//! The Ariadne paper evaluates compressed-swap policies inside the Android 14
//! kernel on a Google Pixel 7. This crate re-implements the pieces of that
//! memory hierarchy which both the baseline ZRAM scheme and Ariadne rely on,
//! as an ordinary userspace library with *simulated* time:
//!
//! * [`page`] — page frames, application identifiers and hotness labels;
//! * [`lru`] — the LRU page lists the kernel keeps (and that Ariadne extends
//!   from two lists to three);
//! * [`dram`] — the main-memory model with low/high watermarks;
//! * [`zpool`] — the compressed-page pool ZRAM stores data in, with
//!   sector-numbered 4 KiB blocks so swap-in locality can be studied;
//! * [`flash`] — the UFS flash swap device, with wear accounting;
//! * [`fault`] — the lightweight fault-task table that batches the
//!   bookkeeping of faults on in-flight write commands;
//! * [`timing`] — the simulated clock and the latency model for DRAM and
//!   flash accesses;
//! * [`cpu`] — CPU-time accounting split by activity (compression,
//!   decompression, reclaim scanning, I/O), mirroring what the paper
//!   measures with Perfetto;
//! * [`reclaim`] — the kswapd-style reclaim controller that decides *when*
//!   and *how much* to reclaim.
//!
//! # Example
//!
//! ```
//! use ariadne_mem::{MainMemory, Watermarks, AppId, Pfn, PageId};
//!
//! let mut dram = MainMemory::new(64 * 1024 * 1024, Watermarks::android_default(64 * 1024 * 1024));
//! let page = PageId::new(AppId::new(1), Pfn::new(42));
//! dram.insert(page).unwrap();
//! assert!(dram.contains(page));
//! assert_eq!(dram.used_bytes(), 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod dram;
pub mod error;
pub mod fault;
pub mod flash;
pub mod lru;
pub mod page;
pub mod reclaim;
pub mod slab;
pub mod timing;
pub mod zpool;

pub use cpu::{CpuActivity, CpuBreakdown};
pub use dram::{MainMemory, Watermarks};
pub use error::MemError;
pub use fault::{FaultTask, FaultTaskStats, FaultTaskTable};
pub use flash::{
    FaultIn, FlashDevice, FlashIoConfig, FlashIoMode, FlashStats, FlushResult, IoRequestId,
    SwapSlot, WriteRequest, ERASE_BLOCK_BYTES,
};
pub use lru::LruList;
pub use page::{AppId, Hotness, PageId, PageLocation, Pfn, PAGE_SIZE};
pub use reclaim::{ReclaimController, ReclaimReason, ReclaimRequest};
pub use slab::{Chain, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, Slab, SlabKey};
pub use timing::{MemTimingModel, SimClock, SimInstant};
pub use zpool::{Zpool, ZpoolEntry, ZpoolHandle, ZpoolSector, ZpoolStats};
