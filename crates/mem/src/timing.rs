//! Simulated time and the memory-hierarchy latency model.
//!
//! All timing in the workspace is *simulated*: experiments report what the
//! modelled Pixel-7-class device would have experienced, not how fast the
//! host laptop ran the simulation. [`SimClock`] is a monotonically advancing
//! nanosecond counter; [`MemTimingModel`] holds the latency constants of the
//! memory hierarchy (DRAM, UFS flash, page-fault fixed costs), calibrated so
//! that the *relative* costs match the paper's measurements:
//!
//! * reading relaunch data straight from DRAM is the fast case (Figure 2's
//!   `DRAM` bars, tens of milliseconds for a whole relaunch);
//! * decompression from zpool costs roughly another 1.1× on top (ZRAM bars
//!   average 2.1× DRAM);
//! * swapping in from flash is the slow case (SWAP bars).

use crate::cpu::{CpuActivity, CpuBreakdown};
use ariadne_compress::CostNanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimInstant(u128);

impl SimInstant {
    /// The simulation epoch.
    #[must_use]
    pub fn zero() -> Self {
        SimInstant(0)
    }

    /// The instant `nanos` nanoseconds after the simulation epoch (used by
    /// the event engine to compare scheduled event times against the clock).
    #[must_use]
    pub fn from_nanos(nanos: u128) -> Self {
        SimInstant(nanos)
    }

    /// Nanoseconds since the simulation epoch.
    #[must_use]
    pub fn as_nanos(self) -> u128 {
        self.0
    }

    /// The simulated duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (simulated time is
    /// monotonic, so this indicates a bug in the caller).
    #[must_use]
    pub fn duration_since(self, earlier: SimInstant) -> CostNanos {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant"
        );
        CostNanos(self.0 - earlier.0)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1e6)
    }
}

/// The simulation clock: monotonically advancing simulated nanoseconds,
/// plus a CPU-time ledger.
///
/// Wall-clock time spent by the host is irrelevant; only explicit calls to
/// [`SimClock::advance`] move simulated time forward.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimInstant,
    cpu: CpuBreakdown,
}

impl SimClock {
    /// A clock at the simulation epoch with an empty CPU ledger.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advance simulated time by `duration` (elapsed latency that does not
    /// burn CPU, such as waiting for flash I/O to complete).
    pub fn advance(&mut self, duration: CostNanos) {
        self.now = SimInstant(self.now.0 + duration.as_nanos());
    }

    /// Fast-forward the clock to `instant` if it lies in the future; a past
    /// instant leaves the clock untouched (simulated time never rewinds).
    /// The discrete-event engine uses this when it pops an event scheduled
    /// later than everything the current handler has charged so far.
    pub fn fast_forward_to(&mut self, instant: SimInstant) {
        if instant > self.now {
            self.now = instant;
        }
    }

    /// Advance simulated time by `duration` *and* charge the same amount of
    /// CPU time to `activity` (for work the CPU actively performs, such as
    /// compression).
    pub fn advance_cpu(&mut self, activity: CpuActivity, duration: CostNanos) {
        self.advance(duration);
        self.cpu.charge(activity, duration);
    }

    /// Charge CPU time without advancing the global clock (work performed on
    /// another core concurrently with the measured critical path).
    pub fn charge_cpu(&mut self, activity: CpuActivity, duration: CostNanos) {
        self.cpu.charge(activity, duration);
    }

    /// The accumulated CPU ledger.
    #[must_use]
    pub fn cpu(&self) -> &CpuBreakdown {
        &self.cpu
    }

    /// Reset only the CPU ledger (used between measurement windows).
    pub fn reset_cpu(&mut self) {
        self.cpu = CpuBreakdown::default();
    }
}

/// Latency constants for the modelled memory hierarchy.
///
/// Values are per 4 KiB page unless stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTimingModel {
    /// Cost of servicing an access to a page already resident in DRAM
    /// (page-table walk plus the cache-miss traffic of actually using it).
    pub dram_page_access_ns: u64,
    /// Fixed software cost of taking a page fault (entering the kernel,
    /// looking up the swap entry, updating page tables).
    pub page_fault_overhead_ns: u64,
    /// Reading one 4 KiB page from the UFS flash swap area.
    pub flash_read_page_ns: u64,
    /// Writing one 4 KiB page to the UFS flash swap area.
    pub flash_write_page_ns: u64,
    /// Moving one 4 KiB page between DRAM locations (copy during swap-in or
    /// zpool writeback staging).
    pub dram_copy_page_ns: u64,
    /// Cost of one LRU list operation (the paper cites list operations as
    /// roughly 100× cheaper than a swap operation).
    pub lru_op_ns: u64,
    /// Per-page cost of the reclaim scan loop (kswapd walking LRU lists and
    /// unmapping pages).
    pub reclaim_scan_page_ns: u64,
}

impl MemTimingModel {
    /// Constants approximating a Pixel-7-class device (LPDDR5 DRAM, UFS 3.1
    /// flash). Absolute values are representative; experiments only depend
    /// on their ratios.
    #[must_use]
    pub fn pixel7() -> Self {
        MemTimingModel {
            dram_page_access_ns: 1_500,
            page_fault_overhead_ns: 3_000,
            flash_read_page_ns: 90_000,
            flash_write_page_ns: 140_000,
            dram_copy_page_ns: 1_000,
            lru_op_ns: 150,
            reclaim_scan_page_ns: 400,
        }
    }

    /// Latency of reading `pages` pages that are already resident in DRAM.
    #[must_use]
    pub fn dram_access(&self, pages: usize) -> CostNanos {
        CostNanos(self.dram_page_access_ns as u128 * pages as u128)
    }

    /// Latency of reading `bytes` from flash (rounded up to whole pages).
    #[must_use]
    pub fn flash_read(&self, bytes: usize) -> CostNanos {
        CostNanos(self.flash_read_page_ns as u128 * Self::pages_for(bytes) as u128)
    }

    /// Latency of writing `bytes` to flash (rounded up to whole pages).
    #[must_use]
    pub fn flash_write(&self, bytes: usize) -> CostNanos {
        CostNanos(self.flash_write_page_ns as u128 * Self::pages_for(bytes) as u128)
    }

    /// Fixed cost of a page fault.
    #[must_use]
    pub fn page_fault(&self) -> CostNanos {
        CostNanos(self.page_fault_overhead_ns as u128)
    }

    /// Cost of `count` LRU list operations.
    #[must_use]
    pub fn lru_ops(&self, count: usize) -> CostNanos {
        CostNanos(self.lru_op_ns as u128 * count as u128)
    }

    /// Cost of scanning `pages` pages during reclaim.
    #[must_use]
    pub fn reclaim_scan(&self, pages: usize) -> CostNanos {
        CostNanos(self.reclaim_scan_page_ns as u128 * pages as u128)
    }

    /// Cost of copying `pages` pages within DRAM.
    #[must_use]
    pub fn dram_copy(&self, pages: usize) -> CostNanos {
        CostNanos(self.dram_copy_page_ns as u128 * pages as u128)
    }

    fn pages_for(bytes: usize) -> usize {
        bytes.div_ceil(crate::page::PAGE_SIZE).max(1)
    }
}

impl Default for MemTimingModel {
    fn default() -> Self {
        MemTimingModel::pixel7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        let start = clock.now();
        clock.advance(CostNanos(500));
        clock.advance_cpu(CpuActivity::Compression, CostNanos(1_000));
        assert_eq!(clock.now().as_nanos(), 1_500);
        assert_eq!(clock.now().duration_since(start), CostNanos(1_500));
        assert_eq!(
            clock.cpu().total_for(CpuActivity::Compression),
            CostNanos(1_000)
        );
    }

    #[test]
    fn charge_cpu_does_not_move_time() {
        let mut clock = SimClock::new();
        clock.charge_cpu(CpuActivity::ReclaimScan, CostNanos(999));
        assert_eq!(clock.now().as_nanos(), 0);
        assert_eq!(clock.cpu().total().as_nanos(), 999);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_on_time_travel() {
        let mut clock = SimClock::new();
        let early = clock.now();
        clock.advance(CostNanos(10));
        let _ = early.duration_since(clock.now());
    }

    #[test]
    fn flash_is_much_slower_than_dram() {
        let model = MemTimingModel::pixel7();
        assert!(model.flash_read(4096) > model.dram_access(1).saturating_add(CostNanos(10_000)));
        assert!(model.flash_write(4096) > model.flash_read(4096));
    }

    #[test]
    fn lru_ops_are_cheap_relative_to_swap() {
        let model = MemTimingModel::pixel7();
        // The paper cites LRU operations as ~100x cheaper than swapping.
        assert!(model.flash_read(4096).as_nanos() >= 100 * model.lru_ops(1).as_nanos());
    }

    #[test]
    fn byte_counts_round_up_to_pages() {
        let model = MemTimingModel::pixel7();
        assert_eq!(model.flash_read(1), model.flash_read(4096));
        assert_eq!(model.flash_read(4097), model.flash_read(8192));
    }

    #[test]
    fn reset_cpu_keeps_time() {
        let mut clock = SimClock::new();
        clock.advance_cpu(CpuActivity::Decompression, CostNanos(100));
        clock.reset_cpu();
        assert_eq!(clock.cpu().total(), CostNanos::zero());
        assert_eq!(clock.now().as_nanos(), 100);
    }

    #[test]
    fn sim_instant_display_is_millis() {
        let mut clock = SimClock::new();
        clock.advance(CostNanos(2_500_000));
        assert_eq!(clock.now().to_string(), "t+2.500ms");
    }
}
