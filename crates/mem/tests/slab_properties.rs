//! Property tests pinning `Slab` + `Chain` against a naive reference model.
//!
//! The slab is the substrate under every hot-path index (zpool, flash,
//! LRU lists, the oracle's recency chains), so its semantics are pinned
//! here against a `HashMap` + insertion-order `Vec` model: insert/remove/
//! get/iterate equivalence under arbitrary op interleavings, stale keys
//! from recycled slots never resolving (the generation check), and chain
//! iteration order tracking insertion order exactly — which is what makes
//! `release_app` sweeps deterministic in every consumer.

use ariadne_mem::{Chain, Slab, SlabKey};
use proptest::prelude::*;
use std::collections::HashMap;

const CHANNEL: usize = 0;

/// Reference model: a `HashMap` keyed by the packed slab key plus a `Vec`
/// recording live keys in insertion order (the order a chain must report).
#[derive(Default)]
struct Reference {
    live: HashMap<u64, u64>,
    order: Vec<SlabKey>,
    stale: Vec<SlabKey>,
}

/// Replay `(op, arg)` codes against the slab and the reference model,
/// checking the full observable surface after every op.
fn run_slab_ops(ops: &[(u8, u16)]) {
    let mut slab: Slab<u64> = Slab::new();
    let mut chain = Chain::new();
    let mut reference = Reference::default();
    let mut next_value = 0u64;

    for &(op, arg) in ops {
        match op {
            // Insert a fresh value; the new key must be unique forever.
            0 => {
                let value = next_value;
                next_value += 1;
                let key = slab.insert(value);
                assert!(
                    reference.live.insert(key.pack(), value).is_none(),
                    "slab handed out a key that is still live in the model"
                );
                assert!(
                    !reference.stale.contains(&key),
                    "slab reused a packed key without bumping the generation"
                );
                chain.push_back(&mut slab, CHANNEL, key.index());
                reference.order.push(key);
            }
            // Remove a live key chosen by `arg`.
            1 if !reference.order.is_empty() => {
                let pick = usize::from(arg) % reference.order.len();
                let key = reference.order.remove(pick);
                let expected = reference.live.remove(&key.pack()).expect("model live");
                chain.unlink(&mut slab, CHANNEL, key.index());
                assert_eq!(slab.remove(key), Some(expected));
                reference.stale.push(key);
            }
            // Probe a stale key: the generation check must reject it even
            // when the slot has been recycled by a later insert.
            2 if !reference.stale.is_empty() => {
                let pick = usize::from(arg) % reference.stale.len();
                let key = reference.stale[pick];
                assert!(!slab.contains(key), "stale key resolved after removal");
                assert_eq!(slab.get(key), None);
                assert_eq!(slab.remove(key), None, "stale key removed a live slot");
            }
            // Probe a live key.
            _ if !reference.order.is_empty() => {
                let pick = usize::from(arg) % reference.order.len();
                let key = reference.order[pick];
                let expected = reference.live[&key.pack()];
                assert!(slab.contains(key));
                assert_eq!(slab.get(key), Some(&expected));
                assert_eq!(slab.key_at(key.index()), key);
            }
            _ => {}
        }

        // Full-surface checks after every op.
        assert_eq!(slab.len(), reference.live.len());
        assert_eq!(slab.is_empty(), reference.live.is_empty());
        assert_eq!(chain.len(), reference.order.len());

        let iterated: HashMap<u64, u64> = slab
            .iter()
            .map(|(key, value)| (key.pack(), *value))
            .collect();
        assert_eq!(iterated, reference.live, "iter() disagrees with the model");

        // Chain order is insertion order — front to back, and reversed —
        // which is the determinism guarantee `release_app` sweeps lean on.
        let forward: Vec<SlabKey> = chain
            .indices(&slab, CHANNEL)
            .map(|index| slab.key_at(index))
            .collect();
        assert_eq!(forward, reference.order, "chain order drifted");
        let backward: Vec<SlabKey> = chain
            .indices(&slab, CHANNEL)
            .rev()
            .map(|index| slab.key_at(index))
            .collect();
        let mut expected_back = reference.order.clone();
        expected_back.reverse();
        assert_eq!(backward, expected_back, "reverse chain order drifted");
        assert_eq!(chain.head(), reference.order.first().map(|k| k.index()));
        assert_eq!(chain.tail(), reference.order.last().map(|k| k.index()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Arbitrary insert/remove/stale-probe/live-probe interleavings keep the
    // slab in lockstep with the reference model after every single op.
    #[test]
    fn slab_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, any::<u16>()), 1..120),
    ) {
        run_slab_ops(&ops);
    }

    // Churn-heavy mix (two insert codes for every remove) forces slot reuse
    // so the generation/ABA checks actually fire, not just the happy path.
    #[test]
    fn slab_survives_reuse_churn(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u8..1, any::<u16>()),
                (0u8..1, any::<u16>()),
                (1u8..3, any::<u16>()),
            ],
            1..200,
        ),
    ) {
        run_slab_ops(&ops);
    }
}

/// The canonical ABA case, pinned deterministically: a key saved before its
/// slot is recycled must not resolve to the slot's new tenant.
#[test]
fn stale_key_does_not_alias_recycled_slot() {
    let mut slab: Slab<u64> = Slab::new();
    let old = slab.insert(7);
    assert_eq!(slab.remove(old), Some(7));
    let new = slab.insert(8);
    // Free-list reuse puts the new tenant in the same physical slot…
    assert_eq!(new.index(), old.index());
    // …but the stale key carries the old generation and must stay dead.
    assert_ne!(new.generation(), old.generation());
    assert!(!slab.contains(old));
    assert_eq!(slab.get(old), None);
    assert_eq!(slab.remove(old), None);
    assert_eq!(slab.get(new), Some(&8));
}

/// `clear` invalidates every outstanding key, not just the freed ones.
#[test]
fn clear_invalidates_all_keys() {
    let mut slab: Slab<u64> = Slab::new();
    let keys: Vec<SlabKey> = (0..16).map(|v| slab.insert(v)).collect();
    slab.clear();
    assert!(slab.is_empty());
    for key in keys {
        assert!(!slab.contains(key));
        assert_eq!(slab.remove(key), None);
    }
}
