//! Property tests for flash-wear accounting: erase counts only ever grow,
//! write amplification never drops below 1, the leak-freedom invariant
//! holds with wear-dependent latency inflation enabled, and the sync and
//! queued I/O models agree on every wear total (wear is charged at
//! submission, which both modes share).

use ariadne_mem::{
    AppId, FlashDevice, FlashIoConfig, PageId, Pfn, WriteRequest, ERASE_BLOCK_BYTES, PAGE_SIZE,
};
use proptest::prelude::*;

fn page(pfn: u64) -> PageId {
    PageId::new(AppId::new(3), Pfn::new(pfn))
}

/// A single-page request whose stored size is `stored` bytes (sub-page
/// compressed objects are the interesting WAF case).
fn request(pfn: u64, stored: usize) -> WriteRequest {
    WriteRequest {
        pages: vec![page(pfn)],
        original_bytes: PAGE_SIZE,
        stored_bytes: stored.clamp(1, PAGE_SIZE),
        compressed: stored < PAGE_SIZE,
    }
}

/// Replay `ops` against one device, checking the wear invariants after
/// every operation. Returns the final stats and per-block erase counts.
fn run_wear_ops(io: FlashIoConfig, ops: &[(u8, u16)]) -> (ariadne_mem::FlashStats, Vec<u32>) {
    let mut flash = FlashDevice::with_io(6 * ERASE_BLOCK_BYTES, io);
    let mut now: u128 = 0;
    let mut live = Vec::new();
    let mut next_pfn = 0u64;
    let mut last_erases = 0usize;
    let mut last_physical = 0usize;
    let mut last_counts: Vec<u32> = Vec::new();

    for &(op, param) in ops {
        match op {
            // Submit a batch of single-page requests of varying stored size.
            0 | 1 => {
                let count = usize::from(param % 4) + 1;
                let requests: Vec<WriteRequest> = (0..count)
                    .map(|i| {
                        next_pfn += 1;
                        request(next_pfn, usize::from(param) * 7 + i * 911 + 1)
                    })
                    .collect();
                let result = flash.submit_writes(requests, now);
                live.extend(result.slots);
            }
            // Time passes.
            2 => now += u128::from(param) * 11_000,
            // Fault a live slot back in.
            3 => {
                if !live.is_empty() {
                    let slot = live.remove(usize::from(param) % live.len());
                    flash.fault_in(slot, now).expect("live slot");
                }
            }
            // Kill the app: everything is released at once.
            4 => {
                flash.release_app(AppId::new(3), now);
                live.clear();
            }
            _ => {
                let _ = flash.retire_completed(now);
            }
        }
        flash
            .leak_check()
            .unwrap_or_else(|leak| panic!("leak after op ({op}, {param}): {leak}"));
        let stats = flash.stats();
        // Wear is permanent: erase counts and physical bytes are monotone,
        // per block and in total, across faults and releases alike.
        assert!(stats.erases >= last_erases, "total erases went backwards");
        assert!(
            stats.physical_bytes_written >= last_physical,
            "physical bytes went backwards"
        );
        let counts = flash.erase_counts().to_vec();
        for (block, (&before, &after)) in last_counts.iter().zip(counts.iter()).enumerate() {
            assert!(after >= before, "block {block} erase count went backwards");
        }
        assert!(stats.waf() >= 1.0, "WAF {} below 1", stats.waf());
        assert!(
            stats.physical_bytes_written >= stats.bytes_written,
            "page rounding cannot program fewer bytes than were written"
        );
        last_erases = stats.erases;
        last_physical = stats.physical_bytes_written;
        last_counts = counts;
    }
    (flash.stats(), flash.erase_counts().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Erase counts are monotone, WAF ≥ 1 and `leak_check` stays green
    // under arbitrary op interleavings — with wear-dependent latency
    // inflation switched on, which must not disturb any accounting.
    #[test]
    fn wear_invariants_hold_with_inflation_enabled(
        ops in proptest::collection::vec((0u8..6, proptest::prelude::any::<u16>()), 1..80),
        depth in 1usize..5,
        ppm in 0u64..200_000,
    ) {
        let io = FlashIoConfig::ufs31()
            .with_queue_depth(depth)
            .with_wear_latency_ppm(ppm);
        run_wear_ops(io, &ops);
    }

    // The sync and queued models accept the same requests (admission is
    // capacity-based, not timing-based) and charge wear at submission, so
    // every wear total and every per-block erase count agrees.
    #[test]
    fn sync_and_queued_modes_agree_on_wear_totals(
        ops in proptest::collection::vec((0u8..6, proptest::prelude::any::<u16>()), 1..80),
    ) {
        let (queued, queued_blocks) = run_wear_ops(FlashIoConfig::ufs31(), &ops);
        let (sync, sync_blocks) = run_wear_ops(FlashIoConfig::sync(), &ops);
        assert_eq!(queued.writes, sync.writes);
        assert_eq!(queued.bytes_written, sync.bytes_written);
        assert_eq!(queued.physical_bytes_written, sync.physical_bytes_written);
        assert_eq!(queued.erases, sync.erases);
        assert_eq!(queued_blocks, sync_blocks);
    }
}

/// The WAF of an all-sub-page workload is exactly the page-rounding ratio.
#[test]
fn waf_reflects_sub_page_padding_exactly() {
    let mut flash = FlashDevice::new(1 << 22);
    for pfn in 0..32u64 {
        flash
            .write(vec![page(pfn)], PAGE_SIZE, PAGE_SIZE / 4, true)
            .unwrap();
    }
    let stats = flash.stats();
    assert_eq!(stats.bytes_written, 32 * PAGE_SIZE / 4);
    assert_eq!(stats.physical_bytes_written, 32 * PAGE_SIZE);
    assert!((stats.waf() - 4.0).abs() < 1e-12);
}
