//! Property tests for the queued flash device: slot accounting must be
//! leak-proof under arbitrary interleavings of submissions, time advances,
//! retirements, faults and discards.
//!
//! The pinned invariant (see `FlashDevice::leak_check`): every allocated
//! `SwapSlot` is always either in flight, at rest, or gone — and after a
//! fault-in it is *gone*, never orphaned (no stale page-index entries, no
//! leaked used-bytes, no dangling outstanding commands).

use ariadne_mem::{
    AppId, FlashDevice, FlashIoConfig, FlashIoMode, PageId, Pfn, WriteRequest, PAGE_SIZE,
};
use proptest::prelude::*;

fn page(pfn: u64) -> PageId {
    PageId::new(AppId::new(7), Pfn::new(pfn))
}

fn request(pfn: u64, pages: usize) -> WriteRequest {
    WriteRequest {
        pages: (0..pages as u64).map(|i| page(pfn * 64 + i)).collect(),
        original_bytes: pages * PAGE_SIZE,
        stored_bytes: pages * PAGE_SIZE / 2,
        compressed: true,
    }
}

/// Interpret an op sequence against a small device, checking the
/// leak-freedom invariant after every operation, and at the end fault
/// everything back in and require the device to be completely empty.
fn run_ops(io: FlashIoConfig, ops: &[(u8, u8)]) {
    // Small capacity so rejections happen; the queue depth in `io` is small
    // so submitters stall.
    let mut flash = FlashDevice::with_io(24 * PAGE_SIZE, io);
    let mut now: u128 = 0;
    let mut live = Vec::new();
    let mut next_pfn = 0u64;

    for &(op, param) in ops {
        match op {
            // Submit a small batch of write requests.
            0 | 1 => {
                let count = usize::from(param % 3) + 1;
                let requests: Vec<WriteRequest> = (0..count)
                    .map(|_| {
                        next_pfn += 1;
                        request(next_pfn, usize::from(param % 2) + 1)
                    })
                    .collect();
                let result = flash.submit_writes(requests, now);
                live.extend(result.slots);
            }
            // Let simulated time pass.
            2 => now += u128::from(param) * 37_000,
            // Fault a live slot back in: the slot must be fully released.
            3 => {
                if !live.is_empty() {
                    let slot = live.remove(usize::from(param) % live.len());
                    let fault = flash.fault_in(slot, now).expect("live slot");
                    for p in &fault.pages {
                        assert!(!flash.contains(*p), "fault-in left {p} behind for {slot}");
                    }
                    assert!(flash.fault_in(slot, now).is_err(), "slot must be freed");
                }
            }
            // Discard a live slot.
            4 => {
                if !live.is_empty() {
                    let slot = live.remove(usize::from(param) % live.len());
                    flash.discard(slot).expect("live slot");
                }
            }
            // Explicit retirement (the engine's IoComplete path).
            _ => {
                let _ = flash.retire_completed(now);
            }
        }
        flash
            .leak_check()
            .unwrap_or_else(|leak| panic!("invariant violated after op ({op}, {param}): {leak}"));
        assert!(flash.used_bytes() <= flash.capacity());
    }

    // Drain: every surviving slot is faulted in; nothing may be orphaned.
    now += 1_000_000_000;
    flash.retire_completed(now);
    for slot in live {
        flash.fault_in(slot, now).expect("surviving slot is live");
    }
    flash.leak_check().unwrap();
    assert!(flash.is_empty(), "entries leaked");
    assert_eq!(flash.used_bytes(), 0, "used-bytes leaked");
    assert_eq!(flash.slot_for(page(1)), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queued_device_never_orphans_slots(
        ops in proptest::collection::vec((0u8..6, proptest::prelude::any::<u8>()), 1..100),
        depth in 1usize..5,
        batch in 1usize..5,
    ) {
        let io = FlashIoConfig::ufs31()
            .with_queue_depth(depth)
            .with_max_batch_pages(batch);
        run_ops(io, &ops);
    }

    #[test]
    fn sync_device_never_orphans_slots(
        ops in proptest::collection::vec((0u8..6, proptest::prelude::any::<u8>()), 1..100),
    ) {
        run_ops(FlashIoConfig::sync(), &ops);
    }
}

#[test]
fn completion_times_are_monotonic_per_device() {
    let io = FlashIoConfig::ufs31().with_max_batch_pages(1);
    let mut flash = FlashDevice::with_io(1 << 24, io);
    let mut last = 0u128;
    for i in 0..10u64 {
        let result = flash.submit_writes(vec![request(i + 1, 1)], i as u128 * 10_000);
        let completes = flash
            .pending_completion(result.slots[0])
            .expect("freshly submitted");
        assert!(
            completes >= last,
            "command completes before its predecessor"
        );
        last = completes;
    }
    assert_eq!(flash.io().mode, FlashIoMode::Queued);
}
