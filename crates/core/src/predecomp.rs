//! PreDecomp: the proactive-decompression buffer (§4.4).
//!
//! When Ariadne decompresses a faulted page it also speculatively
//! decompresses the zpool entry at the next sector — the data that was
//! compressed right after the faulted data and is therefore likely to be
//! accessed next (Insight 3). The speculatively decompressed pages wait in a
//! small FIFO buffer; an access that hits the buffer skips the whole
//! fault-plus-decompression path. Pages evicted from the buffer without ever
//! being used were wasted work and are counted so the overhead analysis
//! (§6.4) can be reproduced.

use ariadne_mem::{LruList, PageId};

/// The FIFO buffer of speculatively decompressed pages.
///
/// ```
/// use ariadne_core::PreDecompBuffer;
/// use ariadne_mem::{AppId, PageId, Pfn};
///
/// let mut buffer = PreDecompBuffer::new(2);
/// let a = PageId::new(AppId::new(1), Pfn::new(0));
/// let b = PageId::new(AppId::new(1), Pfn::new(1));
/// buffer.insert(a);
/// buffer.insert(b);
/// assert!(buffer.take(a)); // hit
/// assert!(!buffer.take(a)); // already consumed
/// ```
#[derive(Debug, Clone, Default)]
pub struct PreDecompBuffer {
    capacity: usize,
    /// Insertion-ordered set: the LRU end is the oldest (FIFO victim) page.
    /// Pages are only ever touched on insert, so recency order *is* FIFO
    /// order, and membership tests are O(1) instead of a linear scan.
    pages: LruList<PageId>,
    hits: usize,
    wasted: usize,
    inserted: usize,
}

impl PreDecompBuffer {
    /// Create a buffer holding up to `capacity` pages (at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PreDecompBuffer {
            capacity: capacity.max(1),
            ..PreDecompBuffer::default()
        }
    }

    /// Capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently waiting in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether `page` is waiting in the buffer.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.pages.contains(&page)
    }

    /// Insert a speculatively decompressed page. If the buffer is full the
    /// oldest page is evicted (and returned so the caller can re-compress
    /// it); evicted pages count as wasted pre-decompressions.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if self.pages.contains(&page) {
            return None;
        }
        self.inserted += 1;
        let evicted = if self.pages.len() >= self.capacity {
            let old = self.pages.pop_lru();
            if old.is_some() {
                self.wasted += 1;
            }
            old
        } else {
            None
        };
        self.pages.touch(page);
        evicted
    }

    /// Consume `page` from the buffer if it is present. Returns `true` on a
    /// hit.
    pub fn take(&mut self, page: PageId) -> bool {
        if self.pages.remove(&page) {
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Drain every page still waiting (counted as wasted), e.g. when the
    /// owning application is terminated. Pages come out oldest first.
    pub fn clear(&mut self) -> Vec<PageId> {
        self.wasted += self.pages.len();
        self.pages.drain_lru(usize::MAX)
    }

    /// Drop every buffered page belonging to `app` (its process was killed).
    /// The dropped pages count as wasted pre-decompressions — the CPU spent
    /// decompressing them is never recouped. Pages come out oldest first.
    pub fn release_app(&mut self, app: ariadne_mem::AppId) -> Vec<PageId> {
        let doomed: Vec<PageId> = self
            .pages
            .iter_lru()
            .filter(|p| p.app() == app)
            .copied()
            .collect();
        for page in &doomed {
            self.pages.remove(page);
        }
        self.wasted += doomed.len();
        doomed
    }

    /// Number of buffer hits so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of pre-decompressed pages that were evicted or cleared without
    /// ever being used.
    #[must_use]
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Number of pages ever inserted.
    #[must_use]
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Hit rate over all inserted pages (0.0 when nothing was inserted).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.inserted == 0 {
            0.0
        } else {
            self.hits as f64 / self.inserted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::{AppId, Pfn};

    fn page(pfn: u64) -> PageId {
        PageId::new(AppId::new(1), Pfn::new(pfn))
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut buffer = PreDecompBuffer::new(2);
        assert!(buffer.insert(page(0)).is_none());
        assert!(buffer.insert(page(1)).is_none());
        let evicted = buffer.insert(page(2));
        assert_eq!(evicted, Some(page(0)));
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.wasted(), 1);
        assert!(buffer.contains(page(1)) && buffer.contains(page(2)));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut buffer = PreDecompBuffer::new(4);
        buffer.insert(page(0));
        buffer.insert(page(1));
        assert!(buffer.take(page(1)));
        assert!(!buffer.take(page(9)));
        assert_eq!(buffer.hits(), 1);
        assert_eq!(buffer.inserted(), 2);
        assert!((buffer.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let mut buffer = PreDecompBuffer::new(4);
        buffer.insert(page(0));
        buffer.insert(page(0));
        assert_eq!(buffer.len(), 1);
        assert_eq!(buffer.inserted(), 1);
    }

    #[test]
    fn clear_counts_remaining_pages_as_wasted() {
        let mut buffer = PreDecompBuffer::new(4);
        buffer.insert(page(0));
        buffer.insert(page(1));
        let drained = buffer.clear();
        assert_eq!(drained.len(), 2);
        assert_eq!(buffer.wasted(), 2);
        assert!(buffer.is_empty());
        assert_eq!(buffer.hit_rate(), 0.0 + buffer.hits() as f64 / 2.0);
    }

    #[test]
    fn capacity_of_zero_is_bumped_to_one() {
        let buffer = PreDecompBuffer::new(0);
        assert_eq!(buffer.capacity(), 1);
    }

    #[test]
    fn empty_buffer_reports_zero_hit_rate() {
        assert_eq!(PreDecompBuffer::new(4).hit_rate(), 0.0);
    }
}
