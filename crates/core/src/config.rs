//! Ariadne configuration: chunk-size triples and the EHL/AL evaluation modes.

use ariadne_compress::ChunkSize;
use ariadne_zram::MemoryConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `SmallSize-MediumSize-LargeSize` chunk-size triple of the paper's
/// Table 5: the compression chunk sizes used for the hot, warm and cold
/// lists respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SizeConfig {
    /// Compression chunk size for hot-list data.
    pub small: ChunkSize,
    /// Compression chunk size for warm-list data.
    pub medium: ChunkSize,
    /// Compression chunk size for cold-list data.
    pub large: ChunkSize,
}

impl SizeConfig {
    /// Build a size configuration, checking the ordering invariant
    /// `small <= medium <= large`.
    ///
    /// # Panics
    ///
    /// Panics if the ordering invariant is violated — a misordered triple
    /// would silently invert Ariadne's entire design.
    #[must_use]
    pub fn new(small: ChunkSize, medium: ChunkSize, large: ChunkSize) -> Self {
        assert!(
            small <= medium && medium <= large,
            "size configuration must satisfy small <= medium <= large"
        );
        SizeConfig {
            small,
            medium,
            large,
        }
    }

    /// The `1K-2K-16K` configuration highlighted in §6.1.
    #[must_use]
    pub fn k1_k2_k16() -> Self {
        SizeConfig::new(ChunkSize::k1(), ChunkSize::k2(), ChunkSize::k16())
    }

    /// The `256-2K-32K` configuration of Figure 11.
    #[must_use]
    pub fn b256_k2_k32() -> Self {
        SizeConfig::new(ChunkSize::b256(), ChunkSize::k2(), ChunkSize::k32())
    }

    /// The `512B-2K-16K` configuration of Figure 13.
    #[must_use]
    pub fn b512_k2_k16() -> Self {
        SizeConfig::new(ChunkSize::b512(), ChunkSize::k2(), ChunkSize::k16())
    }

    /// The `1K-4K-16K` configuration of Figure 13.
    #[must_use]
    pub fn k1_k4_k16() -> Self {
        SizeConfig::new(ChunkSize::k1(), ChunkSize::k4(), ChunkSize::k16())
    }

    /// The `1K-4K-64K` configuration of the Figure 15 sensitivity study.
    #[must_use]
    pub fn k1_k4_k64() -> Self {
        SizeConfig::new(ChunkSize::k1(), ChunkSize::k4(), ChunkSize::k64())
    }

    /// The `256-1K-4K` configuration of the Figure 15 sensitivity study.
    #[must_use]
    pub fn b256_k1_k4() -> Self {
        SizeConfig::new(ChunkSize::b256(), ChunkSize::k1(), ChunkSize::k4())
    }

    /// Every size configuration evaluated in the paper's figures.
    #[must_use]
    pub fn evaluated() -> Vec<SizeConfig> {
        vec![
            SizeConfig::k1_k2_k16(),
            SizeConfig::b256_k2_k32(),
            SizeConfig::b512_k2_k16(),
            SizeConfig::k1_k4_k16(),
            SizeConfig::k1_k4_k64(),
            SizeConfig::b256_k1_k4(),
        ]
    }
}

impl fmt::Display for SizeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-{}", self.small, self.medium, self.large)
    }
}

/// Which lists participate in compression during the evaluation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HotListMode {
    /// Exclude the hot list: hot data stays uncompressed in main memory and
    /// reclaim takes it only as an absolute last resort.
    ExcludeHotList,
    /// All lists: hot data may be compressed like everything else (using the
    /// small chunk size so its decompression stays fast).
    AllLists,
}

impl HotListMode {
    /// The abbreviation used in the paper (`EHL` / `AL`).
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            HotListMode::ExcludeHotList => "EHL",
            HotListMode::AllLists => "AL",
        }
    }
}

impl fmt::Display for HotListMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// Complete configuration of an [`crate::AriadneScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AriadneConfig {
    /// Chunk sizes per hotness level.
    pub sizes: SizeConfig,
    /// Whether the hot list participates in compression.
    pub mode: HotListMode,
    /// Capacity of the pre-decompression buffer, in pages. The paper
    /// pre-decompresses one page at a time; a small buffer lets a few
    /// prefetched pages wait for their access.
    pub predecomp_buffer_pages: usize,
    /// Whether proactive decompression is enabled at all (disabled in the
    /// ablation study).
    pub predecomp_enabled: bool,
    /// Underlying memory sizing and algorithm.
    pub memory: MemoryConfig,
}

impl AriadneConfig {
    /// A configuration with the given sizes and mode over `memory`.
    #[must_use]
    pub fn new(sizes: SizeConfig, mode: HotListMode, memory: MemoryConfig) -> Self {
        AriadneConfig {
            sizes,
            mode,
            predecomp_buffer_pages: 8,
            predecomp_enabled: true,
            memory,
        }
    }

    /// The paper's headline configuration `Ariadne-EHL-1K-2K-16K`.
    #[must_use]
    pub fn ehl_1k_2k_16k(memory: MemoryConfig) -> Self {
        AriadneConfig::new(SizeConfig::k1_k2_k16(), HotListMode::ExcludeHotList, memory)
    }

    /// The `Ariadne-AL-1K-2K-16K` configuration.
    #[must_use]
    pub fn al_1k_2k_16k(memory: MemoryConfig) -> Self {
        AriadneConfig::new(SizeConfig::k1_k2_k16(), HotListMode::AllLists, memory)
    }

    /// Disable proactive decompression (ablation).
    #[must_use]
    pub fn without_predecomp(mut self) -> Self {
        self.predecomp_enabled = false;
        self
    }

    /// Override the pre-decompression buffer capacity.
    #[must_use]
    pub fn with_predecomp_buffer(mut self, pages: usize) -> Self {
        self.predecomp_buffer_pages = pages.max(1);
        self
    }

    /// The scheme name used in figures, e.g. `Ariadne-EHL-1K-2K-16K`.
    #[must_use]
    pub fn scheme_name(&self) -> String {
        format!("Ariadne-{}-{}", self.mode, self.sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper_notation() {
        let config = AriadneConfig::ehl_1k_2k_16k(MemoryConfig::pixel7_scaled(256));
        assert_eq!(config.scheme_name(), "Ariadne-EHL-1K-2K-16K");
        let config = AriadneConfig::new(
            SizeConfig::b256_k2_k32(),
            HotListMode::AllLists,
            MemoryConfig::pixel7_scaled(256),
        );
        assert_eq!(config.scheme_name(), "Ariadne-AL-256B-2K-32K");
    }

    #[test]
    fn size_config_orderings_are_enforced() {
        let ok = SizeConfig::new(ChunkSize::b256(), ChunkSize::k2(), ChunkSize::k16());
        assert_eq!(ok.to_string(), "256B-2K-16K");
        let result = std::panic::catch_unwind(|| {
            SizeConfig::new(ChunkSize::k16(), ChunkSize::k2(), ChunkSize::b256())
        });
        assert!(result.is_err());
    }

    #[test]
    fn evaluated_configurations_cover_the_figures() {
        let all = SizeConfig::evaluated();
        assert!(all.contains(&SizeConfig::k1_k2_k16()));
        assert!(all.contains(&SizeConfig::k1_k4_k64()));
        assert!(all.contains(&SizeConfig::b256_k1_k4()));
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn builder_methods_adjust_predecomp() {
        let config = AriadneConfig::ehl_1k_2k_16k(MemoryConfig::pixel7_scaled(256))
            .without_predecomp()
            .with_predecomp_buffer(4);
        assert!(!config.predecomp_enabled);
        assert_eq!(config.predecomp_buffer_pages, 4);
    }

    #[test]
    fn mode_abbreviations_are_stable() {
        assert_eq!(HotListMode::ExcludeHotList.to_string(), "EHL");
        assert_eq!(HotListMode::AllLists.to_string(), "AL");
    }
}
