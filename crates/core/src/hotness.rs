//! HotnessOrg: low-overhead hotness-aware data organization (§4.2).
//!
//! Every application keeps its anonymous pages on three LRU lists — hot,
//! warm and cold — instead of the kernel's active/inactive pair, and the
//! applications themselves sit on an application-level LRU list. All
//! operations are plain list manipulations (no data is moved), so the
//! overhead over the baseline is a handful of pointer updates per event,
//! which the paper quantifies as negligible.
//!
//! The rules implemented here follow §4.2:
//!
//! * pages touched during a launch or relaunch belong on the hot list;
//! * pages created during execution start cold; if execution touches a cold
//!   page it is promoted to warm (like the kernel's inactive→active move);
//! * when a relaunch starts, the previous hot list is demoted wholesale to
//!   the warm list so the hot list ends up holding exactly the data of the
//!   most recent relaunch;
//! * reclaim victims are chosen cold-first from the least recently used
//!   application; warm data follows, and hot data is touched only as a last
//!   resort (or when the `AL` evaluation mode explicitly allows it).

use ariadne_mem::{AppId, FxHashMap, Hotness, LruList, PageId};

/// Per-application page lists.
#[derive(Debug, Clone, Default)]
struct AppLists {
    hot: LruList<PageId>,
    warm: LruList<PageId>,
    cold: LruList<PageId>,
}

impl AppLists {
    fn list_mut(&mut self, hotness: Hotness) -> &mut LruList<PageId> {
        match hotness {
            Hotness::Hot => &mut self.hot,
            Hotness::Warm => &mut self.warm,
            Hotness::Cold => &mut self.cold,
        }
    }

    fn hotness_of(&self, page: PageId) -> Option<Hotness> {
        if self.hot.contains(&page) {
            Some(Hotness::Hot)
        } else if self.warm.contains(&page) {
            Some(Hotness::Warm)
        } else if self.cold.contains(&page) {
            Some(Hotness::Cold)
        } else {
            None
        }
    }
}

/// The hotness-aware data organization of Ariadne.
///
/// ```
/// use ariadne_core::HotnessOrg;
/// use ariadne_mem::{AppId, Hotness, PageId, Pfn};
///
/// let mut org = HotnessOrg::new();
/// let app = AppId::new(1);
/// let page = PageId::new(app, Pfn::new(0));
/// org.insert(page, Hotness::Cold);
/// assert_eq!(org.hotness_of(page), Some(Hotness::Cold));
/// // Execution touches the page: it becomes warm.
/// org.on_execution_access(page);
/// assert_eq!(org.hotness_of(page), Some(Hotness::Warm));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HotnessOrg {
    apps: FxHashMap<AppId, AppLists>,
    app_lru: LruList<AppId>,
    list_ops: usize,
    /// Pages per hotness level across all apps, maintained incrementally so
    /// [`HotnessOrg::total_pages`] and [`HotnessOrg::pages_at`] are O(1)
    /// (they are polled every engine tick for the pressure stats).
    level_counts: [usize; 3],
}

/// Index into [`HotnessOrg::level_counts`] for a hotness level.
fn level_index(hotness: Hotness) -> usize {
    match hotness {
        Hotness::Hot => 0,
        Hotness::Warm => 1,
        Hotness::Cold => 2,
    }
}

impl HotnessOrg {
    /// Create an empty organization.
    #[must_use]
    pub fn new() -> Self {
        HotnessOrg::default()
    }

    /// Number of LRU list operations performed so far (the paper's overhead
    /// argument counts these).
    #[must_use]
    pub fn list_operations(&self) -> usize {
        self.list_ops
    }

    /// Insert `page` on the list for `hotness` (most recently used end),
    /// removing it from any other list first.
    pub fn insert(&mut self, page: PageId, hotness: Hotness) {
        let lists = self.apps.entry(page.app()).or_default();
        let previous = lists.hotness_of(page);
        if previous != Some(hotness) {
            if let Some(level) = previous {
                lists.list_mut(level).remove(&page);
                self.level_counts[level_index(level)] -= 1;
            }
            self.level_counts[level_index(hotness)] += 1;
        }
        lists.list_mut(hotness).touch(page);
        self.app_lru.touch(page.app());
        self.list_ops += 2;
    }

    /// Remove `page` from whatever list it is on (it is being compressed or
    /// swapped out). Returns the hotness it had.
    pub fn remove(&mut self, page: PageId) -> Option<Hotness> {
        let lists = self.apps.get_mut(&page.app())?;
        let hotness = lists.hotness_of(page)?;
        lists.list_mut(hotness).remove(&page);
        self.level_counts[level_index(hotness)] -= 1;
        self.list_ops += 1;
        Some(hotness)
    }

    /// The hotness level `page` currently has, if it is tracked.
    #[must_use]
    pub fn hotness_of(&self, page: PageId) -> Option<Hotness> {
        self.apps.get(&page.app())?.hotness_of(page)
    }

    /// A launch or relaunch touched `page`: it belongs on the hot list.
    pub fn on_relaunch_access(&mut self, page: PageId) {
        self.insert(page, Hotness::Hot);
    }

    /// Ordinary execution touched `page`: cold pages are promoted to warm,
    /// warm and hot pages are refreshed in place.
    pub fn on_execution_access(&mut self, page: PageId) {
        let current = self.hotness_of(page);
        match current {
            Some(Hotness::Cold) | None => self.insert(page, Hotness::Warm),
            Some(level) => {
                let lists = self.apps.entry(page.app()).or_default();
                lists.list_mut(level).touch(page);
                self.app_lru.touch(page.app());
                self.list_ops += 1;
            }
        }
    }

    /// A relaunch of `app` is starting: demote the previous hot list to the
    /// warm list so the hot list will hold exactly this relaunch's data.
    /// Returns how many pages were demoted.
    pub fn rotate_hot_list(&mut self, app: AppId) -> usize {
        let Some(lists) = self.apps.get_mut(&app) else {
            return 0;
        };
        let mut demoted = 0usize;
        while let Some(page) = lists.hot.pop_lru() {
            lists.warm.touch(page);
            demoted += 1;
        }
        self.level_counts[level_index(Hotness::Hot)] -= demoted;
        self.level_counts[level_index(Hotness::Warm)] += demoted;
        self.list_ops += demoted;
        demoted
    }

    /// The application's process was killed: drop all three of its page
    /// lists and take it off the application-level LRU list. Returns how
    /// many pages were being tracked.
    pub fn release_app(&mut self, app: AppId) -> usize {
        let removed = self.apps.remove(&app).map_or(0, |l| {
            self.level_counts[level_index(Hotness::Hot)] -= l.hot.len();
            self.level_counts[level_index(Hotness::Warm)] -= l.warm.len();
            self.level_counts[level_index(Hotness::Cold)] -= l.cold.len();
            l.hot.len() + l.warm.len() + l.cold.len()
        });
        self.app_lru.remove(&app);
        // One bulk list drop per level plus the app-list removal.
        self.list_ops += 4;
        removed
    }

    /// The application was used (brought to the foreground).
    pub fn touch_app(&mut self, app: AppId) {
        self.app_lru.touch(app);
        self.list_ops += 1;
    }

    /// Snapshot of `app`'s hot list (most recently used first).
    #[must_use]
    pub fn hot_list(&self, app: AppId) -> Vec<PageId> {
        self.apps
            .get(&app)
            .map(|l| l.hot.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of pages on each list of `app` (hot, warm, cold).
    #[must_use]
    pub fn list_sizes(&self, app: AppId) -> (usize, usize, usize) {
        self.apps
            .get(&app)
            .map(|l| (l.hot.len(), l.warm.len(), l.cold.len()))
            .unwrap_or((0, 0, 0))
    }

    /// Pick up to `count` reclaim victims.
    ///
    /// Victims are taken cold-first: the cold lists of applications in
    /// least-recently-used order, then warm lists, and hot lists only if
    /// `allow_hot` (the `AL` mode, or the last-resort path). The foreground
    /// application is skipped while any other application still has
    /// reclaimable pages at the same level. Each victim is removed from its
    /// list and returned with the hotness it had.
    pub fn pick_victims(
        &mut self,
        count: usize,
        allow_hot: bool,
        foreground: Option<AppId>,
    ) -> Vec<(PageId, Hotness)> {
        let mut victims = Vec::with_capacity(count);
        let levels: &[Hotness] = if allow_hot {
            &[Hotness::Cold, Hotness::Warm, Hotness::Hot]
        } else {
            &[Hotness::Cold, Hotness::Warm]
        };
        // Applications in LRU order (least recently used first), foreground
        // last.
        let mut app_order: Vec<AppId> = self.app_lru.iter_lru().copied().collect();
        if let Some(fg) = foreground {
            app_order.retain(|a| *a != fg);
            app_order.push(fg);
        }

        for &level in levels {
            for &app in &app_order {
                if victims.len() >= count {
                    break;
                }
                if let Some(lists) = self.apps.get_mut(&app) {
                    let list = lists.list_mut(level);
                    while victims.len() < count {
                        match list.pop_lru() {
                            Some(page) => {
                                victims.push((page, level));
                                self.level_counts[level_index(level)] -= 1;
                                self.list_ops += 1;
                            }
                            None => break,
                        }
                    }
                }
            }
            if victims.len() >= count {
                break;
            }
        }
        victims
    }

    /// Total pages tracked across all lists and applications.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.level_counts.iter().sum()
    }

    /// Pages currently on the given list level, summed over applications.
    #[must_use]
    pub fn pages_at(&self, hotness: Hotness) -> usize {
        self.level_counts[level_index(hotness)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::Pfn;

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    #[test]
    fn new_execution_pages_start_cold_then_warm_on_reuse() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Cold);
        assert_eq!(org.hotness_of(page(1, 0)), Some(Hotness::Cold));
        org.on_execution_access(page(1, 0));
        assert_eq!(org.hotness_of(page(1, 0)), Some(Hotness::Warm));
        // A second execution access keeps it warm (no further promotion).
        org.on_execution_access(page(1, 0));
        assert_eq!(org.hotness_of(page(1, 0)), Some(Hotness::Warm));
    }

    #[test]
    fn relaunch_accesses_promote_to_hot() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Cold);
        org.on_relaunch_access(page(1, 0));
        assert_eq!(org.hotness_of(page(1, 0)), Some(Hotness::Hot));
        assert_eq!(org.list_sizes(AppId::new(1)), (1, 0, 0));
    }

    #[test]
    fn rotate_hot_list_demotes_everything_to_warm() {
        let mut org = HotnessOrg::new();
        for i in 0..5 {
            org.on_relaunch_access(page(1, i));
        }
        assert_eq!(org.list_sizes(AppId::new(1)), (5, 0, 0));
        let demoted = org.rotate_hot_list(AppId::new(1));
        assert_eq!(demoted, 5);
        assert_eq!(org.list_sizes(AppId::new(1)), (0, 5, 0));
        // Rotating an unknown app is a no-op.
        assert_eq!(org.rotate_hot_list(AppId::new(99)), 0);
    }

    #[test]
    fn victims_are_cold_first_from_the_lru_app() {
        let mut org = HotnessOrg::new();
        // App 1 used first (LRU), app 2 used later (MRU).
        org.insert(page(1, 0), Hotness::Cold);
        org.insert(page(1, 1), Hotness::Warm);
        org.insert(page(2, 0), Hotness::Cold);
        org.insert(page(2, 1), Hotness::Hot);

        let victims = org.pick_victims(2, false, None);
        assert_eq!(victims.len(), 2);
        // Cold data of the least-recently-used app (app 1) goes first, then
        // the cold data of app 2.
        assert_eq!(victims[0], (page(1, 0), Hotness::Cold));
        assert_eq!(victims[1], (page(2, 0), Hotness::Cold));
    }

    #[test]
    fn warm_data_is_taken_only_after_all_cold_data() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Cold);
        org.insert(page(1, 1), Hotness::Warm);
        org.insert(page(1, 2), Hotness::Warm);
        let victims = org.pick_victims(3, false, None);
        assert_eq!(victims[0].1, Hotness::Cold);
        assert_eq!(victims[1].1, Hotness::Warm);
        assert_eq!(victims[2].1, Hotness::Warm);
    }

    #[test]
    fn hot_data_is_protected_unless_allowed() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Hot);
        org.insert(page(1, 1), Hotness::Hot);
        assert!(org.pick_victims(2, false, None).is_empty());
        let victims = org.pick_victims(2, true, None);
        assert_eq!(victims.len(), 2);
        assert!(victims.iter().all(|(_, h)| *h == Hotness::Hot));
    }

    #[test]
    fn foreground_app_is_reclaimed_last() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Cold);
        org.insert(page(2, 0), Hotness::Cold);
        // App 2 is foreground: its cold page must be taken after app 1's even
        // though both are cold.
        org.touch_app(AppId::new(1)); // app 1 becomes MRU
        let victims = org.pick_victims(1, false, Some(AppId::new(2)));
        assert_eq!(victims[0].0, page(1, 0));
    }

    #[test]
    fn remove_reports_the_previous_hotness() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Warm);
        assert_eq!(org.remove(page(1, 0)), Some(Hotness::Warm));
        assert_eq!(org.remove(page(1, 0)), None);
        assert_eq!(org.hotness_of(page(1, 0)), None);
    }

    #[test]
    fn counters_track_totals_and_levels() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Hot);
        org.insert(page(1, 1), Hotness::Warm);
        org.insert(page(2, 0), Hotness::Cold);
        assert_eq!(org.total_pages(), 3);
        assert_eq!(org.pages_at(Hotness::Hot), 1);
        assert_eq!(org.pages_at(Hotness::Warm), 1);
        assert_eq!(org.pages_at(Hotness::Cold), 1);
        assert!(org.list_operations() >= 3);
    }

    #[test]
    fn insert_moves_pages_between_lists_without_duplication() {
        let mut org = HotnessOrg::new();
        org.insert(page(1, 0), Hotness::Cold);
        org.insert(page(1, 0), Hotness::Hot);
        assert_eq!(org.total_pages(), 1);
        assert_eq!(org.hotness_of(page(1, 0)), Some(Hotness::Hot));
    }

    #[test]
    fn hot_list_snapshot_is_mru_ordered() {
        let mut org = HotnessOrg::new();
        for i in 0..3 {
            org.on_relaunch_access(page(1, i));
        }
        org.on_relaunch_access(page(1, 0));
        let hot = org.hot_list(AppId::new(1));
        assert_eq!(hot[0], page(1, 0));
        assert_eq!(hot.len(), 3);
    }
}
