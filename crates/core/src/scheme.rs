//! The complete Ariadne swap scheme (§4).
//!
//! [`AriadneScheme`] wires the three techniques together behind the common
//! [`SwapScheme`] interface:
//!
//! 1. reclaim victims come from [`HotnessOrg`] — cold data of the least
//!    recently used application first;
//! 2. victims are compressed by [`AdaptiveComp`]'s rules — large multi-page
//!    chunks for cold data, medium chunks for warm, small chunks for hot;
//! 3. page faults on compressed data trigger [`PreDecompBuffer`]-backed
//!    proactive decompression of the next zpool sector.
//!
//! Compression operates on the real synthetic page bytes (so compression
//! ratios are genuine); latencies come from the calibrated cost models.

use crate::adaptive::{AdaptiveComp, CompressionGroup};
use crate::config::{AriadneConfig, HotListMode};
use crate::hotness::HotnessOrg;
use crate::identification::{IdentificationMetrics, IdentificationTracker};
use crate::predecomp::PreDecompBuffer;
use ariadne_compress::{ChunkSize, CostNanos};
use ariadne_mem::FxHashMap;
use ariadne_mem::{
    AppId, CpuActivity, FlashDevice, Hotness, MainMemory, PageId, PageLocation, ReclaimRequest,
    SimClock, Zpool, ZpoolHandle, PAGE_SIZE,
};
use ariadne_zram::{
    swap_scheme_identity, writeback::charge_fault_io, AccessKind, AccessOutcome, ReclaimOutcome,
    ReleasedFootprint, SchemeContext, SchemeStats, SwapScheme, ZpoolWriteback,
};

/// Metadata remembered for pages sitting in the pre-decompression buffer so
/// they can be re-compressed (at the same size) if they are evicted unused.
#[derive(Debug, Clone, Copy)]
struct BufferedPageMeta {
    compressed_bytes: usize,
    chunk_size: ChunkSize,
    hotness: Hotness,
}

/// The hotness-aware, size-adaptive compressed swap scheme.
///
/// ```
/// use ariadne_core::{AriadneConfig, AriadneScheme};
/// use ariadne_zram::{MemoryConfig, SwapScheme};
///
/// let scheme = AriadneScheme::new(AriadneConfig::al_1k_2k_16k(MemoryConfig::pixel7_scaled(256)));
/// assert_eq!(scheme.name(), "Ariadne-AL-1K-2K-16K");
/// ```
#[derive(Debug)]
pub struct AriadneScheme {
    config: AriadneConfig,
    dram: MainMemory,
    zpool: Zpool,
    flash: FlashDevice,
    org: HotnessOrg,
    adaptive: AdaptiveComp,
    buffer: PreDecompBuffer,
    buffer_meta: FxHashMap<PageId, BufferedPageMeta>,
    tracker: IdentificationTracker,
    foreground: Option<AppId>,
    stats: SchemeStats,
}

impl AriadneScheme {
    /// Create the scheme from an [`AriadneConfig`].
    #[must_use]
    pub fn new(config: AriadneConfig) -> Self {
        let mut dram = MainMemory::new(config.memory.dram_bytes, config.memory.watermarks);
        // The pre-decompression buffer lives in DRAM; reserve its capacity so
        // the memory accounting stays honest.
        let reserve = config.predecomp_buffer_pages * PAGE_SIZE;
        let _ = dram.set_reserved(reserve.min(config.memory.dram_bytes / 2));
        AriadneScheme {
            dram,
            zpool: Zpool::new(config.memory.zpool_bytes),
            flash: FlashDevice::with_io(config.memory.flash_swap_bytes, config.memory.io),
            org: HotnessOrg::new(),
            adaptive: AdaptiveComp::new(config.sizes),
            buffer: PreDecompBuffer::new(config.predecomp_buffer_pages),
            buffer_meta: FxHashMap::default(),
            tracker: IdentificationTracker::new(),
            foreground: None,
            stats: SchemeStats::default(),
            config,
        }
    }

    /// The configuration the scheme was built with.
    #[must_use]
    pub fn config(&self) -> &AriadneConfig {
        &self.config
    }

    /// Hot-data identification quality samples collected so far (Figure 14).
    /// Call after the workload finished; prediction windows whose relaunch
    /// completed are closed on the fly.
    pub fn identification_metrics(&mut self) -> Vec<(AppId, IdentificationMetrics)> {
        self.tracker.close_finished();
        self.tracker.completed().to_vec()
    }

    /// The hotness organization (exposed for inspection in experiments).
    #[must_use]
    pub fn hotness_org(&self) -> &HotnessOrg {
        &self.org
    }

    /// Pre-decompression buffer hit/waste counters.
    #[must_use]
    pub fn predecomp_buffer(&self) -> &PreDecompBuffer {
        &self.buffer
    }

    fn algorithm(&self) -> ariadne_compress::Algorithm {
        self.config.memory.algorithm
    }

    /// Compress one victim group into the zpool. Returns the compression
    /// latency plus any user-visible cost of the cold-group swap-out the
    /// overflow triggered.
    fn compress_group(
        &mut self,
        group: &CompressionGroup,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        // The oracle memoizes the codec run per (pages, algorithm, chunk
        // size): a group evicted, faulted back and evicted again is a hash
        // lookup, not a synthesis + codec pass. Sizes are bit-identical.
        let outcome = ctx.compress_pages(&group.pages, self.algorithm(), group.chunk_size);
        self.stats.record_oracle(&outcome);
        let compressed_len = outcome.compressed_len;
        let cost = ctx.compression_cost(
            self.algorithm(),
            group.chunk_size,
            outcome.original_len,
            clock.now().as_nanos(),
        );

        let writeback_latency = self.make_zpool_room(compressed_len, clock, ctx);
        if self
            .zpool
            .store(
                group.pages.clone(),
                outcome.original_len,
                compressed_len,
                group.chunk_size,
                group.hotness,
            )
            .is_err()
        {
            self.stats.dropped_pages += group.pages.len();
        }
        for page in &group.pages {
            self.dram.remove(*page);
        }

        self.stats.compression_ops += 1;
        self.stats.pages_compressed += group.pages.len();
        self.stats.bytes_before_compression += outcome.original_len;
        self.stats.bytes_after_compression += compressed_len;
        self.stats.compression_time += cost;
        self.stats
            .compression_log
            .extend(group.pages.iter().copied());
        self.stats.cpu.charge(CpuActivity::Compression, cost);
        clock.charge_cpu(CpuActivity::Compression, cost);
        self.stats.zpool = self.zpool.stats();
        cost + writeback_latency
    }

    /// Free zpool space for `incoming_bytes`, preferring to move *cold*
    /// entries out (to flash under the ZSWAP policy, or dropping them). The
    /// victim selection and batched flush live in the shared
    /// [`ZpoolWriteback`] helper; Ariadne's cold-group swap-out rides the
    /// same queued submissions as ZSWAP's headroom flush. Returns the
    /// user-visible latency of the eviction (inline device time under the
    /// synchronous I/O model, queue stalls under the queued one).
    fn make_zpool_room(
        &mut self,
        incoming_bytes: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        ZpoolWriteback {
            zpool: &mut self.zpool,
            flash: &mut self.flash,
            policy: self.config.memory.writeback,
            prefer_cold: true,
            stats: &mut self.stats,
        }
        .make_room(incoming_bytes, clock, ctx)
    }

    /// Reclaim at least `target_pages` pages. When `synchronous` the caller
    /// is waiting (direct reclaim) and the compression latency is returned as
    /// user-visible latency.
    fn do_reclaim(
        &mut self,
        target_pages: usize,
        synchronous: bool,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> (usize, CostNanos) {
        let allow_hot = self.config.mode == HotListMode::AllLists;
        let mut victims = self
            .org
            .pick_victims(target_pages, allow_hot, self.foreground);
        if victims.is_empty() && !allow_hot {
            // Last resort (§4.2): if absolutely necessary, hot data is
            // compressed too — with the small chunk size, so the penalty on a
            // later relaunch stays limited.
            victims = self.org.pick_victims(target_pages, true, self.foreground);
        }
        if victims.is_empty() {
            return (0, CostNanos::zero());
        }

        let scan = ctx.timing.reclaim_scan(victims.len());
        clock.charge_cpu(CpuActivity::ReclaimScan, scan);
        self.stats.cpu.charge(CpuActivity::ReclaimScan, scan);
        let list_cpu = ctx.timing.lru_ops(victims.len());
        clock.charge_cpu(CpuActivity::ListMaintenance, list_cpu);
        self.stats
            .cpu
            .charge(CpuActivity::ListMaintenance, list_cpu);

        let reclaimed = victims.len();
        let mut latency = CostNanos::zero();
        let groups = self.adaptive.group_victims(&victims);
        for group in &groups {
            let cost = self.compress_group(group, clock, ctx);
            if synchronous {
                latency += cost;
                clock.advance(cost);
            }
        }
        (reclaimed, latency)
    }

    /// Ensure there is room for `pages` more resident pages, via direct
    /// reclaim if needed. Returns the user-visible latency incurred.
    fn make_room_for(
        &mut self,
        pages: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        let mut latency = CostNanos::zero();
        while self.dram.free_bytes() < pages * PAGE_SIZE {
            let needed = (pages * PAGE_SIZE - self.dram.free_bytes()).div_ceil(PAGE_SIZE);
            let (reclaimed, cost) = self.do_reclaim(needed, true, clock, ctx);
            latency += cost;
            if reclaimed == 0 {
                break;
            }
        }
        latency
    }

    /// Decompress the zpool entry behind `handle` and make its pages
    /// resident. Returns (latency, pages, hotness, sector).
    fn fault_in_entry(
        &mut self,
        handle: ZpoolHandle,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> (CostNanos, Vec<PageId>, Hotness) {
        let entry = self.zpool.remove(handle).expect("entry is live");
        let mut latency = self.make_room_for(entry.pages.len(), clock, ctx);
        let cost = ctx.decompression_cost(
            self.algorithm(),
            entry.chunk_size,
            entry.original_bytes,
            clock.now().as_nanos(),
        );
        latency += cost;
        self.stats.decompression_ops += 1;
        self.stats.pages_decompressed += entry.pages.len();
        self.stats.decompression_time += cost;
        self.stats.cpu.charge(CpuActivity::Decompression, cost);
        clock.charge_cpu(CpuActivity::Decompression, cost);
        self.stats.swapin_sector_trace.push(entry.sector.value());
        self.stats.zpool = self.zpool.stats();

        // Proactive decompression: also decompress the entry at the next
        // sector (one page look-ahead, Insight 3) into the buffer. Its cost
        // is CPU work but not user-visible latency — that is the point.
        if self.config.predecomp_enabled {
            self.pre_decompress_next(entry.sector, clock, ctx);
        }

        for page in &entry.pages {
            let _ = self.dram.insert(*page);
        }
        (latency, entry.pages, entry.hotness)
    }

    /// Speculatively decompress the single-page entry following `sector`.
    fn pre_decompress_next(
        &mut self,
        sector: ariadne_mem::ZpoolSector,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) {
        let candidate = self
            .zpool
            .next_by_sector(sector)
            .filter(|(_, e)| e.pages.len() == 1)
            .map(|(h, _)| h);
        let Some(handle) = candidate else { return };
        let entry = self.zpool.remove(handle).expect("candidate handle is live");
        let cost = ctx.decompression_cost(
            self.algorithm(),
            entry.chunk_size,
            entry.original_bytes,
            clock.now().as_nanos(),
        );
        self.stats.decompression_ops += 1;
        self.stats.pages_decompressed += 1;
        self.stats.decompression_time += cost;
        self.stats.cpu.charge(CpuActivity::Decompression, cost);
        clock.charge_cpu(CpuActivity::Decompression, cost);
        self.stats.zpool = self.zpool.stats();

        let page = entry.pages[0];
        self.buffer_meta.insert(
            page,
            BufferedPageMeta {
                compressed_bytes: entry.compressed_bytes,
                chunk_size: entry.chunk_size,
                hotness: entry.hotness,
            },
        );
        if let Some(evicted) = self.buffer.insert(page) {
            self.recompress_buffered(evicted, clock, ctx);
            self.stats.predecomp_wasted = self.buffer.wasted();
        }
    }

    /// A page evicted unused from the pre-decompression buffer is compressed
    /// back into the zpool (same size as before; the CPU pays again).
    fn recompress_buffered(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext) {
        let Some(meta) = self.buffer_meta.remove(&page) else {
            return;
        };
        let cost = ctx.compression_cost(
            self.algorithm(),
            meta.chunk_size,
            PAGE_SIZE,
            clock.now().as_nanos(),
        );
        self.stats.compression_ops += 1;
        self.stats.pages_compressed += 1;
        self.stats.bytes_before_compression += PAGE_SIZE;
        self.stats.bytes_after_compression += meta.compressed_bytes;
        self.stats.compression_time += cost;
        self.stats.cpu.charge(CpuActivity::Compression, cost);
        clock.charge_cpu(CpuActivity::Compression, cost);
        // Background work: any writeback the overflow triggers is queued
        // (or, under the sync model, paid by the background recompression
        // itself), never user-visible here.
        let _ = self.make_zpool_room(meta.compressed_bytes, clock, ctx);
        if self
            .zpool
            .store(
                vec![page],
                PAGE_SIZE,
                meta.compressed_bytes,
                meta.chunk_size,
                meta.hotness,
            )
            .is_err()
        {
            self.stats.dropped_pages += 1;
        }
        self.stats.zpool = self.zpool.stats();
    }

    /// Up to `limit` hot-labelled single-page zpool entries, oldest (lowest
    /// sector) first — the candidates for a deferred pre-decompression
    /// refill, served straight from the pool's hot-single sector index.
    fn hot_refill_candidates(&self, limit: usize) -> Vec<ZpoolHandle> {
        self.zpool.hot_single_oldest(limit)
    }

    /// Update hotness organization and identification tracking for an access.
    fn note_access(&mut self, page: PageId, kind: AccessKind) {
        match kind {
            AccessKind::Launch | AccessKind::Relaunch => {
                self.org.on_relaunch_access(page);
                if kind == AccessKind::Relaunch {
                    self.tracker.on_relaunch_access(page.app(), page);
                }
            }
            AccessKind::Execution => {
                self.org.on_execution_access(page);
                self.tracker.on_execution_access(page.app(), page);
            }
        }
    }
}

impl SwapScheme for AriadneScheme {
    swap_scheme_identity!();

    fn name(&self) -> String {
        self.config.scheme_name()
    }

    fn attach_trace(&mut self, trace: &ariadne_obs::TraceHandle) {
        self.flash.set_trace(trace);
    }

    fn register_page(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext) {
        if self.dram.contains(page) {
            return;
        }
        let _ = self.make_room_for(1, clock, ctx);
        if self.dram.insert(page).is_ok() {
            // New anonymous data generated during execution starts cold
            // (§4.2, hotness initialization); launch accesses promote it.
            self.org.insert(page, Hotness::Cold);
            let list_cpu = ctx.timing.lru_ops(1);
            clock.charge_cpu(CpuActivity::ListMaintenance, list_cpu);
            self.stats
                .cpu
                .charge(CpuActivity::ListMaintenance, list_cpu);
        }
    }

    fn access(
        &mut self,
        page: PageId,
        kind: AccessKind,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> AccessOutcome {
        // Fast path: already resident.
        if self.dram.contains(page) {
            self.note_access(page, kind);
            let latency = ctx.timing.dram_access(1);
            clock.advance(latency);
            return AccessOutcome {
                latency,
                found_in: PageLocation::Dram,
                io_stall: CostNanos::zero(),
            };
        }

        // Pre-decompression buffer hit: the data is already uncompressed.
        if self.buffer.take(page) {
            self.buffer_meta.remove(&page);
            self.stats.predecomp_hits = self.buffer.hits();
            let mut latency = self.make_room_for(1, clock, ctx);
            let _ = self.dram.insert(page);
            self.note_access(page, kind);
            latency += ctx.timing.dram_copy(1) + ctx.timing.dram_access(1);
            clock.advance(latency);
            return AccessOutcome {
                latency,
                found_in: PageLocation::PreDecompBuffer,
                io_stall: CostNanos::zero(),
            };
        }

        let mut latency = ctx.timing.page_fault();
        let mut io_stall = CostNanos::zero();
        let found_in;

        if let Some(handle) = self.zpool.handle_for(page) {
            found_in = PageLocation::Zpool;
            let (fault_latency, pages, hotness) = self.fault_in_entry(handle, clock, ctx);
            latency += fault_latency;
            // Sibling pages decompressed alongside the requested one keep
            // their previous hotness; the requested page is classified by the
            // access that brought it in.
            for sibling in pages.iter().filter(|p| **p != page) {
                self.org.insert(*sibling, hotness);
            }
            self.note_access(page, kind);
        } else if let Some(slot) = self.flash.slot_for(page) {
            found_in = PageLocation::Flash;
            let fault = self
                .flash
                .fault_in(slot, clock.now().as_nanos())
                .expect("slot was just looked up");
            let room = self.make_room_for(fault.pages.len(), clock, ctx);
            latency += room;
            // The direct reclaim above ran while the in-flight command (or
            // the sync busy window) kept draining, so only the stall
            // remainder beyond it is charged (`overlapped`).
            let (io_latency, stall) = charge_fault_io(&fault, room, &mut self.stats, clock, ctx);
            latency += io_latency;
            io_stall = stall;
            if fault.compressed {
                // Cold data is compressed with the large chunk size before it
                // is written back, so this is the slow path Ariadne tries to
                // make rare.
                let cost = ctx.decompression_cost(
                    self.algorithm(),
                    self.adaptive.chunk_size_for(Hotness::Cold),
                    fault.original_bytes,
                    clock.now().as_nanos(),
                );
                latency += cost;
                self.stats.decompression_ops += 1;
                self.stats.pages_decompressed += fault.pages.len();
                self.stats.decompression_time += cost;
                self.stats.cpu.charge(CpuActivity::Decompression, cost);
                clock.charge_cpu(CpuActivity::Decompression, cost);
            }
            self.stats.flash = self.flash.stats();
            self.stats.swapin_sector_trace.push(slot.value());
            for p in &fault.pages {
                let _ = self.dram.insert(*p);
                if *p != page {
                    self.org.insert(*p, Hotness::Cold);
                }
            }
            self.note_access(page, kind);
        } else {
            found_in = PageLocation::Absent;
            latency += self.make_room_for(1, clock, ctx);
            latency += ctx.timing.dram_copy(1);
            self.stats.dropped_pages += 1;
            let _ = self.dram.insert(page);
            self.note_access(page, kind);
        }

        latency += ctx.timing.dram_access(1);
        clock.advance(latency);
        AccessOutcome {
            latency,
            found_in,
            io_stall,
        }
    }

    fn reclaim(
        &mut self,
        request: ReclaimRequest,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        let (reclaimed, _) = self.do_reclaim(request.target_pages, false, clock, ctx);
        ReclaimOutcome {
            pages_reclaimed: reclaimed,
            bytes_freed: reclaimed * PAGE_SIZE,
        }
    }

    fn on_foreground(&mut self, app: AppId) {
        self.foreground = Some(app);
        self.org.touch_app(app);
    }

    fn on_background(&mut self, app: AppId) {
        if self.foreground == Some(app) {
            self.foreground = None;
        }
    }

    fn on_relaunch_start(&mut self, app: AppId) {
        // The hot list right now is the prediction for this relaunch.
        let predicted = self.org.hot_list(app);
        self.tracker.on_relaunch_start(app, predicted);
        // Rotate: the previous relaunch's hot data becomes warm; the accesses
        // of this relaunch will rebuild the hot list (§4.2, hotness update).
        self.org.rotate_hot_list(app);
        self.org.touch_app(app);
        self.foreground = Some(app);
    }

    fn on_relaunch_end(&mut self, app: AppId) {
        self.tracker.on_relaunch_end(app);
    }

    fn deferred_pages(&self) -> usize {
        // Deferred work for Ariadne is refilling the pre-decompression
        // buffer with compressed *hot* data, so the next relaunch finds it
        // already uncompressed (the asynchronous generalization of the
        // one-sector look-ahead of §4.3).
        if !self.config.predecomp_enabled {
            return 0;
        }
        let room = self.buffer.capacity().saturating_sub(self.buffer.len());
        if room == 0 {
            return 0;
        }
        // The engine only needs to know how much work fits in the buffer;
        // the pool maintains the hot-single count incrementally.
        self.zpool.hot_single_count().min(room)
    }

    fn drain_deferred(
        &mut self,
        budget: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> usize {
        if !self.config.predecomp_enabled {
            return 0;
        }
        let room = self.buffer.capacity().saturating_sub(self.buffer.len());
        let candidates = self.hot_refill_candidates(budget.min(room));
        let mut refilled = 0usize;
        for handle in candidates {
            if self.buffer.len() >= self.buffer.capacity() {
                break;
            }
            let entry = self.zpool.remove(handle).expect("candidate handle is live");
            let cost = ctx.decompression_cost(
                self.algorithm(),
                entry.chunk_size,
                entry.original_bytes,
                clock.now().as_nanos(),
            );
            // Background CPU work: charged to the ledger, never user-visible.
            self.stats.decompression_ops += 1;
            self.stats.pages_decompressed += 1;
            self.stats.decompression_time += cost;
            self.stats.cpu.charge(CpuActivity::Decompression, cost);
            clock.charge_cpu(CpuActivity::Decompression, cost);

            let page = entry.pages[0];
            self.buffer_meta.insert(
                page,
                BufferedPageMeta {
                    compressed_bytes: entry.compressed_bytes,
                    chunk_size: entry.chunk_size,
                    hotness: entry.hotness,
                },
            );
            if let Some(evicted) = self.buffer.insert(page) {
                self.recompress_buffered(evicted, clock, ctx);
                self.stats.predecomp_wasted = self.buffer.wasted();
            }
            refilled += 1;
        }
        self.stats.zpool = self.zpool.stats();
        refilled
    }

    fn release_app(
        &mut self,
        app: AppId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReleasedFootprint {
        let evicted = self.dram.evict_app(app);
        // Purge the scheme-private caches first: the hotness lists stop
        // naming the app, buffered pre-decompressed pages are dropped (and
        // counted as wasted work), and the app's open identification window
        // is discarded — an interrupted relaunch is not a fair sample.
        let tracked = self.org.release_app(app);
        let buffered = self.buffer.release_app(app);
        for page in &buffered {
            self.buffer_meta.remove(page);
        }
        self.stats.predecomp_wasted = self.buffer.wasted();
        self.tracker.discard(app);

        let (zpool_entries, zpool_pages) = self.zpool.release_app(app);
        let (flash_slots, flash_pages) = self.flash.release_app(app, clock.now().as_nanos());
        self.stats.zpool = self.zpool.stats();
        self.stats.flash = self.flash.stats();
        let cost = ctx
            .timing
            .lru_ops(tracked.max(evicted.len()) + zpool_pages + flash_pages);
        clock.charge_cpu(CpuActivity::ListMaintenance, cost);
        self.stats.cpu.charge(CpuActivity::ListMaintenance, cost);
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        ReleasedFootprint {
            dram_pages: evicted.len(),
            zpool_entries,
            zpool_pages,
            flash_slots,
            flash_pages,
            buffered_pages: buffered.len(),
        }
    }

    fn leak_check(&self) -> Result<(), String> {
        self.flash.leak_check()
    }

    fn next_io_completion(&self) -> Option<u128> {
        self.flash.next_completion()
    }

    fn complete_io(&mut self, now_nanos: u128) -> usize {
        self.flash.retire_completed(now_nanos)
    }

    fn location_of(&self, page: PageId) -> PageLocation {
        if self.dram.contains(page) {
            PageLocation::Dram
        } else if self.buffer.contains(page) {
            PageLocation::PreDecompBuffer
        } else if self.zpool.contains(page) {
            PageLocation::Zpool
        } else if self.flash.contains(page) {
            PageLocation::Flash
        } else {
            PageLocation::Absent
        }
    }

    fn dram(&self) -> &MainMemory {
        &self.dram
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SizeConfig;
    use ariadne_mem::reclaim::ReclaimReason;
    use ariadne_mem::Watermarks;
    use ariadne_trace::{AppName, WorkloadBuilder};
    use ariadne_zram::{MemoryConfig, WritebackPolicy};

    fn tiny_memory(dram_pages: usize, zpool_pages: usize) -> MemoryConfig {
        let dram = dram_pages * PAGE_SIZE;
        MemoryConfig {
            dram_bytes: dram,
            zpool_bytes: zpool_pages * PAGE_SIZE,
            flash_swap_bytes: 4096 * PAGE_SIZE,
            watermarks: Watermarks::new(dram / 8, dram / 4).unwrap(),
            ..MemoryConfig::pixel7_scaled(1024)
        }
    }

    fn setup(config: AriadneConfig) -> (AriadneScheme, SchemeContext, SimClock, Vec<PageId>) {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        (AriadneScheme::new(config), ctx, SimClock::new(), pages)
    }

    fn request(pages: usize) -> ReclaimRequest {
        ReclaimRequest {
            target_pages: pages,
            reason: ReclaimReason::LowWatermark,
        }
    }

    #[test]
    fn launch_accesses_build_the_hot_list() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        let app = pages[0].app();
        let (hot, _, cold) = scheme.hotness_org().list_sizes(app);
        assert_eq!(hot, 10);
        assert_eq!(cold, 10);
    }

    #[test]
    fn reclaim_takes_cold_pages_and_uses_large_chunks() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // Pages 0..10 become hot; the rest stay cold.
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        let outcome = scheme.reclaim(request(8), &mut clock, &ctx);
        assert_eq!(outcome.pages_reclaimed, 8);
        // Hot pages survived in DRAM; cold pages were compressed.
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Dram);
        assert!(scheme
            .stats()
            .compression_log
            .iter()
            .all(|p| !pages[..10].contains(p)));
        // Cold data was grouped: 8 pages with 16K chunks -> 2 entries of 4 pages.
        assert_eq!(scheme.stats().compression_ops, 2);
        assert_eq!(scheme.stats().pages_compressed, 8);
    }

    #[test]
    fn ehl_keeps_hot_data_uncompressed_until_last_resort() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(10) {
            scheme.register_page(page, &mut clock, &ctx);
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        // Everything is hot; a normal reclaim pass in EHL mode still works
        // via the last-resort path but only when nothing else is available.
        let outcome = scheme.reclaim(request(2), &mut clock, &ctx);
        assert_eq!(outcome.pages_reclaimed, 2);
        // Small chunk size was used for the hot victims.
        let entry_sizes: Vec<usize> = scheme.stats().compression_log.iter().map(|_| 1).collect();
        assert_eq!(entry_sizes.len(), 2);
    }

    #[test]
    fn faulting_cold_data_decompresses_the_whole_group() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024)).without_predecomp();
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(request(8), &mut clock, &ctx);
        let compressed = scheme.stats().compression_log.clone();
        let target = compressed[0];
        let outcome = scheme.access(target, AccessKind::Execution, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Zpool);
        // The other pages of the same 16K group came back to DRAM too.
        let resident_siblings = compressed[..4]
            .iter()
            .filter(|p| scheme.location_of(**p) == PageLocation::Dram)
            .count();
        assert_eq!(resident_siblings, 4);
    }

    #[test]
    fn predecomp_hits_avoid_decompression_latency() {
        let sizes = SizeConfig::new(ChunkSize::k1(), ChunkSize::k2(), ChunkSize::k4());
        let config = AriadneConfig::new(sizes, HotListMode::AllLists, tiny_memory(4096, 1024))
            .with_predecomp_buffer(4);
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // Warm them so they are compressed as single-page entries (required
        // for the one-page look-ahead).
        for &page in pages.iter().take(40) {
            scheme.access(page, AccessKind::Execution, &mut clock, &ctx);
        }
        scheme.reclaim(request(16), &mut clock, &ctx);
        let compressed = scheme.stats().compression_log.clone();
        assert!(compressed.len() >= 2);

        // Fault the first compressed page: its zpool-sector neighbour should
        // be pre-decompressed into the buffer.
        let first = compressed[0];
        let second = compressed[1];
        scheme.access(first, AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(scheme.location_of(second), PageLocation::PreDecompBuffer);

        // Accessing the neighbour is now a buffer hit with near-DRAM latency.
        let outcome = scheme.access(second, AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::PreDecompBuffer);
        assert_eq!(scheme.stats().predecomp_hits, 1);
        let decomp = ctx.latency.decompression_cost(
            ariadne_compress::Algorithm::Lzo,
            ChunkSize::k2(),
            PAGE_SIZE,
        );
        assert!(outcome.latency < decomp + ctx.timing.page_fault());
    }

    #[test]
    fn direct_reclaim_cost_appears_on_the_fault_path() {
        let config = AriadneConfig::al_1k_2k_16k(tiny_memory(16, 1024)).without_predecomp();
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        // Fill DRAM beyond capacity so every further touch forces reclaim.
        for &page in pages.iter().take(30) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        assert!(scheme.stats().compression_ops > 0);
        let compressed = scheme.stats().compression_log[0];
        let outcome = scheme.access(compressed, AccessKind::Relaunch, &mut clock, &ctx);
        assert!(outcome.latency > ctx.timing.dram_access(1));
    }

    #[test]
    fn identification_metrics_reflect_hot_list_quality() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        let app = pages[0].app();
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // First relaunch touches pages 0..10.
        scheme.on_relaunch_start(app);
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Relaunch, &mut clock, &ctx);
        }
        scheme.on_relaunch_end(app);
        // Second relaunch touches pages 0..8 (80 % overlap).
        scheme.on_relaunch_start(app);
        for &page in pages.iter().take(8) {
            scheme.access(page, AccessKind::Relaunch, &mut clock, &ctx);
        }
        scheme.on_relaunch_end(app);

        let metrics = scheme.identification_metrics();
        // The first window has an empty prediction (nothing was hot yet); the
        // second window predicted pages 0..10 and saw 0..8 used.
        let last = metrics.last().unwrap().1;
        assert!((last.coverage - 1.0).abs() < 1e-9);
        assert!((last.accuracy - 0.8).abs() < 1e-9);
    }

    #[test]
    fn stats_expose_real_compression_ratios() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(64) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(request(32), &mut clock, &ctx);
        let ratio = scheme.stats().compression_ratio();
        assert!(ratio > 1.2 && ratio < 30.0, "ratio {ratio}");
    }

    #[test]
    fn zswap_writeback_sends_cold_overflow_to_flash() {
        let memory = tiny_memory(4096, 4).with_writeback(WritebackPolicy::WritebackToFlash);
        let config = AriadneConfig::ehl_1k_2k_16k(memory);
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(64) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(request(48), &mut clock, &ctx);
        assert!(scheme.stats().flash.writes > 0);
        // Writeback preserved the data: nothing was dropped, and a page that
        // went to flash can still be faulted back in.
        assert_eq!(scheme.stats().dropped_pages, 0);
        let written_back = pages
            .iter()
            .take(64)
            .find(|&&p| scheme.location_of(p) == PageLocation::Flash)
            .copied()
            .expect("some page was written back to flash");
        let outcome = scheme.access(written_back, AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Flash);
        assert_eq!(scheme.location_of(written_back), PageLocation::Dram);
    }

    #[test]
    fn drain_refills_the_predecomp_buffer_with_hot_data() {
        let sizes = SizeConfig::new(ChunkSize::k1(), ChunkSize::k2(), ChunkSize::k16());
        let config = AriadneConfig::new(sizes, HotListMode::AllLists, tiny_memory(4096, 1024))
            .with_predecomp_buffer(4);
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        // Compress everything, hot data included (AL mode allows it).
        scheme.reclaim(request(40), &mut clock, &ctx);
        let deferred = scheme.deferred_pages();
        assert!(deferred > 0, "hot compressed entries should be drainable");

        let drained = scheme.drain_deferred(4, &mut clock, &ctx);
        assert!(drained > 0 && drained <= 4);
        // A drained page is served from the buffer with no fault latency.
        let buffered = pages
            .iter()
            .take(10)
            .find(|&&p| scheme.location_of(p) == PageLocation::PreDecompBuffer)
            .copied()
            .expect("a hot page was pre-decompressed into the buffer");
        let outcome = scheme.access(buffered, AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::PreDecompBuffer);
    }

    #[test]
    fn drain_is_disabled_without_predecomp() {
        let config = AriadneConfig::al_1k_2k_16k(tiny_memory(4096, 1024)).without_predecomp();
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        scheme.reclaim(request(20), &mut clock, &ctx);
        assert_eq!(scheme.deferred_pages(), 0);
        assert_eq!(scheme.drain_deferred(8, &mut clock, &ctx), 0);
    }

    #[test]
    fn release_app_purges_every_tier_including_hotness_and_buffer() {
        let sizes = SizeConfig::new(ChunkSize::k1(), ChunkSize::k2(), ChunkSize::k16());
        let memory = tiny_memory(4096, 8).with_writeback(WritebackPolicy::WritebackToFlash);
        let config =
            AriadneConfig::new(sizes, HotListMode::AllLists, memory).with_predecomp_buffer(4);
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        let app = pages[0].app();
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Launch, &mut clock, &ctx);
        }
        // Compress (hot included), overflowing the tiny pool to flash, then
        // refill the pre-decompression buffer, and fault a few pages back so
        // every tier — DRAM, hotness lists, buffer, zpool, flash — holds
        // data of the app at kill time.
        scheme.reclaim(request(40), &mut clock, &ctx);
        scheme.drain_deferred(4, &mut clock, &ctx);
        for &page in pages.iter().skip(20).take(4) {
            scheme.access(page, AccessKind::Execution, &mut clock, &ctx);
        }
        assert!(scheme.stats().flash.writes > 0);
        assert!(!scheme.predecomp_buffer().is_empty());
        assert!(scheme.hotness_org().total_pages() > 0);

        let footprint = scheme.release_app(app, &mut clock, &ctx);
        assert!(footprint.total_pages() > 0);
        assert!(footprint.buffered_pages > 0);
        for &page in pages.iter().take(40) {
            assert_eq!(scheme.location_of(page), PageLocation::Absent);
        }
        assert_eq!(scheme.hotness_org().total_pages(), 0);
        assert!(scheme.predecomp_buffer().is_empty());
        scheme.leak_check().unwrap();
        assert!(scheme.release_app(app, &mut clock, &ctx).is_empty());
    }

    #[test]
    fn release_app_with_in_flight_cold_swap_out_stays_leak_free() {
        let memory = tiny_memory(4096, 4).with_writeback(WritebackPolicy::WritebackToFlash);
        let config = AriadneConfig::ehl_1k_2k_16k(memory);
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        for &page in pages.iter().take(64) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(request(48), &mut clock, &ctx);
        assert!(
            scheme.next_io_completion().is_some(),
            "cold-group swap-out should still be in flight"
        );
        scheme.release_app(pages[0].app(), &mut clock, &ctx);
        scheme.leak_check().unwrap();
        while let Some(at) = scheme.next_io_completion() {
            scheme.complete_io(at);
        }
        scheme.leak_check().unwrap();
    }

    #[test]
    fn absent_pages_still_become_resident() {
        let config = AriadneConfig::ehl_1k_2k_16k(tiny_memory(4096, 1024));
        let (mut scheme, ctx, mut clock, pages) = setup(config);
        let outcome = scheme.access(pages[0], AccessKind::Execution, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Absent);
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Dram);
    }
}
