//! Ariadne: a hotness-aware and size-adaptive compressed swap scheme.
//!
//! This crate implements the paper's contribution (HPCA 2025) as a
//! [`SwapScheme`](ariadne_zram::SwapScheme) that plugs into the same
//! simulator as the baselines:
//!
//! * [`HotnessOrg`] (§4.2) — low-overhead hotness-aware data organization:
//!   every application's anonymous pages live on three LRU lists (hot, warm,
//!   cold) instead of the kernel's two, applications themselves are kept on
//!   an LRU list, and reclaim victims are taken cold-first from the least
//!   recently used application.
//! * [`AdaptiveComp`] (§4.3) — size-adaptive compression: cold data is
//!   compressed in large multi-page chunks (high ratio, slow decompression
//!   that will rarely be paid), warm data in medium chunks and hot data — if
//!   it must be compressed at all — in small sub-page chunks so relaunch
//!   decompression is fast.
//! * [`PreDecompBuffer`] (§4.4) — proactive decompression: when a compressed
//!   page is faulted in, the entry at the next zpool sector is speculatively
//!   decompressed into a small FIFO buffer, hiding decompression latency for
//!   the sequential swap-in streams of Table 3.
//!
//! The top-level type is [`AriadneScheme`]; [`AriadneConfig`] selects the
//! chunk-size triple (the paper's `SmallSize-MediumSize-LargeSize` notation)
//! and whether the hot list is excluded from compression (`EHL`) or not
//! (`AL`).
//!
//! ```
//! use ariadne_core::{AriadneConfig, AriadneScheme};
//! use ariadne_zram::{MemoryConfig, SwapScheme};
//!
//! let config = AriadneConfig::ehl_1k_2k_16k(MemoryConfig::pixel7_scaled(256));
//! let scheme = AriadneScheme::new(config);
//! assert_eq!(scheme.name(), "Ariadne-EHL-1K-2K-16K");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod hotness;
pub mod identification;
pub mod predecomp;
pub mod scheme;

pub use adaptive::AdaptiveComp;
pub use config::{AriadneConfig, HotListMode, SizeConfig};
pub use hotness::HotnessOrg;
pub use identification::{IdentificationMetrics, IdentificationTracker};
pub use predecomp::PreDecompBuffer;
pub use scheme::AriadneScheme;
