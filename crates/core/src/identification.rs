//! Coverage and accuracy of hot-data identification (Figure 14).
//!
//! The paper scores HotnessOrg's prediction quality with two metrics:
//!
//! * **Coverage** — the fraction of the data actually used during a relaunch
//!   that Ariadne had identified as hot beforehand (i.e. was on the hot
//!   list when the relaunch started). Missed pages were compressed with
//!   larger chunks and pay extra decompression latency.
//! * **Accuracy** — the fraction of the data on the hot list that really is
//!   used again, either during the relaunch or during the execution that
//!   follows (until the next relaunch). Inaccurate entries waste the DRAM
//!   that keeping them uncompressed costs.
//!
//! [`IdentificationTracker`] snapshots the hot list when a relaunch starts,
//! records which pages get used afterwards, and emits one
//! [`IdentificationMetrics`] sample per completed prediction window.

use ariadne_mem::{AppId, PageId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Coverage and accuracy of one prediction window (one relaunch-to-relaunch
/// interval of one application).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdentificationMetrics {
    /// Fraction of relaunch-used pages that had been predicted hot.
    pub coverage: f64,
    /// Fraction of predicted-hot pages that were used before the next
    /// relaunch.
    pub accuracy: f64,
    /// Number of pages in the prediction (hot list size at relaunch start).
    pub predicted_pages: usize,
    /// Number of pages actually touched by the relaunch.
    pub relaunch_pages: usize,
}

#[derive(Debug, Clone, Default)]
struct Window {
    predicted: HashSet<PageId>,
    relaunch_used: HashSet<PageId>,
    used_since: HashSet<PageId>,
    relaunch_done: bool,
}

/// Tracks prediction windows per application.
#[derive(Debug, Clone, Default)]
pub struct IdentificationTracker {
    windows: HashMap<AppId, Window>,
    completed: Vec<(AppId, IdentificationMetrics)>,
}

impl IdentificationTracker {
    /// Create an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        IdentificationTracker::default()
    }

    /// A relaunch of `app` is starting and `predicted_hot` is the hot list at
    /// this moment. Closes the previous window for the app (if any) and
    /// opens a new one.
    pub fn on_relaunch_start(&mut self, app: AppId, predicted_hot: Vec<PageId>) {
        if let Some(window) = self.windows.remove(&app) {
            if window.relaunch_done {
                self.completed.push((app, Self::score(&window)));
            }
        }
        self.windows.insert(
            app,
            Window {
                predicted: predicted_hot.into_iter().collect(),
                ..Window::default()
            },
        );
    }

    /// A page of `app` was accessed during its relaunch.
    pub fn on_relaunch_access(&mut self, app: AppId, page: PageId) {
        if let Some(window) = self.windows.get_mut(&app) {
            window.relaunch_used.insert(page);
            window.used_since.insert(page);
        }
    }

    /// The relaunch of `app` finished (subsequent accesses count toward
    /// accuracy but not coverage).
    pub fn on_relaunch_end(&mut self, app: AppId) {
        if let Some(window) = self.windows.get_mut(&app) {
            window.relaunch_done = true;
        }
    }

    /// A page of `app` was accessed during ordinary execution.
    pub fn on_execution_access(&mut self, app: AppId, page: PageId) {
        if let Some(window) = self.windows.get_mut(&app) {
            window.used_since.insert(page);
        }
    }

    /// Close every open window and return all completed samples.
    #[must_use]
    pub fn finish(mut self) -> Vec<(AppId, IdentificationMetrics)> {
        let windows = std::mem::take(&mut self.windows);
        for (app, window) in windows {
            if window.relaunch_done {
                self.completed.push((app, Self::score(&window)));
            }
        }
        self.completed
    }

    /// Samples completed so far (windows closed by a subsequent relaunch).
    #[must_use]
    pub fn completed(&self) -> &[(AppId, IdentificationMetrics)] {
        &self.completed
    }

    /// Drop the open prediction window of `app` without recording a sample
    /// (the process was killed mid-window; an interrupted relaunch is not a
    /// fair identification sample).
    pub fn discard(&mut self, app: AppId) {
        self.windows.remove(&app);
    }

    /// Score every window whose relaunch already finished and move it to the
    /// completed list, without waiting for the next relaunch. Used at the end
    /// of an experiment so the final prediction window is not lost.
    pub fn close_finished(&mut self) {
        let finished: Vec<AppId> = self
            .windows
            .iter()
            .filter(|(_, w)| w.relaunch_done)
            .map(|(app, _)| *app)
            .collect();
        for app in finished {
            if let Some(window) = self.windows.remove(&app) {
                self.completed.push((app, Self::score(&window)));
            }
        }
    }

    fn score(window: &Window) -> IdentificationMetrics {
        let coverage = if window.relaunch_used.is_empty() {
            1.0
        } else {
            window
                .relaunch_used
                .iter()
                .filter(|p| window.predicted.contains(p))
                .count() as f64
                / window.relaunch_used.len() as f64
        };
        let accuracy = if window.predicted.is_empty() {
            1.0
        } else {
            window
                .predicted
                .iter()
                .filter(|p| window.used_since.contains(p))
                .count() as f64
                / window.predicted.len() as f64
        };
        IdentificationMetrics {
            coverage,
            accuracy,
            predicted_pages: window.predicted.len(),
            relaunch_pages: window.relaunch_used.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::Pfn;

    fn page(pfn: u64) -> PageId {
        PageId::new(AppId::new(1), Pfn::new(pfn))
    }
    const APP: AppId = AppId::new(1);

    #[test]
    fn perfect_prediction_scores_one() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_start(APP, vec![page(0), page(1)]);
        tracker.on_relaunch_access(APP, page(0));
        tracker.on_relaunch_access(APP, page(1));
        tracker.on_relaunch_end(APP);
        let samples = tracker.finish();
        assert_eq!(samples.len(), 1);
        let metrics = samples[0].1;
        assert!((metrics.coverage - 1.0).abs() < 1e-12);
        assert!((metrics.accuracy - 1.0).abs() < 1e-12);
        assert_eq!(metrics.predicted_pages, 2);
        assert_eq!(metrics.relaunch_pages, 2);
    }

    #[test]
    fn coverage_penalises_missed_relaunch_pages() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_start(APP, vec![page(0)]);
        tracker.on_relaunch_access(APP, page(0));
        tracker.on_relaunch_access(APP, page(5)); // not predicted
        tracker.on_relaunch_end(APP);
        let metrics = tracker.finish()[0].1;
        assert!((metrics.coverage - 0.5).abs() < 1e-12);
        assert!((metrics.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_penalises_unused_hot_pages_but_counts_execution_reuse() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_start(APP, vec![page(0), page(1), page(2), page(3)]);
        tracker.on_relaunch_access(APP, page(0));
        tracker.on_relaunch_end(APP);
        // Page 1 is used later during execution: still accurate.
        tracker.on_execution_access(APP, page(1));
        let metrics = tracker.finish()[0].1;
        assert!((metrics.accuracy - 0.5).abs() < 1e-12);
        assert!((metrics.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_close_when_the_next_relaunch_starts() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_start(APP, vec![page(0)]);
        tracker.on_relaunch_access(APP, page(0));
        tracker.on_relaunch_end(APP);
        tracker.on_relaunch_start(APP, vec![page(0)]);
        assert_eq!(tracker.completed().len(), 1);
        // The still-open second window is discarded only if its relaunch never
        // finished.
        let samples = tracker.finish();
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn unfinished_relaunches_are_not_scored() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_start(APP, vec![page(0)]);
        tracker.on_relaunch_access(APP, page(0));
        // No on_relaunch_end.
        assert!(tracker.finish().is_empty());
    }

    #[test]
    fn events_for_untracked_apps_are_ignored() {
        let mut tracker = IdentificationTracker::new();
        tracker.on_relaunch_access(AppId::new(9), page(0));
        tracker.on_execution_access(AppId::new(9), page(0));
        tracker.on_relaunch_end(AppId::new(9));
        assert!(tracker.finish().is_empty());
    }
}
