//! AdaptiveComp: size-adaptive compression (§4.3).
//!
//! AdaptiveComp maps the hotness of reclaim victims onto compression chunk
//! sizes: cold data is compressed in large multi-page chunks (best ratio —
//! and since it is unlikely to be read again, its slow decompression is
//! rarely paid), warm data in medium chunks, and hot data — when it must be
//! compressed at all — in small sub-page chunks so that relaunch-critical
//! decompression stays fast. This module also groups cold victims into the
//! multi-page batches that become single zpool entries.

use crate::config::SizeConfig;
use ariadne_compress::ChunkSize;
use ariadne_mem::{Hotness, PageId, PAGE_SIZE};

/// A batch of pages that will be compressed together as one zpool entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionGroup {
    /// The pages in the group, in address order.
    pub pages: Vec<PageId>,
    /// The hotness level the pages had when selected.
    pub hotness: Hotness,
    /// The chunk size the group will be compressed with.
    pub chunk_size: ChunkSize,
}

/// The size-adaptive compression policy.
///
/// ```
/// use ariadne_core::{AdaptiveComp, SizeConfig};
/// use ariadne_mem::Hotness;
///
/// let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
/// assert_eq!(policy.chunk_size_for(Hotness::Cold).bytes(), 16 * 1024);
/// assert_eq!(policy.chunk_size_for(Hotness::Hot).bytes(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveComp {
    sizes: SizeConfig,
}

impl AdaptiveComp {
    /// Create the policy from a size configuration.
    #[must_use]
    pub fn new(sizes: SizeConfig) -> Self {
        AdaptiveComp { sizes }
    }

    /// The configured size triple.
    #[must_use]
    pub fn sizes(&self) -> SizeConfig {
        self.sizes
    }

    /// The compression chunk size used for data of the given hotness.
    #[must_use]
    pub fn chunk_size_for(&self, hotness: Hotness) -> ChunkSize {
        match hotness {
            Hotness::Hot => self.sizes.small,
            Hotness::Warm => self.sizes.medium,
            Hotness::Cold => self.sizes.large,
        }
    }

    /// How many pages are compressed together into one zpool entry for data
    /// of the given hotness. Hot and warm data always use one page per entry
    /// (sub-page chunking within the page); cold data fills a whole large
    /// chunk with as many pages as fit.
    #[must_use]
    pub fn pages_per_entry(&self, hotness: Hotness) -> usize {
        match hotness {
            Hotness::Hot | Hotness::Warm => 1,
            Hotness::Cold => (self.sizes.large.bytes() / PAGE_SIZE).max(1),
        }
    }

    /// Group reclaim victims into compression batches. Victims must be given
    /// with their hotness (as returned by
    /// [`crate::HotnessOrg::pick_victims`]); consecutive cold victims of the
    /// same application are batched into multi-page groups, everything else
    /// becomes a single-page group.
    #[must_use]
    pub fn group_victims(&self, victims: &[(PageId, Hotness)]) -> Vec<CompressionGroup> {
        let mut groups: Vec<CompressionGroup> = Vec::new();
        let mut cold_batch: Vec<PageId> = Vec::new();
        let cold_batch_size = self.pages_per_entry(Hotness::Cold);

        let flush_cold = |batch: &mut Vec<PageId>, groups: &mut Vec<CompressionGroup>| {
            if batch.is_empty() {
                return;
            }
            let mut pages = std::mem::take(batch);
            pages.sort_by_key(|p| p.pfn().value());
            groups.push(CompressionGroup {
                pages,
                hotness: Hotness::Cold,
                chunk_size: self.sizes.large,
            });
        };

        for &(page, hotness) in victims {
            match hotness {
                Hotness::Cold => {
                    // Batch only pages of the same application together so a
                    // later fault decompresses one application's data.
                    if let Some(first) = cold_batch.first() {
                        if first.app() != page.app() {
                            flush_cold(&mut cold_batch, &mut groups);
                        }
                    }
                    cold_batch.push(page);
                    if cold_batch.len() >= cold_batch_size {
                        flush_cold(&mut cold_batch, &mut groups);
                    }
                }
                Hotness::Warm | Hotness::Hot => {
                    flush_cold(&mut cold_batch, &mut groups);
                    groups.push(CompressionGroup {
                        pages: vec![page],
                        hotness,
                        chunk_size: self.chunk_size_for(hotness),
                    });
                }
            }
        }
        flush_cold(&mut cold_batch, &mut groups);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::{AppId, Pfn};

    fn page(app: u32, pfn: u64) -> PageId {
        PageId::new(AppId::new(app), Pfn::new(pfn))
    }

    #[test]
    fn chunk_sizes_follow_the_size_configuration() {
        let policy = AdaptiveComp::new(SizeConfig::b256_k2_k32());
        assert_eq!(policy.chunk_size_for(Hotness::Hot).bytes(), 256);
        assert_eq!(policy.chunk_size_for(Hotness::Warm).bytes(), 2048);
        assert_eq!(policy.chunk_size_for(Hotness::Cold).bytes(), 32 * 1024);
        assert_eq!(policy.sizes(), SizeConfig::b256_k2_k32());
    }

    #[test]
    fn cold_entries_cover_multiple_pages() {
        let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
        assert_eq!(policy.pages_per_entry(Hotness::Cold), 4);
        assert_eq!(policy.pages_per_entry(Hotness::Warm), 1);
        assert_eq!(policy.pages_per_entry(Hotness::Hot), 1);
        // A sub-page large size still yields one page per entry.
        let tiny = AdaptiveComp::new(SizeConfig::new(
            ChunkSize::b256(),
            ChunkSize::b512(),
            ChunkSize::k1(),
        ));
        assert_eq!(tiny.pages_per_entry(Hotness::Cold), 1);
    }

    #[test]
    fn cold_victims_are_batched_warm_are_single() {
        let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
        let victims = vec![
            (page(1, 0), Hotness::Cold),
            (page(1, 1), Hotness::Cold),
            (page(1, 2), Hotness::Cold),
            (page(1, 3), Hotness::Cold),
            (page(1, 4), Hotness::Cold),
            (page(1, 10), Hotness::Warm),
        ];
        let groups = policy.group_victims(&victims);
        // 4 cold pages per 16K entry -> one full group + one remainder group,
        // then the warm single.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].pages.len(), 4);
        assert_eq!(groups[0].hotness, Hotness::Cold);
        assert_eq!(groups[1].pages.len(), 1);
        assert_eq!(groups[2].hotness, Hotness::Warm);
        assert_eq!(groups[2].chunk_size, ChunkSize::k2());
    }

    #[test]
    fn cold_batches_never_mix_applications() {
        let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
        let victims = vec![
            (page(1, 0), Hotness::Cold),
            (page(1, 1), Hotness::Cold),
            (page(2, 0), Hotness::Cold),
            (page(2, 1), Hotness::Cold),
        ];
        let groups = policy.group_victims(&victims);
        assert_eq!(groups.len(), 2);
        assert!(groups[0].pages.iter().all(|p| p.app() == AppId::new(1)));
        assert!(groups[1].pages.iter().all(|p| p.app() == AppId::new(2)));
    }

    #[test]
    fn cold_group_pages_are_address_ordered() {
        let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
        let victims = vec![
            (page(1, 9), Hotness::Cold),
            (page(1, 2), Hotness::Cold),
            (page(1, 5), Hotness::Cold),
        ];
        let groups = policy.group_victims(&victims);
        assert_eq!(groups.len(), 1);
        let pfns: Vec<u64> = groups[0].pages.iter().map(|p| p.pfn().value()).collect();
        assert_eq!(pfns, vec![2, 5, 9]);
    }

    #[test]
    fn empty_victim_list_produces_no_groups() {
        let policy = AdaptiveComp::new(SizeConfig::k1_k2_k16());
        assert!(policy.group_victims(&[]).is_empty());
    }
}
