//! Workload generation: concrete pages, hotness ground truth, relaunch
//! traces and multi-application scenarios.
//!
//! [`WorkloadBuilder`] turns an [`AppProfile`] into an [`AppWorkload`]:
//!
//! * a set of anonymous pages with ground-truth hotness labels (hot pages are
//!   laid out in address-contiguous runs, which is what later produces the
//!   zpool-sector locality of Table 3 once they are compressed in batches);
//! * a sequence of relaunch traces whose hot sets overlap by the profile's
//!   `hot_similarity` and whose dropped pages are re-used as warm data with
//!   probability `reuse_fraction` (Figure 5);
//! * post-relaunch execution accesses over the warm set.
//!
//! [`Scenario`] strings several applications together into the usage patterns
//! the paper evaluates: the 10-application relaunch study and the light /
//! heavy switching workloads of Table 2.

use crate::locality::RunLengthSampler;
use crate::profiles::{AppMask, AppName, AppProfile};
use ariadne_mem::{AppId, Hotness, PageId, Pfn, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One anonymous page of an application, with its ground-truth hotness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSpec {
    /// The page.
    pub page: PageId,
    /// Ground-truth hotness (what an oracle profiler would label the page).
    pub hotness: Hotness,
}

/// The access trace of one application relaunch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelaunchTrace {
    /// Pages accessed during the relaunch itself (the hot set of this
    /// relaunch), in access order.
    pub hot_accesses: Vec<PageId>,
    /// Pages accessed during execution shortly after the relaunch (drawn
    /// from the warm set), in access order.
    pub execution_accesses: Vec<PageId>,
}

impl RelaunchTrace {
    /// The hot set of this relaunch as a set.
    #[must_use]
    pub fn hot_set(&self) -> HashSet<PageId> {
        self.hot_accesses.iter().copied().collect()
    }

    /// The warm set (execution accesses) of this relaunch as a set.
    #[must_use]
    pub fn warm_set(&self) -> HashSet<PageId> {
        self.execution_accesses.iter().copied().collect()
    }
}

/// A complete synthetic workload for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppWorkload {
    /// Which application.
    pub name: AppName,
    /// The application id used in page identifiers.
    pub app: AppId,
    /// The profile the workload was generated from.
    pub profile: AppProfile,
    /// Every anonymous page of the application.
    pub pages: Vec<PageSpec>,
    /// One trace per relaunch.
    pub relaunches: Vec<RelaunchTrace>,
}

impl AppWorkload {
    /// Number of anonymous pages.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total anonymous bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Pages with the given ground-truth hotness.
    pub fn pages_with(&self, hotness: Hotness) -> impl Iterator<Item = PageId> + '_ {
        self.pages
            .iter()
            .filter(move |p| p.hotness == hotness)
            .map(|p| p.page)
    }

    /// Ground-truth hotness of `page`, if it belongs to this workload.
    #[must_use]
    pub fn hotness_of(&self, page: PageId) -> Option<Hotness> {
        self.pages
            .iter()
            .find(|p| p.page == page)
            .map(|p| p.hotness)
    }

    /// Hot-data similarity between relaunch `i` and relaunch `i + 1`
    /// (the Figure 5 metric): |hot_i ∩ hot_{i+1}| / |hot_{i+1}|.
    #[must_use]
    pub fn hot_similarity_between(&self, i: usize) -> Option<f64> {
        let a = self.relaunches.get(i)?.hot_set();
        let b = self.relaunches.get(i + 1)?.hot_set();
        if b.is_empty() {
            return Some(0.0);
        }
        let shared = b.iter().filter(|p| a.contains(p)).count();
        Some(shared as f64 / b.len() as f64)
    }

    /// Reused-data fraction between relaunch `i` and `i + 1` (Figure 5):
    /// the fraction of relaunch `i`'s hot data present in relaunch
    /// `i + 1`'s hot or warm sets.
    #[must_use]
    pub fn reuse_between(&self, i: usize) -> Option<f64> {
        let a = self.relaunches.get(i)?.hot_set();
        let next = self.relaunches.get(i + 1)?;
        if a.is_empty() {
            return Some(0.0);
        }
        let union: HashSet<PageId> = next.hot_set().union(&next.warm_set()).copied().collect();
        let reused = a.iter().filter(|p| union.contains(p)).count();
        Some(reused as f64 / a.len() as f64)
    }
}

/// Builds [`AppWorkload`]s from [`AppProfile`]s.
///
/// ```
/// use ariadne_trace::{AppName, WorkloadBuilder};
///
/// let workload = WorkloadBuilder::new(42).scale(256).build(AppName::Twitter);
/// assert!(workload.total_pages() > 0);
/// assert_eq!(workload.relaunches.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadBuilder {
    seed: u64,
    scale_denominator: usize,
    relaunch_count: usize,
    use_steady_state_volume: bool,
    incompressible: AppMask,
}

impl WorkloadBuilder {
    /// Create a builder with the given deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WorkloadBuilder {
            seed,
            scale_denominator: 64,
            relaunch_count: 5,
            use_steady_state_volume: true,
            incompressible: AppMask::none(),
        }
    }

    /// Scale the paper's data volumes down by `denominator` (default 64).
    ///
    /// The paper's applications hold hundreds of megabytes of anonymous data;
    /// scaling keeps simulations fast while preserving every ratio the
    /// policies depend on. A denominator of 1 reproduces full volumes.
    #[must_use]
    pub fn scale(mut self, denominator: usize) -> Self {
        self.scale_denominator = denominator.max(1);
        self
    }

    /// Number of relaunch traces to generate (the paper relaunches each app
    /// five times).
    #[must_use]
    pub fn relaunches(mut self, count: usize) -> Self {
        self.relaunch_count = count.max(1);
        self
    }

    /// Use the 10-second data volume instead of the 5-minute steady state.
    #[must_use]
    pub fn early_volume(mut self) -> Self {
        self.use_steady_state_volume = false;
        self
    }

    /// The configured scale denominator.
    #[must_use]
    pub fn scale_denominator(&self) -> usize {
        self.scale_denominator
    }

    /// Give the applications in `mask` adversarially incompressible page
    /// data (see [`AppProfile::incompressible`]). The empty mask — the
    /// default — leaves every workload byte-identical to before this knob
    /// existed. Page identities, hotness labels and relaunch traces are
    /// unaffected either way: the same RNG stream drives them, so only the
    /// synthesised page *bytes* change.
    #[must_use]
    pub fn incompressible(mut self, mask: AppMask) -> Self {
        self.incompressible = mask;
        self
    }

    /// The configured incompressible-app mask.
    #[must_use]
    pub fn incompressible_apps(&self) -> AppMask {
        self.incompressible
    }

    /// Build the workload for one application.
    #[must_use]
    pub fn build(&self, app: AppName) -> AppWorkload {
        let profile = if self.incompressible.contains(app) {
            AppProfile::incompressible(app)
        } else {
            app.profile()
        };
        let app_id = AppId::new(app.uid());
        let mut rng = StdRng::seed_from_u64(self.seed ^ u64::from(app.uid()) << 16);

        let volume = if self.use_steady_state_volume {
            profile.anon_bytes_5min()
        } else {
            profile.anon_bytes_10s()
        };
        let total_pages = (volume / self.scale_denominator / PAGE_SIZE).max(64);

        let pages = self.assign_hotness(&profile, app_id, total_pages, &mut rng);
        let relaunches = self.generate_relaunches(&profile, &pages, &mut rng);

        AppWorkload {
            name: app,
            app: app_id,
            profile,
            pages,
            relaunches,
        }
    }

    /// Build workloads for every evaluated application.
    #[must_use]
    pub fn build_all(&self) -> Vec<AppWorkload> {
        AppName::ALL.iter().map(|&a| self.build(a)).collect()
    }

    /// Lay pages out in address-contiguous hotness runs. Contiguity matters:
    /// pages of the same hotness are compressed in batches, giving them
    /// adjacent zpool sectors, which is the physical origin of the swap-in
    /// locality of Table 3.
    fn assign_hotness(
        &self,
        profile: &AppProfile,
        app: AppId,
        total_pages: usize,
        rng: &mut StdRng,
    ) -> Vec<PageSpec> {
        // Stratified assignment: build run labels with exactly the profile's
        // hot/warm/cold proportions, then shuffle the runs. This keeps the
        // fractions faithful even for small scaled-down workloads while still
        // producing address-contiguous runs of equal hotness.
        let run_length = 16usize;
        let runs = total_pages.div_ceil(run_length);
        let hot_runs = ((runs as f64) * profile.hot_fraction).round() as usize;
        let warm_runs = ((runs as f64) * profile.warm_fraction).round() as usize;
        let cold_runs = runs.saturating_sub(hot_runs + warm_runs);
        let mut labels = Vec::with_capacity(runs);
        labels.extend(std::iter::repeat(Hotness::Hot).take(hot_runs));
        labels.extend(std::iter::repeat(Hotness::Warm).take(warm_runs));
        labels.extend(std::iter::repeat(Hotness::Cold).take(cold_runs));
        while labels.len() < runs {
            labels.push(Hotness::Cold);
        }
        labels.shuffle(rng);

        let mut pages = Vec::with_capacity(total_pages);
        let mut pfn = 0u64;
        for hotness in labels {
            let run = run_length.min(total_pages - pages.len());
            for _ in 0..run {
                pages.push(PageSpec {
                    page: PageId::new(app, Pfn::new(pfn)),
                    hotness,
                });
                pfn += 1;
            }
            if pages.len() >= total_pages {
                break;
            }
        }
        pages
    }

    fn generate_relaunches(
        &self,
        profile: &AppProfile,
        pages: &[PageSpec],
        rng: &mut StdRng,
    ) -> Vec<RelaunchTrace> {
        let hot_pages: Vec<PageId> = pages
            .iter()
            .filter(|p| p.hotness == Hotness::Hot)
            .map(|p| p.page)
            .collect();
        let warm_pages: Vec<PageId> = pages
            .iter()
            .filter(|p| p.hotness == Hotness::Warm)
            .map(|p| p.page)
            .collect();

        let sampler = RunLengthSampler::from_probabilities(profile.locality_2, profile.locality_4);
        let mut relaunches: Vec<RelaunchTrace> = Vec::with_capacity(self.relaunch_count);
        let mut current_hot: Vec<PageId> = hot_pages.clone();
        // Hot pages that fell out of the previous relaunch's hot set but are
        // still re-used as warm data (the behaviour behind Figure 5's ~98 %
        // "Reused Data").
        let mut demoted_to_warm: Vec<PageId> = Vec::new();

        for _ in 0..self.relaunch_count {
            let hot_accesses = Self::order_with_locality(&current_hot, &sampler, rng);

            // Execution accesses: a random sample of roughly half the warm
            // set, plus the pages demoted from the previous hot set.
            let mut exec: Vec<PageId> = warm_pages
                .iter()
                .filter(|_| rng.gen_bool(0.5))
                .copied()
                .collect();
            exec.extend(demoted_to_warm.iter().copied());
            exec.shuffle(rng);

            relaunches.push(RelaunchTrace {
                hot_accesses: hot_accesses.clone(),
                execution_accesses: exec,
            });

            // Evolve the hot set for the next relaunch: keep `hot_similarity`
            // of it, replace the rest with warm pages. Of the dropped pages,
            // enough stay warm that the overall reuse fraction matches the
            // profile; the remainder effectively go cold.
            let keep = ((current_hot.len() as f64) * profile.hot_similarity).round() as usize;
            let mut shuffled = current_hot.clone();
            shuffled.shuffle(rng);
            let next: Vec<PageId> = shuffled[..keep.min(shuffled.len())].to_vec();
            let dropped: Vec<PageId> = shuffled[keep.min(shuffled.len())..].to_vec();
            let drop_keep_prob = if profile.hot_similarity < 1.0 {
                ((profile.reuse_fraction - profile.hot_similarity) / (1.0 - profile.hot_similarity))
                    .clamp(0.0, 1.0)
            } else {
                1.0
            };
            demoted_to_warm = dropped
                .into_iter()
                .filter(|_| rng.gen_bool(drop_keep_prob))
                .collect();

            let replace = current_hot.len().saturating_sub(keep);
            let existing: HashSet<PageId> = next.iter().copied().collect();
            let mut candidates: Vec<PageId> = warm_pages
                .iter()
                .filter(|p| !existing.contains(p))
                .copied()
                .collect();
            candidates.shuffle(rng);
            let mut next = next;
            next.extend(candidates.into_iter().take(replace));
            next.sort_by_key(|p| p.pfn().value());
            current_hot = next;
        }
        relaunches
    }

    /// Order `pages` into an access sequence made of address-contiguous runs
    /// whose lengths follow the locality sampler.
    fn order_with_locality(
        pages: &[PageId],
        sampler: &RunLengthSampler,
        rng: &mut StdRng,
    ) -> Vec<PageId> {
        let mut sorted: Vec<PageId> = pages.to_vec();
        sorted.sort_by_key(|p| p.pfn().value());

        // Split the sorted pages into runs, then shuffle the run order.
        let mut runs: Vec<Vec<PageId>> = Vec::new();
        let mut cursor = 0usize;
        while cursor < sorted.len() {
            let len = sampler.sample_run(rng).min(sorted.len() - cursor);
            runs.push(sorted[cursor..cursor + len].to_vec());
            cursor += len;
        }
        runs.shuffle(rng);
        runs.into_iter().flatten().collect()
    }
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        WorkloadBuilder::new(0x0A71_AD4E)
    }
}

/// One step of a multi-application usage scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Cold-launch the application (allocate its pages, touch its hot set).
    Launch(AppName),
    /// Send the application to the background.
    Background(AppName),
    /// Hot-launch (relaunch) the application; the relaunch index selects
    /// which pre-generated relaunch trace to replay.
    Relaunch {
        /// The application being relaunched.
        app: AppName,
        /// Which relaunch trace of the workload to replay.
        relaunch_index: usize,
    },
    /// The user pauses for the given number of milliseconds.
    Idle {
        /// Pause length in milliseconds.
        millis: u64,
    },
    /// A memory-pressure spike: the platform (e.g. a camera burst, a large
    /// file-cache allocation) suddenly demands memory, forcing the scheme to
    /// proactively reclaim the given percentage of the currently resident
    /// anonymous data. Only emitted by the timed scenario DSL; the legacy
    /// scenarios never contain it.
    Pressure {
        /// Percentage (0–100) of resident anonymous bytes to reclaim.
        dram_percent: u8,
    },
}

/// The flavour of a scenario, used by the energy experiment (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Switching between applications with an intermission between switches.
    Light,
    /// Launching applications back-to-back with no intermission.
    Heavy,
    /// The relaunch-latency study of Figures 2 and 10.
    RelaunchStudy,
    /// A concurrent multi-application scenario built with the timed DSL
    /// (overlapping per-app timelines, launch storms, pressure spikes).
    Concurrent,
}

/// A multi-application usage scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// The flavour of the scenario.
    pub kind: ScenarioKind,
    /// The events, in order.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// The paper's relaunch study (§5): launch the target, background it,
    /// launch the nine other applications to build memory pressure, then
    /// relaunch the target.
    #[must_use]
    pub fn relaunch_study(target: AppName) -> Self {
        let mut events = vec![
            ScenarioEvent::Launch(target),
            ScenarioEvent::Background(target),
        ];
        for app in AppName::ALL.iter().filter(|&&a| a != target) {
            events.push(ScenarioEvent::Launch(*app));
            events.push(ScenarioEvent::Background(*app));
        }
        events.push(ScenarioEvent::Relaunch {
            app: target,
            relaunch_index: 0,
        });
        Scenario {
            kind: ScenarioKind::RelaunchStudy,
            events,
        }
    }

    /// The light workload of Table 2: switch between the ten applications
    /// with a one-second intermission between switches.
    #[must_use]
    pub fn light_switching(rounds: usize) -> Self {
        let mut events = Vec::new();
        for app in AppName::ALL {
            events.push(ScenarioEvent::Launch(app));
            events.push(ScenarioEvent::Background(app));
        }
        for round in 0..rounds {
            for app in AppName::ALL {
                events.push(ScenarioEvent::Relaunch {
                    app,
                    relaunch_index: round % 5,
                });
                events.push(ScenarioEvent::Idle { millis: 1000 });
                events.push(ScenarioEvent::Background(app));
            }
        }
        Scenario {
            kind: ScenarioKind::Light,
            events,
        }
    }

    /// The heavy workload of Table 2: launch the ten applications
    /// sequentially with no intermission.
    #[must_use]
    pub fn heavy_switching(rounds: usize) -> Self {
        let mut events = Vec::new();
        for app in AppName::ALL {
            events.push(ScenarioEvent::Launch(app));
            events.push(ScenarioEvent::Background(app));
        }
        for round in 0..rounds {
            for app in AppName::ALL {
                events.push(ScenarioEvent::Relaunch {
                    app,
                    relaunch_index: round % 5,
                });
                events.push(ScenarioEvent::Background(app));
            }
        }
        Scenario {
            kind: ScenarioKind::Heavy,
            events,
        }
    }

    /// Number of relaunch events in the scenario.
    #[must_use]
    pub fn relaunch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Relaunch { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> WorkloadBuilder {
        WorkloadBuilder::new(7).scale(512)
    }

    #[test]
    fn workload_volume_matches_the_scaled_profile() {
        let builder = WorkloadBuilder::new(1).scale(64);
        let workload = builder.build(AppName::Youtube);
        let expected = AppName::Youtube.profile().anon_bytes_5min() / 64;
        let actual = workload.total_bytes();
        let tolerance = expected / 10 + 16 * PAGE_SIZE;
        assert!(
            actual.abs_diff(expected) <= tolerance,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn hotness_fractions_match_the_profile() {
        let workload = WorkloadBuilder::new(3).scale(64).build(AppName::Twitter);
        let profile = AppName::Twitter.profile();
        let total = workload.total_pages() as f64;
        let hot = workload.pages_with(Hotness::Hot).count() as f64 / total;
        let warm = workload.pages_with(Hotness::Warm).count() as f64 / total;
        assert!((hot - profile.hot_fraction).abs() < 0.08, "hot {hot}");
        assert!((warm - profile.warm_fraction).abs() < 0.08, "warm {warm}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = WorkloadBuilder::new(9).scale(256).build(AppName::Firefox);
        let b = WorkloadBuilder::new(9).scale(256).build(AppName::Firefox);
        assert_eq!(a, b);
        let c = WorkloadBuilder::new(10).scale(256).build(AppName::Firefox);
        assert_ne!(a, c);
    }

    #[test]
    fn relaunch_similarity_tracks_the_profile() {
        let workload = WorkloadBuilder::new(11).scale(128).build(AppName::Youtube);
        let profile = AppName::Youtube.profile();
        let mut sims = Vec::new();
        for i in 0..workload.relaunches.len() - 1 {
            sims.push(workload.hot_similarity_between(i).unwrap());
        }
        let avg = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(
            (avg - profile.hot_similarity).abs() < 0.12,
            "similarity {avg} vs target {}",
            profile.hot_similarity
        );
    }

    #[test]
    fn reuse_fraction_is_high() {
        let workload = WorkloadBuilder::new(13).scale(128).build(AppName::Twitter);
        for i in 0..workload.relaunches.len() - 1 {
            let reuse = workload.reuse_between(i).unwrap();
            assert!(reuse > 0.85, "relaunch {i}: reuse {reuse}");
        }
    }

    #[test]
    fn relaunch_traces_access_real_pages() {
        let workload = small_builder().build(AppName::GoogleEarth);
        let all: HashSet<PageId> = workload.pages.iter().map(|p| p.page).collect();
        for trace in &workload.relaunches {
            assert!(!trace.hot_accesses.is_empty());
            for page in trace.hot_accesses.iter().chain(&trace.execution_accesses) {
                assert!(all.contains(page));
            }
        }
    }

    #[test]
    fn first_relaunch_hot_set_matches_ground_truth() {
        let workload = small_builder().build(AppName::Edge);
        let ground_truth: HashSet<PageId> = workload.pages_with(Hotness::Hot).collect();
        let first = workload.relaunches[0].hot_set();
        assert_eq!(first, ground_truth);
    }

    #[test]
    fn hotness_of_reports_ground_truth() {
        let workload = small_builder().build(AppName::TikTok);
        let hot_page = workload.pages_with(Hotness::Hot).next().unwrap();
        assert_eq!(workload.hotness_of(hot_page), Some(Hotness::Hot));
        let missing = PageId::new(AppId::new(999), Pfn::new(0));
        assert_eq!(workload.hotness_of(missing), None);
    }

    #[test]
    fn scenarios_have_the_expected_shape() {
        let study = Scenario::relaunch_study(AppName::Youtube);
        assert_eq!(study.relaunch_count(), 1);
        assert_eq!(study.events.len(), 2 + 9 * 2 + 1);
        assert!(matches!(
            study.events[0],
            ScenarioEvent::Launch(AppName::Youtube)
        ));
        assert!(matches!(
            *study.events.last().unwrap(),
            ScenarioEvent::Relaunch {
                app: AppName::Youtube,
                ..
            }
        ));

        let light = Scenario::light_switching(2);
        let heavy = Scenario::heavy_switching(2);
        assert_eq!(light.relaunch_count(), 20);
        assert_eq!(heavy.relaunch_count(), 20);
        // Light has idle intermissions, heavy does not.
        assert!(light
            .events
            .iter()
            .any(|e| matches!(e, ScenarioEvent::Idle { .. })));
        assert!(!heavy
            .events
            .iter()
            .any(|e| matches!(e, ScenarioEvent::Idle { .. })));
    }

    #[test]
    fn incompressible_mask_changes_only_the_profile() {
        use crate::profiles::AppMask;
        let builder = WorkloadBuilder::new(5).scale(256);
        let base = builder.build(AppName::Twitter);
        let hostile = builder
            .incompressible(AppMask::of(&[AppName::Twitter]))
            .build(AppName::Twitter);
        // Same pages, hotness labels and relaunch traces — only the profile
        // (and hence the synthesised bytes) turns hostile.
        assert_eq!(base.pages, hostile.pages);
        assert_eq!(base.relaunches, hostile.relaunches);
        assert!((hostile.profile.media_weight - 1.0).abs() < 1e-12);
        // Apps outside the mask are untouched.
        let other = builder
            .incompressible(AppMask::of(&[AppName::Twitter]))
            .build(AppName::Youtube);
        assert_eq!(other, builder.build(AppName::Youtube));
        // The empty mask reproduces the default builder exactly.
        assert_eq!(
            builder
                .incompressible(AppMask::none())
                .build(AppName::Twitter),
            base
        );
    }

    #[test]
    fn build_all_covers_every_application() {
        let workloads = WorkloadBuilder::new(2).scale(1024).build_all();
        assert_eq!(workloads.len(), 10);
        let names: HashSet<AppName> = workloads.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 10);
    }
}
