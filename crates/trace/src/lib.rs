//! Workload substrate for the Ariadne reproduction.
//!
//! The paper evaluates Ariadne by replaying traces collected from ten popular
//! Android applications on a Google Pixel 7 (Twitter, YouTube, TikTok, Edge,
//! Firefox, Google Earth, Google Maps, BangDream, Angry Birds and TwitchTV).
//! Those traces are not shipped with the paper's artifact in a form we can
//! rely on here, so this crate generates **synthetic but calibrated**
//! workloads that reproduce the published statistical properties the
//! policies depend on:
//!
//! * per-application anonymous-data volumes at 10 s and 5 min (Table 1);
//! * the hot / warm / cold composition of that data and the ~70 % hot-data
//!   similarity plus ~98 % reuse across consecutive relaunches (Figure 5);
//! * the fine-grained (128 B-region) redundancy inside anonymous pages that
//!   makes small-chunk compression effective and the cross-page redundancy
//!   that makes large-chunk compression pay off (Figure 6);
//! * the sequential-access locality of swap-in streams (Table 3).
//!
//! The main entry points are [`AppProfile`] (per-application parameters),
//! [`WorkloadBuilder`] (turns profiles into an [`AppWorkload`] with concrete
//! pages, ground-truth hotness labels and relaunch access traces) and
//! [`PageDataGenerator`] (deterministically synthesises the *bytes* of any
//! page so compression ratios are real without storing gigabytes).
//! [`ScenarioBuilder`] composes timestamped multi-application scenarios —
//! launch storms, background churn, relaunch-under-pressure — into the
//! [`TimedScenario`] event streams the discrete-event engine in
//! `ariadne-sim` consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod device;
pub mod locality;
pub mod profiles;
pub mod record;
pub mod scenario;
pub mod workload;

pub use content::{ContentClass, PageDataGenerator};
pub use device::DeviceClass;
pub use locality::{measure_consecutive_probability, RunLengthSampler};
pub use profiles::{AdversarialMix, AppMask, AppName, AppProfile};
pub use record::TraceRecord;
pub use scenario::{ScenarioBuilder, TimedEvent, TimedScenario};
pub use workload::{
    AppWorkload, PageSpec, RelaunchTrace, Scenario, ScenarioEvent, ScenarioKind, WorkloadBuilder,
};
