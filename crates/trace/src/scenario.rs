//! The timed scenario DSL.
//!
//! The legacy [`Scenario`] type is a flat, strictly ordered list of events:
//! the driver replays them one at a time, so two applications can never be
//! mid-flight at once. This module adds the composable, *timestamped* layer
//! the discrete-event engine consumes:
//!
//! * [`TimedEvent`] — a [`ScenarioEvent`] stamped with the simulated instant
//!   at which it is injected;
//! * [`TimedScenario`] — a named stream of timed events, sorted by time with
//!   ties broken by insertion order (the engine's determinism contract);
//! * [`ScenarioBuilder`] — a cursor-based builder with combinators for the
//!   concurrent usage patterns the paper's setting implies: launch storms,
//!   background-app churn, relaunch-under-pressure and memory-pressure
//!   spikes.
//!
//! Every legacy [`Scenario`] converts losslessly via [`Scenario::timeline`]:
//! event *i* is stamped *i* nanoseconds after the epoch, which preserves the
//! original total order exactly (the event engine replays it with identical
//! semantics to the old synchronous loop).
//!
//! ```
//! use ariadne_trace::{AppName, ScenarioBuilder};
//!
//! let scenario = ScenarioBuilder::new("morning-rush")
//!     .launch_storm(&[AppName::Twitter, AppName::Youtube, AppName::TikTok], 200)
//!     .after_millis(500)
//!     .pressure(25)
//!     .relaunch(AppName::Twitter, 0)
//!     .at_millis(1_700)
//!     .relaunch(AppName::Youtube, 0)
//!     .build();
//! assert_eq!(scenario.relaunch_count(), 2);
//! assert!(scenario.events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
//! ```

use crate::profiles::AppName;
use crate::workload::{Scenario, ScenarioEvent, ScenarioKind};
use serde::{Deserialize, Serialize};

const NANOS_PER_MILLI: u128 = 1_000_000;

/// A scenario event stamped with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Simulated nanoseconds after the epoch at which the event fires.
    pub at_nanos: u128,
    /// The event itself.
    pub event: ScenarioEvent,
}

impl TimedEvent {
    /// The injection time in milliseconds (rounded down).
    #[must_use]
    pub fn at_millis(&self) -> u64 {
        u64::try_from(self.at_nanos / NANOS_PER_MILLI).unwrap_or(u64::MAX)
    }
}

/// A timestamped multi-application scenario, ready for the event engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedScenario {
    /// Human-readable scenario name (used in reports and experiment tables).
    pub name: String,
    /// The flavour of the scenario.
    pub kind: ScenarioKind,
    /// The events, sorted by `at_nanos`; ties keep builder insertion order.
    pub events: Vec<TimedEvent>,
    /// Whether the engine may schedule deferred background work (ZSWAP-style
    /// writeback flushes, Ariadne pre-decompression drains) between events.
    /// Legacy conversions leave this off so they replay with byte-identical
    /// semantics to the synchronous driver.
    pub background_drains: bool,
    /// Whether the low-memory killer (lmkd) is armed for this scenario: the
    /// engine then samples PSI-style memory pressure and may kill cached
    /// background apps, turning their next relaunch into a cold launch.
    /// Legacy conversions and the default builder leave it off so existing
    /// scenarios replay unchanged.
    pub lmkd: bool,
}

impl TimedScenario {
    /// Number of relaunch events in the scenario.
    #[must_use]
    pub fn relaunch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Relaunch { .. }))
            .count()
    }

    /// Distinct applications referenced by the scenario, in first-appearance
    /// order.
    #[must_use]
    pub fn apps(&self) -> Vec<AppName> {
        let mut apps = Vec::new();
        for timed in &self.events {
            let app = match timed.event {
                ScenarioEvent::Launch(app)
                | ScenarioEvent::Background(app)
                | ScenarioEvent::Relaunch { app, .. } => app,
                ScenarioEvent::Idle { .. } | ScenarioEvent::Pressure { .. } => continue,
            };
            if !apps.contains(&app) {
                apps.push(app);
            }
        }
        apps
    }

    /// The timestamp of the last event, in milliseconds.
    #[must_use]
    pub fn duration_millis(&self) -> u64 {
        self.events.last().map_or(0, TimedEvent::at_millis)
    }

    /// `true` if at least two applications have overlapping live intervals
    /// (one is launched or relaunched before another is backgrounded).
    #[must_use]
    pub fn has_overlap(&self) -> bool {
        let mut live: Vec<AppName> = Vec::new();
        for timed in &self.events {
            match timed.event {
                ScenarioEvent::Launch(app) | ScenarioEvent::Relaunch { app, .. } => {
                    if !live.contains(&app) {
                        live.push(app);
                    }
                    if live.len() >= 2 {
                        return true;
                    }
                }
                ScenarioEvent::Background(app) => live.retain(|a| *a != app),
                ScenarioEvent::Idle { .. } | ScenarioEvent::Pressure { .. } => {}
            }
        }
        false
    }

    /// The canonical concurrent workload used by the `multiapp` experiment,
    /// the reachability tests and the `concurrent_storm` example: six
    /// applications launched in an overlapping storm, three of them churning
    /// in the background, and relaunches of three different targets arriving
    /// while memory-pressure spikes are still being absorbed.
    #[must_use]
    pub fn concurrent_relaunch_storm() -> Self {
        let storm = [
            AppName::Twitter,
            AppName::Youtube,
            AppName::TikTok,
            AppName::Firefox,
            AppName::Edge,
            AppName::GoogleMaps,
        ];
        let churn = [AppName::Firefox, AppName::Edge, AppName::GoogleMaps];
        ScenarioBuilder::new("concurrent-relaunch-storm")
            .launch_storm(&storm, 150)
            .after_millis(400)
            .background_churn(&churn, 250, 2)
            .after_millis(300)
            .relaunch_under_pressure(AppName::Twitter, 0, 20)
            .after_millis(150)
            .relaunch(AppName::Youtube, 0)
            .pressure(35)
            .after_millis(100)
            .relaunch(AppName::TikTok, 0)
            .after_millis(200)
            .background(AppName::Twitter)
            .background(AppName::Youtube)
            .background(AppName::TikTok)
            .with_background_drains()
            .build()
    }

    /// The canonical *I/O-heavy* workload used by the `writeback` experiment
    /// and the async-I/O tests: six applications launched in a storm (which
    /// fills DRAM and keeps the compressed pool overflowing to flash), a
    /// modest pressure wave that sustains the writeback backlog without
    /// emptying DRAM, background churn that refills DRAM right before the
    /// measured relaunches — so relaunch faults run direct reclaim while
    /// writeback is still in flight — and one relaunch arriving at the same
    /// instant as a critical spike, so its faults race the flush commands
    /// the spike just submitted.
    #[must_use]
    pub fn writeback_storm() -> Self {
        let storm = [
            AppName::Twitter,
            AppName::Youtube,
            AppName::TikTok,
            AppName::Firefox,
            AppName::Edge,
            AppName::GoogleMaps,
        ];
        let churn = [AppName::Firefox, AppName::Edge, AppName::GoogleMaps];
        ScenarioBuilder::new("writeback-storm")
            .launch_storm(&storm, 120)
            .after_millis(200)
            .pressure_wave(3, 150, 15)
            .after_millis(100)
            .background_churn(&churn, 200, 1)
            .after_millis(100)
            .relaunch(AppName::Twitter, 0)
            .after_millis(120)
            .relaunch_under_pressure(AppName::Youtube, 0, 55)
            .after_millis(120)
            .relaunch(AppName::TikTok, 1)
            .after_millis(150)
            .background(AppName::Twitter)
            .background(AppName::Youtube)
            .background(AppName::TikTok)
            .with_background_drains()
            .build()
    }

    /// The canonical *kill* workload used by the `lifecycle` experiment, the
    /// release-app invariant tests and the `kill_storm` example: six
    /// applications launched in an overlapping storm, a foreground memory
    /// hog (BangDream, the heaviest app) allocating in critical bursts,
    /// background churn that keeps faulting while pressure is high — the
    /// stalls that feed the PSI signal — and a final relaunch sweep over all
    /// six stormed apps, so every app lmkd killed along the way comes back
    /// as a measured *cold* launch. The low-memory killer is armed.
    #[must_use]
    pub fn kill_storm() -> Self {
        let storm = [
            AppName::Twitter,
            AppName::Youtube,
            AppName::TikTok,
            AppName::Firefox,
            AppName::Edge,
            AppName::GoogleMaps,
        ];
        let churn = [AppName::Firefox, AppName::Edge, AppName::GoogleMaps];
        let mut builder = ScenarioBuilder::new("kill-storm")
            .kill_storm(&storm, AppName::BangDream, 120, 55)
            .after_millis(120)
            .background_churn(&churn, 150, 2)
            .after_millis(150);
        for &app in &storm {
            builder = builder.relaunch(app, 1).after_millis(100);
        }
        builder = builder.after_millis(50);
        for &app in &storm {
            builder = builder.background(app);
        }
        builder.with_background_drains().build()
    }

    /// The long-horizon workload of the `lifetime` experiment: `hours`
    /// simulated hours of sustained use under the given adversarial `mix`,
    /// with the low-memory killer armed and background drains on.
    ///
    /// Every hour plays one usage block — chosen by the mix — followed by a
    /// relaunch sweep over the six stormed applications, so apps killed
    /// during the block come back as measured *cold* launches:
    ///
    /// * [`AdversarialMix::Baseline`](crate::profiles::AdversarialMix::Baseline) and [`AdversarialMix::Incompressible`](crate::profiles::AdversarialMix::Incompressible)
    ///   share the *same event stream* (background churn plus a modest
    ///   pressure wave); the incompressible mix differs only in the page
    ///   bytes, which the workload builder poisons via
    ///   [`AdversarialMix::incompressible_apps`](crate::profiles::AdversarialMix::incompressible_apps).
    /// * [`AdversarialMix::FlipLoop`](crate::profiles::AdversarialMix::FlipLoop) runs tight relaunch/background flips
    ///   over all six apps.
    /// * [`AdversarialMix::HogChurn`](crate::profiles::AdversarialMix::HogChurn) runs hog-then-exit cycles of the
    ///   heaviest app (BangDream) at kill-storm pressure.
    ///
    /// Event emission is compressed: the stream grows with `hours`, not
    /// with simulated nanoseconds, so a day-long soak stays replayable in
    /// milliseconds of host time.
    #[must_use]
    pub fn lifetime(mix: crate::profiles::AdversarialMix, hours: u64) -> Self {
        use crate::profiles::AdversarialMix;
        let storm = [
            AppName::Twitter,
            AppName::Youtube,
            AppName::TikTok,
            AppName::Firefox,
            AppName::Edge,
            AppName::GoogleMaps,
        ];
        let churn = [AppName::Firefox, AppName::Edge, AppName::GoogleMaps];
        ScenarioBuilder::new(format!("lifetime-{mix}"))
            .launch_storm(&storm, 120)
            .after_millis(240)
            .repeat_blocks(hours.max(1), 3_600_000, move |builder, hour| {
                let builder = match mix {
                    AdversarialMix::Baseline | AdversarialMix::Incompressible => builder
                        .background_churn(&churn, 150, 2)
                        .after_millis(150)
                        .pressure_wave(2, 200, 25),
                    AdversarialMix::FlipLoop => builder.flip_loop(&storm, 80, 3),
                    AdversarialMix::HogChurn => {
                        builder.hog_exit_cycles(AppName::BangDream, 2, 150, 55)
                    }
                };
                // The sweep relaunches every stormed app *under pressure* —
                // the regime where a scheme's swap-in latency decides
                // whether lmkd reaches for the trigger.
                let mut builder = builder.after_millis(150);
                for &app in &storm {
                    builder = builder
                        .relaunch_under_pressure(app, (hour as usize) % 5, 45)
                        .after_millis(100);
                }
                let mut builder = builder.after_millis(50);
                for &app in &storm {
                    builder = builder.background(app);
                }
                builder
            })
            .with_background_drains()
            .with_lmkd()
            .build()
    }
}

impl Scenario {
    /// Convert a legacy scenario into a timed one. Event *i* is stamped
    /// *i* nanoseconds after the epoch: the strict ordering of the flat list
    /// is preserved exactly, so the event engine replays it with the same
    /// semantics (and therefore the same numbers) as the old synchronous
    /// phase-replay loop.
    #[must_use]
    pub fn timeline(&self) -> TimedScenario {
        let name = match self.kind {
            ScenarioKind::Light => "light-switching",
            ScenarioKind::Heavy => "heavy-switching",
            ScenarioKind::RelaunchStudy => "relaunch-study",
            ScenarioKind::Concurrent => "concurrent",
        };
        TimedScenario {
            name: name.to_string(),
            kind: self.kind,
            events: self
                .events
                .iter()
                .enumerate()
                .map(|(i, event)| TimedEvent {
                    at_nanos: i as u128,
                    event: *event,
                })
                .collect(),
            background_drains: false,
            lmkd: false,
        }
    }
}

/// Cursor-based builder for [`TimedScenario`]s.
///
/// The builder keeps a time cursor in milliseconds. Event-emitting methods
/// stamp events at the cursor; [`ScenarioBuilder::at_millis`] and
/// [`ScenarioBuilder::after_millis`] move it. Combinators emit several
/// events with per-app offsets so application timelines overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioBuilder {
    name: String,
    kind: ScenarioKind,
    cursor_millis: u64,
    events: Vec<(u64, ScenarioEvent)>,
    background_drains: bool,
    lmkd: bool,
}

impl ScenarioBuilder {
    /// Start a builder for a named concurrent scenario, cursor at the epoch.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            kind: ScenarioKind::Concurrent,
            cursor_millis: 0,
            events: Vec::new(),
            background_drains: false,
            lmkd: false,
        }
    }

    /// Override the scenario kind (defaults to [`ScenarioKind::Concurrent`]).
    #[must_use]
    pub fn kind(mut self, kind: ScenarioKind) -> Self {
        self.kind = kind;
        self
    }

    /// Move the cursor to an absolute time.
    #[must_use]
    pub fn at_millis(mut self, millis: u64) -> Self {
        self.cursor_millis = millis;
        self
    }

    /// Advance the cursor by `millis`.
    #[must_use]
    pub fn after_millis(mut self, millis: u64) -> Self {
        self.cursor_millis += millis;
        self
    }

    /// The current cursor position in milliseconds.
    #[must_use]
    pub fn cursor_millis(&self) -> u64 {
        self.cursor_millis
    }

    fn push(&mut self, at_millis: u64, event: ScenarioEvent) {
        self.events.push((at_millis, event));
    }

    /// Cold-launch `app` at the cursor.
    #[must_use]
    pub fn launch(mut self, app: AppName) -> Self {
        self.push(self.cursor_millis, ScenarioEvent::Launch(app));
        self
    }

    /// Background `app` at the cursor.
    #[must_use]
    pub fn background(mut self, app: AppName) -> Self {
        self.push(self.cursor_millis, ScenarioEvent::Background(app));
        self
    }

    /// Relaunch `app` at the cursor, replaying relaunch trace `index`.
    #[must_use]
    pub fn relaunch(mut self, app: AppName, index: usize) -> Self {
        self.push(
            self.cursor_millis,
            ScenarioEvent::Relaunch {
                app,
                relaunch_index: index,
            },
        );
        self
    }

    /// Insert an idle pause of `millis` at the cursor and advance the cursor
    /// past it.
    #[must_use]
    pub fn idle(mut self, millis: u64) -> Self {
        self.push(self.cursor_millis, ScenarioEvent::Idle { millis });
        self.cursor_millis += millis;
        self
    }

    /// Inject a memory-pressure spike at the cursor reclaiming `dram_percent`
    /// of the resident anonymous data.
    #[must_use]
    pub fn pressure(mut self, dram_percent: u8) -> Self {
        self.push(
            self.cursor_millis,
            ScenarioEvent::Pressure {
                dram_percent: dram_percent.min(100),
            },
        );
        self
    }

    /// Launch storm: each app in `apps` is launched `stagger_millis` after
    /// the previous one and backgrounded two stagger periods after its own
    /// launch, so consecutive lifetimes overlap. The cursor ends after the
    /// last background.
    #[must_use]
    pub fn launch_storm(mut self, apps: &[AppName], stagger_millis: u64) -> Self {
        let start = self.cursor_millis;
        let mut last = start;
        for (i, &app) in apps.iter().enumerate() {
            let at = start + i as u64 * stagger_millis;
            self.push(at, ScenarioEvent::Launch(app));
            let bg_at = at + 2 * stagger_millis;
            self.push(bg_at, ScenarioEvent::Background(app));
            last = last.max(bg_at);
        }
        self.cursor_millis = last;
        self
    }

    /// Background churn: for `rounds` rounds, each app in `apps` is
    /// relaunched (cycling through its relaunch traces) and backgrounded
    /// half a period later, with app *i + 1*'s relaunch landing before app
    /// *i*'s background so the timelines interleave.
    #[must_use]
    pub fn background_churn(mut self, apps: &[AppName], period_millis: u64, rounds: usize) -> Self {
        let start = self.cursor_millis;
        let mut last = start;
        for round in 0..rounds {
            for (i, &app) in apps.iter().enumerate() {
                let at = start + (round * apps.len() + i) as u64 * period_millis;
                self.push(
                    at,
                    ScenarioEvent::Relaunch {
                        app,
                        relaunch_index: round % 5,
                    },
                );
                let bg_at = at + period_millis + period_millis / 2;
                self.push(bg_at, ScenarioEvent::Background(app));
                last = last.max(bg_at);
            }
        }
        self.cursor_millis = last;
        self
    }

    /// Relaunch `app` at the cursor *while* a pressure spike of
    /// `dram_percent` lands at the same instant (the spike is injected
    /// first; the tie-breaking rule keeps that order deterministic).
    #[must_use]
    pub fn relaunch_under_pressure(self, app: AppName, index: usize, dram_percent: u8) -> Self {
        self.pressure(dram_percent).relaunch(app, index)
    }

    /// Pressure wave: `count` spikes of `dram_percent` each, spaced
    /// `interval_millis` apart, starting at the cursor. The cursor ends on
    /// the last spike. Sustained waves are the knob that keeps a
    /// writeback-capable scheme's flash queue busy (each spike squeezes
    /// resident data into the zpool, which overflows to flash), so
    /// I/O-heavy scenarios compose this with concurrent relaunches.
    #[must_use]
    pub fn pressure_wave(mut self, count: usize, interval_millis: u64, dram_percent: u8) -> Self {
        let start = self.cursor_millis;
        for i in 0..count {
            let at = start + i as u64 * interval_millis;
            self.push(
                at,
                ScenarioEvent::Pressure {
                    dram_percent: dram_percent.min(100),
                },
            );
            self.cursor_millis = at;
        }
        self
    }

    /// Memory hog: `app` cold-launches in the foreground and then allocates
    /// aggressively — `bursts` pressure spikes of `dram_percent`, spaced
    /// `interval_millis` apart (a camera burst, a game loading level data).
    /// This is the pattern that drives the system past what the zpool can
    /// absorb. The cursor ends on the last burst.
    #[must_use]
    pub fn memory_hog(
        self,
        app: AppName,
        bursts: usize,
        interval_millis: u64,
        dram_percent: u8,
    ) -> Self {
        self.launch(app)
            .after_millis(interval_millis)
            .pressure_wave(bursts, interval_millis, dram_percent)
    }

    /// Rapid dirty/clean flip loop: for `rounds` rounds each app in `apps`
    /// is relaunched (dirtying its hot set) and backgrounded a quarter
    /// period later (letting reclaim clean/compress it again), in a tight
    /// cycle. This is the adversarial pattern that pushes the same pages
    /// through compress/decompress over and over without creating any new
    /// data — a compression-savings oracle must not count those pages
    /// again on every lap. The cursor ends after the last background.
    #[must_use]
    pub fn flip_loop(mut self, apps: &[AppName], period_millis: u64, rounds: usize) -> Self {
        let start = self.cursor_millis;
        let mut last = start;
        for round in 0..rounds {
            for (i, &app) in apps.iter().enumerate() {
                let at = start + (round * apps.len() + i) as u64 * period_millis;
                self.push(
                    at,
                    ScenarioEvent::Relaunch {
                        app,
                        relaunch_index: round % 5,
                    },
                );
                let bg_at = at + (period_millis / 4).max(1);
                self.push(bg_at, ScenarioEvent::Background(app));
                last = last.max(bg_at);
            }
        }
        self.cursor_millis = last;
        self
    }

    /// Hog-then-exit cycles: `cycles` times, `hog` comes to the foreground
    /// (an implicit cold launch the first time), allocates in two critical
    /// bursts of `dram_percent`, and leaves again — the pattern that
    /// squeezes cached apps out and then releases the hog's own pages while
    /// writeback of its victims may still be in flight. The cursor ends
    /// half an interval after the last exit.
    #[must_use]
    pub fn hog_exit_cycles(
        mut self,
        hog: AppName,
        cycles: usize,
        interval_millis: u64,
        dram_percent: u8,
    ) -> Self {
        for cycle in 0..cycles {
            self = self
                .relaunch(hog, cycle % 5)
                .after_millis(interval_millis)
                .pressure_wave(2, interval_millis, dram_percent)
                .after_millis(interval_millis)
                .background(hog)
                .after_millis((interval_millis / 2).max(1));
        }
        self
    }

    /// Long-horizon repetition: emit `count` blocks, the *i*-th generated by
    /// `block(builder, i)` with the cursor reset to `i × period_millis`
    /// past the current cursor. Simulated time spans hours or days while
    /// the emitted event stream stays proportional to `count` — idle gaps
    /// between blocks cost nothing to replay, which is what makes
    /// device-lifetime scenarios tractable.
    #[must_use]
    pub fn repeat_blocks<F>(mut self, count: u64, period_millis: u64, block: F) -> Self
    where
        F: Fn(Self, u64) -> Self,
    {
        let start = self.cursor_millis;
        for i in 0..count {
            self = block(self.at_millis(start + i * period_millis), i);
        }
        self
    }

    /// Kill storm: launch `apps` in an overlapping storm (filling memory),
    /// then let `hog` squeeze them out with three critical allocation
    /// bursts of `dram_percent` — and arm the low-memory killer, so schemes
    /// that cannot absorb the pressure see their cached apps killed and pay
    /// cold launches on the next relaunch. The cursor ends on the hog's
    /// last burst.
    #[must_use]
    pub fn kill_storm(
        self,
        apps: &[AppName],
        hog: AppName,
        stagger_millis: u64,
        dram_percent: u8,
    ) -> Self {
        self.launch_storm(apps, stagger_millis)
            .after_millis(stagger_millis)
            .memory_hog(hog, 3, stagger_millis, dram_percent)
            .with_lmkd()
    }

    /// Allow the engine to schedule deferred background work (writeback
    /// flushes, pre-decompression drains) for this scenario.
    #[must_use]
    pub fn with_background_drains(mut self) -> Self {
        self.background_drains = true;
        self
    }

    /// Arm the low-memory killer for this scenario: the engine samples
    /// PSI-style pressure after app events and may kill cached apps.
    #[must_use]
    pub fn with_lmkd(mut self) -> Self {
        self.lmkd = true;
        self
    }

    /// Finish the scenario: events are stably sorted by timestamp, so
    /// same-instant events keep their insertion order.
    #[must_use]
    pub fn build(self) -> TimedScenario {
        let mut events = self.events;
        events.sort_by_key(|(at, _)| *at);
        TimedScenario {
            name: self.name,
            kind: self.kind,
            events: events
                .into_iter()
                .map(|(at, event)| TimedEvent {
                    at_nanos: u128::from(at) * NANOS_PER_MILLI,
                    event,
                })
                .collect(),
            background_drains: self.background_drains,
            lmkd: self.lmkd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_stamps_events_at_the_cursor() {
        let scenario = ScenarioBuilder::new("t")
            .launch(AppName::Twitter)
            .after_millis(100)
            .background(AppName::Twitter)
            .at_millis(50)
            .pressure(10)
            .build();
        assert_eq!(scenario.events.len(), 3);
        // Sorted by time: launch@0, pressure@50, background@100.
        assert_eq!(scenario.events[0].at_millis(), 0);
        assert!(matches!(
            scenario.events[1].event,
            ScenarioEvent::Pressure { dram_percent: 10 }
        ));
        assert_eq!(scenario.events[2].at_millis(), 100);
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let scenario = ScenarioBuilder::new("ties")
            .relaunch_under_pressure(AppName::Youtube, 0, 30)
            .build();
        assert_eq!(scenario.events[0].at_nanos, scenario.events[1].at_nanos);
        assert!(matches!(
            scenario.events[0].event,
            ScenarioEvent::Pressure { .. }
        ));
        assert!(matches!(
            scenario.events[1].event,
            ScenarioEvent::Relaunch { .. }
        ));
    }

    #[test]
    fn launch_storm_overlaps_lifetimes() {
        let apps = [AppName::Twitter, AppName::Youtube, AppName::TikTok];
        let scenario = ScenarioBuilder::new("storm")
            .launch_storm(&apps, 100)
            .build();
        assert!(scenario.has_overlap());
        assert_eq!(scenario.apps().len(), 3);
        // Youtube launches (t=100) before Twitter backgrounds (t=200).
        let youtube_launch = scenario
            .events
            .iter()
            .find(|e| matches!(e.event, ScenarioEvent::Launch(AppName::Youtube)))
            .unwrap();
        let twitter_bg = scenario
            .events
            .iter()
            .find(|e| matches!(e.event, ScenarioEvent::Background(AppName::Twitter)))
            .unwrap();
        assert!(youtube_launch.at_nanos < twitter_bg.at_nanos);
    }

    #[test]
    fn legacy_timeline_preserves_total_order() {
        let legacy = Scenario::relaunch_study(AppName::Twitter);
        let timed = legacy.timeline();
        assert_eq!(timed.events.len(), legacy.events.len());
        assert!(!timed.background_drains);
        for (i, timed_event) in timed.events.iter().enumerate() {
            assert_eq!(timed_event.at_nanos, i as u128);
            assert_eq!(timed_event.event, legacy.events[i]);
        }
    }

    #[test]
    fn legacy_scenarios_do_not_overlap_but_the_storm_does() {
        assert!(!Scenario::relaunch_study(AppName::Edge)
            .timeline()
            .has_overlap());
        assert!(!Scenario::light_switching(1).timeline().has_overlap());
        let storm = TimedScenario::concurrent_relaunch_storm();
        assert!(storm.has_overlap());
        assert!(storm.apps().len() >= 3);
        assert!(storm.relaunch_count() >= 3);
        assert!(storm.background_drains);
        assert!(storm
            .events
            .iter()
            .any(|e| matches!(e.event, ScenarioEvent::Pressure { .. })));
    }

    #[test]
    fn background_churn_interleaves_relaunches() {
        let apps = [AppName::Firefox, AppName::Edge];
        let scenario = ScenarioBuilder::new("churn")
            .background_churn(&apps, 200, 2)
            .build();
        assert_eq!(scenario.relaunch_count(), 4);
        // Edge's first relaunch (t=200) lands before Firefox's background
        // (t=300): the timelines interleave.
        let edge_relaunch = scenario
            .events
            .iter()
            .find(|e| {
                matches!(
                    e.event,
                    ScenarioEvent::Relaunch {
                        app: AppName::Edge,
                        ..
                    }
                )
            })
            .unwrap();
        let firefox_bg = scenario
            .events
            .iter()
            .find(|e| matches!(e.event, ScenarioEvent::Background(AppName::Firefox)))
            .unwrap();
        assert!(edge_relaunch.at_nanos < firefox_bg.at_nanos);
    }

    #[test]
    fn pressure_wave_emits_evenly_spaced_spikes() {
        let scenario = ScenarioBuilder::new("wave")
            .at_millis(100)
            .pressure_wave(3, 50, 25)
            .build();
        let spikes: Vec<u64> = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { dram_percent: 25 }))
            .map(TimedEvent::at_millis)
            .collect();
        assert_eq!(spikes, vec![100, 150, 200]);
    }

    #[test]
    fn writeback_storm_is_io_heavy_and_concurrent() {
        let storm = TimedScenario::writeback_storm();
        assert!(storm.has_overlap());
        assert!(storm.background_drains);
        assert!(storm.relaunch_count() >= 3);
        let spikes = storm
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { .. }))
            .count();
        assert!(spikes >= 4, "a writeback storm needs a pressure wave");
        // One relaunch lands at the same instant as a critical spike, so its
        // faults race the flush commands the spike just submitted.
        assert!(storm.events.windows(2).any(|w| {
            matches!(w[0].event, ScenarioEvent::Pressure { dram_percent } if dram_percent >= 50)
                && matches!(w[1].event, ScenarioEvent::Relaunch { .. })
                && w[0].at_nanos == w[1].at_nanos
        }));
    }

    #[test]
    fn memory_hog_launches_then_bursts() {
        let scenario = ScenarioBuilder::new("hog")
            .memory_hog(AppName::BangDream, 3, 100, 60)
            .build();
        assert!(matches!(
            scenario.events[0].event,
            ScenarioEvent::Launch(AppName::BangDream)
        ));
        let spikes: Vec<u64> = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { dram_percent: 60 }))
            .map(TimedEvent::at_millis)
            .collect();
        assert_eq!(spikes, vec![100, 200, 300]);
        assert!(!scenario.lmkd, "memory_hog alone does not arm lmkd");
    }

    #[test]
    fn kill_storm_combinator_arms_lmkd_over_a_storm_and_hog() {
        let apps = [AppName::Twitter, AppName::Youtube];
        let scenario = ScenarioBuilder::new("ks")
            .kill_storm(&apps, AppName::BangDream, 100, 50)
            .build();
        assert!(scenario.lmkd);
        assert!(scenario.has_overlap());
        assert!(scenario
            .events
            .iter()
            .any(|e| matches!(e.event, ScenarioEvent::Launch(AppName::BangDream))));
        assert!(scenario
            .events
            .iter()
            .any(|e| matches!(e.event, ScenarioEvent::Pressure { dram_percent: 50 })));
    }

    #[test]
    fn kill_storm_preset_relaunches_every_stormed_app() {
        let storm = TimedScenario::kill_storm();
        assert!(storm.lmkd);
        assert!(storm.background_drains);
        assert!(storm.has_overlap());
        assert!(storm.apps().len() >= 7, "six stormed apps plus the hog");
        // The relaunch sweep revisits all six stormed apps (the churn adds
        // more), and the sweep lands after the hog's last pressure burst.
        assert!(storm.relaunch_count() >= 6);
        let last_spike = storm
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { .. }))
            .map(|e| e.at_nanos)
            .max()
            .unwrap();
        let last_relaunch = storm
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Relaunch { .. }))
            .map(|e| e.at_nanos)
            .max()
            .unwrap();
        assert!(last_relaunch > last_spike);
    }

    #[test]
    fn flip_loop_relaunches_and_backgrounds_in_tight_cycles() {
        let apps = [AppName::Twitter, AppName::Youtube];
        let scenario = ScenarioBuilder::new("flip").flip_loop(&apps, 80, 3).build();
        assert_eq!(scenario.relaunch_count(), 6);
        let backgrounds = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Background(_)))
            .count();
        assert_eq!(backgrounds, 6);
        // Each background lands a quarter period after its relaunch — the
        // flip is far faster than the churn combinator's half-period dwell.
        let first_relaunch = scenario
            .events
            .iter()
            .find(|e| matches!(e.event, ScenarioEvent::Relaunch { .. }))
            .unwrap();
        let first_bg = scenario
            .events
            .iter()
            .find(|e| matches!(e.event, ScenarioEvent::Background(_)))
            .unwrap();
        assert_eq!(
            first_bg.at_nanos - first_relaunch.at_nanos,
            20 * 1_000_000,
            "dirty/clean flip must be a quarter period"
        );
    }

    #[test]
    fn hog_exit_cycles_interleave_pressure_with_foreground_time() {
        let scenario = ScenarioBuilder::new("hog-exit")
            .hog_exit_cycles(AppName::BangDream, 3, 100, 50)
            .build();
        // Three cycles: one relaunch, two spikes and one background each.
        assert_eq!(scenario.relaunch_count(), 3);
        let spikes = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { dram_percent: 50 }))
            .count();
        assert_eq!(spikes, 6);
        let exits = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Background(AppName::BangDream)))
            .count();
        assert_eq!(exits, 3);
    }

    #[test]
    fn repeat_blocks_pins_each_block_to_its_period() {
        let scenario = ScenarioBuilder::new("blocks")
            .at_millis(500)
            .repeat_blocks(3, 10_000, |b, i| b.after_millis(i).pressure(10))
            .build();
        let spikes: Vec<u64> = scenario
            .events
            .iter()
            .filter(|e| matches!(e.event, ScenarioEvent::Pressure { .. }))
            .map(TimedEvent::at_millis)
            .collect();
        assert_eq!(spikes, vec![500, 10_501, 20_502]);
    }

    #[test]
    fn lifetime_scenarios_span_hours_with_compressed_event_streams() {
        use crate::profiles::AdversarialMix;
        for mix in AdversarialMix::ALL {
            let scenario = TimedScenario::lifetime(mix, 6);
            assert!(scenario.lmkd, "{mix}: the killer must be armed");
            assert!(scenario.background_drains);
            assert!(scenario.has_overlap());
            // Five full hour boundaries passed: at least 5 simulated hours.
            assert!(
                scenario.duration_millis() >= 5 * 3_600_000,
                "{mix}: only {} ms simulated",
                scenario.duration_millis()
            );
            // Compressed emission: hours of simulated time, yet only a
            // bounded stream of events (not per-tick emission).
            assert!(
                scenario.events.len() < 600,
                "{mix}: {} events is not compressed emission",
                scenario.events.len()
            );
            // Every hour ends in a relaunch sweep over the six stormed apps.
            assert!(scenario.relaunch_count() >= 6 * 6);
        }
    }

    #[test]
    fn baseline_and_incompressible_lifetime_mixes_share_one_event_stream() {
        use crate::profiles::AdversarialMix;
        let baseline = TimedScenario::lifetime(AdversarialMix::Baseline, 4);
        let hostile = TimedScenario::lifetime(AdversarialMix::Incompressible, 4);
        assert_eq!(baseline.events, hostile.events);
        assert_ne!(baseline.name, hostile.name);
    }

    #[test]
    fn legacy_timelines_never_arm_lmkd() {
        assert!(!Scenario::relaunch_study(AppName::Edge).timeline().lmkd);
        assert!(!TimedScenario::concurrent_relaunch_storm().lmkd);
        assert!(!TimedScenario::writeback_storm().lmkd);
    }

    #[test]
    fn pressure_percent_is_clamped() {
        let scenario = ScenarioBuilder::new("clamp").pressure(250).build();
        assert!(matches!(
            scenario.events[0].event,
            ScenarioEvent::Pressure { dram_percent: 100 }
        ));
    }
}
