//! Sequential-access locality: generating it and measuring it.
//!
//! Insight 3 of the paper: during application relaunch, swap-in accesses to
//! the zpool show spatial locality — the probability of touching two
//! consecutive zpool pages is 0.61–0.86 depending on the application, and
//! the probability of touching four consecutive pages is noticeably lower
//! (Table 3). [`RunLengthSampler`] produces access runs whose statistics hit
//! those two anchors, and [`measure_consecutive_probability`] recomputes the
//! Table 3 metric from any access stream so experiments can verify it.

use rand::Rng;

/// Samples how long the next sequential run of accesses should be so that
/// the generated stream reproduces a target P(2 consecutive) and
/// P(4 consecutive) *as measured over sliding windows of the access stream*
/// (the way [`measure_consecutive_probability`] and the paper's Table 3
/// evaluate it).
///
/// The run-length distribution has two continuation probabilities: `c1`
/// applies after the first access of a run, `c_rest` after every later
/// access. For a stream concatenated from such runs the window-based
/// probabilities are approximately `P(2) = x / (1 + x)` with
/// `x = c1 / (1 - c_rest)`, and `P(4) = P(2) * c_rest^2`; inverting those
/// formulas lets both Table 3 columns be matched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunLengthSampler {
    c1: f64,
    c_rest: f64,
    target_p2: f64,
    target_p4: f64,
    max_run: usize,
}

impl RunLengthSampler {
    /// Build a sampler targeting `p2 = P(2 consecutive)` and
    /// `p4 = P(4 consecutive)`.
    ///
    /// Probabilities are clamped into `[0.01, 0.99]`; `p4` is additionally
    /// clamped to be at most `p2` (the probabilities are nested events).
    #[must_use]
    pub fn from_probabilities(p2: f64, p4: f64) -> Self {
        let p2 = p2.clamp(0.01, 0.99);
        let p4 = p4.clamp(0.005, p2);
        let c_rest = (p4 / p2).sqrt().clamp(0.01, 0.99);
        // p2 = x / (1 + x) with x = c1 / (1 - c_rest)  =>  c1 = (1 - c_rest) * p2 / (1 - p2).
        let c1 = ((1.0 - c_rest) * p2 / (1.0 - p2)).clamp(0.01, 0.99);
        RunLengthSampler {
            c1,
            c_rest,
            target_p2: p2,
            target_p4: p4,
            max_run: 256,
        }
    }

    /// Sample the length (>= 1) of the next sequential run.
    pub fn sample_run<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut len = 1usize;
        if rng.gen_bool(self.c1) {
            len += 1;
            while len < self.max_run && rng.gen_bool(self.c_rest) {
                len += 1;
            }
        }
        len
    }

    /// The target probability of two consecutive accesses.
    #[must_use]
    pub fn p2(&self) -> f64 {
        self.target_p2
    }

    /// The target probability of four consecutive accesses.
    #[must_use]
    pub fn p4(&self) -> f64 {
        self.target_p4
    }
}

/// The fraction of positions in `sequence` at which `n` consecutive values
/// appear (each value exactly one greater than the previous) — the metric of
/// the paper's Table 3, computed over zpool sector numbers.
///
/// Returns 0.0 for sequences shorter than `n`.
#[must_use]
pub fn measure_consecutive_probability(sequence: &[u64], n: usize) -> f64 {
    if n < 2 || sequence.len() < n {
        return 0.0;
    }
    let windows = sequence.len() - n + 1;
    let mut hits = 0usize;
    for window in sequence.windows(n) {
        if window.windows(2).all(|pair| pair[1] == pair[0] + 1) {
            hits += 1;
        }
    }
    hits as f64 / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_reproduces_both_anchors() {
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = RunLengthSampler::from_probabilities(0.86, 0.72);
        // Build a long synthetic access stream out of sampled runs.
        let mut stream = Vec::new();
        let mut next = 0u64;
        while stream.len() < 200_000 {
            let run = sampler.sample_run(&mut rng);
            for _ in 0..run {
                stream.push(next);
                next += 1;
            }
            next += 10; // break the run
        }
        let p2 = measure_consecutive_probability(&stream, 2);
        let p4 = measure_consecutive_probability(&stream, 4);
        assert!((p2 - 0.86).abs() < 0.04, "p2 {p2}");
        assert!((p4 - 0.72).abs() < 0.06, "p4 {p4}");
    }

    #[test]
    fn low_locality_apps_get_short_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = RunLengthSampler::from_probabilities(0.61, 0.33);
        let mean: f64 = (0..10_000)
            .map(|_| sampler.sample_run(&mut rng) as f64)
            .sum::<f64>()
            / 10_000.0;
        let high = RunLengthSampler::from_probabilities(0.86, 0.72);
        let mean_high: f64 = (0..10_000)
            .map(|_| high.sample_run(&mut rng) as f64)
            .sum::<f64>()
            / 10_000.0;
        assert!(mean_high > mean, "{mean_high} vs {mean}");
    }

    #[test]
    fn targets_are_reported_back() {
        let sampler = RunLengthSampler::from_probabilities(0.8, 0.5);
        assert!((sampler.p2() - 0.8).abs() < 1e-12);
        assert!((sampler.p4() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table3_anchors_for_a_low_locality_app_are_reproduced() {
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = RunLengthSampler::from_probabilities(0.61, 0.33);
        let mut stream = Vec::new();
        let mut next = 0u64;
        while stream.len() < 200_000 {
            let run = sampler.sample_run(&mut rng);
            for _ in 0..run {
                stream.push(next);
                next += 1;
            }
            next += 10;
        }
        let p2 = measure_consecutive_probability(&stream, 2);
        let p4 = measure_consecutive_probability(&stream, 4);
        assert!((p2 - 0.61).abs() < 0.05, "p2 {p2}");
        assert!((p4 - 0.33).abs() < 0.06, "p4 {p4}");
    }

    #[test]
    fn p4_larger_than_p2_is_clamped() {
        let sampler = RunLengthSampler::from_probabilities(0.5, 0.9);
        assert!(sampler.p4() <= sampler.p2() + 1e-12);
    }

    #[test]
    fn measurement_on_known_sequences() {
        // Perfectly sequential.
        let seq: Vec<u64> = (0..100).collect();
        assert!((measure_consecutive_probability(&seq, 2) - 1.0).abs() < 1e-12);
        assert!((measure_consecutive_probability(&seq, 4) - 1.0).abs() < 1e-12);
        // No locality at all.
        let scattered: Vec<u64> = (0..100).map(|i| i * 10).collect();
        assert_eq!(measure_consecutive_probability(&scattered, 2), 0.0);
        // Too short.
        assert_eq!(measure_consecutive_probability(&[1, 2], 4), 0.0);
    }
}
