//! Flat trace records, mirroring the format described in §5 of the paper.
//!
//! "A trace is composed of the page frame number (PFN), ZRAM sector, source
//! application number (UID), and page data that needs to be compressed,
//! swapped-in or swapped-out." [`TraceRecord`] carries exactly those fields
//! (page data by deterministic reference, not by value — the bytes can be
//! regenerated from the [`crate::PageDataGenerator`]).

use ariadne_mem::{PageId, Pfn};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The swap operation a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceOp {
    /// The page was selected for compression (swap-out).
    SwapOut,
    /// The page was faulted back in (swap-in / decompression).
    SwapIn,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceOp::SwapOut => "swap-out",
            TraceOp::SwapIn => "swap-in",
        })
    }
}

/// One record of a swap trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Source application (Android UID).
    pub uid: u32,
    /// Page frame number within the application.
    pub pfn: Pfn,
    /// ZRAM sector the compressed data was stored at (0 if not yet stored).
    pub sector: u64,
    /// The operation.
    pub op: TraceOp,
}

impl TraceRecord {
    /// Create a record for `page`.
    #[must_use]
    pub fn new(page: PageId, sector: u64, op: TraceOp) -> Self {
        TraceRecord {
            uid: page.app().value(),
            pfn: page.pfn(),
            sector,
            op,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} uid={} {} sector={}",
            self.op, self.uid, self.pfn, self.sector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::AppId;

    #[test]
    fn record_captures_page_identity() {
        let page = PageId::new(AppId::new(10_001), Pfn::new(42));
        let record = TraceRecord::new(page, 7, TraceOp::SwapOut);
        assert_eq!(record.uid, 10_001);
        assert_eq!(record.pfn, Pfn::new(42));
        assert_eq!(record.sector, 7);
        assert_eq!(record.op, TraceOp::SwapOut);
    }

    #[test]
    fn display_is_grep_friendly() {
        let page = PageId::new(AppId::new(3), Pfn::new(5));
        let text = TraceRecord::new(page, 9, TraceOp::SwapIn).to_string();
        assert!(text.contains("swap-in") && text.contains("sector=9"));
    }
}
