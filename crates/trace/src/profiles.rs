//! Per-application workload profiles, calibrated to the paper's published
//! characterization of the ten evaluated applications.

use ariadne_compress::CostNanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ten applications evaluated in the paper (§5, "Workloads").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AppName {
    Youtube,
    Twitter,
    Firefox,
    GoogleEarth,
    BangDream,
    TikTok,
    Edge,
    GoogleMaps,
    AngryBirds,
    TwitchTv,
}

impl AppName {
    /// All ten applications, in the order used by the paper's figures (the
    /// five reported in most figures first).
    pub const ALL: [AppName; 10] = [
        AppName::Youtube,
        AppName::Twitter,
        AppName::Firefox,
        AppName::GoogleEarth,
        AppName::BangDream,
        AppName::TikTok,
        AppName::Edge,
        AppName::GoogleMaps,
        AppName::AngryBirds,
        AppName::TwitchTv,
    ];

    /// The five applications whose results the paper reports in Figures
    /// 10–13 and 15 ("five randomly selected applications for readability").
    pub const REPORTED: [AppName; 5] = [
        AppName::Youtube,
        AppName::Twitter,
        AppName::Firefox,
        AppName::GoogleEarth,
        AppName::BangDream,
    ];

    /// Human-readable name matching the paper's figures.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AppName::Youtube => "Youtube",
            AppName::Twitter => "Twitter",
            AppName::Firefox => "Firefox",
            AppName::GoogleEarth => "GEarth",
            AppName::BangDream => "BangDream",
            AppName::TikTok => "TikTok",
            AppName::Edge => "Edge",
            AppName::GoogleMaps => "GMaps",
            AppName::AngryBirds => "AngryBirds",
            AppName::TwitchTv => "TwitchTV",
        }
    }

    /// A stable numeric identifier (used as the Android UID in traces).
    #[must_use]
    pub fn uid(self) -> u32 {
        match self {
            AppName::Youtube => 10_001,
            AppName::Twitter => 10_002,
            AppName::Firefox => 10_003,
            AppName::GoogleEarth => 10_004,
            AppName::BangDream => 10_005,
            AppName::TikTok => 10_006,
            AppName::Edge => 10_007,
            AppName::GoogleMaps => 10_008,
            AppName::AngryBirds => 10_009,
            AppName::TwitchTv => 10_010,
        }
    }

    /// The calibrated workload profile for this application.
    #[must_use]
    pub fn profile(self) -> AppProfile {
        AppProfile::for_app(self)
    }
}

impl fmt::Display for AppName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Statistical description of one application's anonymous-data behaviour.
///
/// The five applications named in the paper's Table 1 / Table 3 / Figure 5
/// carry the published numbers; the remaining five carry representative
/// estimates consistent with the paper's averages (70 % hot-data similarity,
/// 98 % reuse).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Which application this is.
    pub name: AppName,
    /// Anonymous data volume 10 seconds after launch, in MB (Table 1).
    pub anon_mb_10s: u32,
    /// Anonymous data volume 5 minutes after launch, in MB (Table 1).
    pub anon_mb_5min: u32,
    /// Fraction of anonymous data that is hot (used during relaunch).
    pub hot_fraction: f64,
    /// Fraction of anonymous data that is warm (used during execution).
    pub warm_fraction: f64,
    /// Fraction of hot data shared between consecutive relaunches (Fig. 5).
    pub hot_similarity: f64,
    /// Fraction of one relaunch's hot data present in the next relaunch's
    /// hot or warm set (Fig. 5, "Reused Data").
    pub reuse_fraction: f64,
    /// Probability that the page after the current one (by zpool sector) is
    /// accessed next during swap-in (Table 3, N = 2).
    pub locality_2: f64,
    /// Probability of four consecutive pages being accessed (Table 3, N = 4).
    pub locality_4: f64,
    /// Relative weight of media-like (high-entropy) content in this app's
    /// pages; games and video apps carry more incompressible data.
    pub media_weight: f64,
}

impl AppProfile {
    /// The calibrated profile for `app`.
    #[must_use]
    pub fn for_app(app: AppName) -> Self {
        // Columns: 10s MB, 5min MB, hot, warm, similarity, reuse, p2, p4, media.
        let (s10, s5m, hot, warm, sim, reuse, p2, p4, media) = match app {
            AppName::Youtube => (177, 358, 0.28, 0.30, 0.74, 0.98, 0.86, 0.72, 0.35),
            AppName::Twitter => (182, 273, 0.30, 0.32, 0.72, 0.98, 0.81, 0.61, 0.25),
            AppName::Firefox => (560, 716, 0.22, 0.30, 0.68, 0.97, 0.69, 0.43, 0.30),
            AppName::GoogleEarth => (273, 429, 0.25, 0.28, 0.70, 0.98, 0.77, 0.54, 0.40),
            AppName::BangDream => (326, 821, 0.12, 0.25, 0.62, 0.97, 0.61, 0.33, 0.55),
            AppName::TikTok => (240, 520, 0.24, 0.30, 0.71, 0.98, 0.78, 0.55, 0.45),
            AppName::Edge => (210, 330, 0.28, 0.32, 0.73, 0.98, 0.80, 0.58, 0.22),
            AppName::GoogleMaps => (260, 450, 0.26, 0.30, 0.69, 0.98, 0.75, 0.50, 0.35),
            AppName::AngryBirds => (190, 400, 0.18, 0.27, 0.66, 0.97, 0.70, 0.42, 0.50),
            AppName::TwitchTv => (230, 480, 0.25, 0.30, 0.72, 0.98, 0.79, 0.56, 0.40),
        };
        AppProfile {
            name: app,
            anon_mb_10s: s10,
            anon_mb_5min: s5m,
            hot_fraction: hot,
            warm_fraction: warm,
            hot_similarity: sim,
            reuse_fraction: reuse,
            locality_2: p2,
            locality_4: p4,
            media_weight: media,
        }
    }

    /// Fraction of anonymous data that is cold.
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        (1.0 - self.hot_fraction - self.warm_fraction).max(0.0)
    }

    /// Anonymous data volume in bytes after the app has run for a while
    /// (the 5-minute figure, which the multi-app scenarios use).
    #[must_use]
    pub fn anon_bytes_5min(&self) -> usize {
        self.anon_mb_5min as usize * 1024 * 1024
    }

    /// Anonymous data volume in bytes shortly after launch.
    #[must_use]
    pub fn anon_bytes_10s(&self) -> usize {
        self.anon_mb_10s as usize * 1024 * 1024
    }

    /// The adversarial *incompressible* variant of `app`'s profile: every
    /// page region is high-entropy media noise (`media_weight` = 1.0, which
    /// the page synthesiser treats as "all regions are [media]"), so no
    /// compressed-swap scheme can extract savings from this app's data. The
    /// calibrated profiles top out at 0.55, so the default workloads are
    /// untouched. Access statistics (hotness mix, similarity, locality)
    /// stay calibrated — only the *bytes* turn hostile.
    ///
    /// [media]: crate::ContentClass::Media
    #[must_use]
    pub fn incompressible(app: AppName) -> Self {
        AppProfile {
            media_weight: 1.0,
            ..AppProfile::for_app(app)
        }
    }

    /// Simulated cost of a full **cold** start at workload scale `scale`:
    /// process creation plus application initialisation (class loading,
    /// view inflation, first-frame rendering), which a warm relaunch skips
    /// entirely. This is what a kill costs the user on the next launch —
    /// the full-scale value is ~300 ms of fixed process/runtime setup plus
    /// ~2 ms per MB of the 10-second anonymous volume, in line with the
    /// cold-versus-warm gaps Android launch studies report. Like relaunch
    /// latencies, the cost scales with the workload denominator so
    /// full-scale numbers are recovered by multiplying by `scale`.
    #[must_use]
    pub fn cold_start_cost(&self, scale: usize) -> CostNanos {
        let full = 300_000_000u128 + u128::from(self.anon_mb_10s) * 2_000_000;
        CostNanos(full / scale.max(1) as u128)
    }
}

/// A compact, copyable set of applications (one bit per [`AppName::ALL`]
/// entry). Configuration types throughout the workspace are `Copy + Eq`
/// (so experiment cells can be compared and hashed); a mask keeps per-app
/// selections — such as "which apps carry incompressible data" — inside
/// that contract where a `HashSet<AppName>` could not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppMask {
    bits: u16,
}

impl AppMask {
    /// The empty mask.
    #[must_use]
    pub fn none() -> Self {
        AppMask { bits: 0 }
    }

    /// Every evaluated application.
    #[must_use]
    pub fn all() -> Self {
        AppMask::of(&AppName::ALL)
    }

    /// A mask containing exactly `apps`.
    #[must_use]
    pub fn of(apps: &[AppName]) -> Self {
        let mut mask = AppMask::none();
        for &app in apps {
            mask.bits |= 1 << Self::bit(app);
        }
        mask
    }

    fn bit(app: AppName) -> u16 {
        AppName::ALL
            .iter()
            .position(|&a| a == app)
            .map_or(0, |i| i as u16)
    }

    /// Whether `app` is in the mask.
    #[must_use]
    pub fn contains(&self, app: AppName) -> bool {
        self.bits & (1 << Self::bit(app)) != 0
    }

    /// Whether the mask is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The applications in the mask, in [`AppName::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = AppName> + '_ {
        AppName::ALL.into_iter().filter(|&a| self.contains(a))
    }
}

impl Default for AppMask {
    fn default() -> Self {
        AppMask::none()
    }
}

/// The adversarial workload mixes of the device-lifetime experiment: each
/// names a usage pattern chosen to hurt compressed swap in a specific way.
/// `Baseline` is the control — the same calibrated workload the rest of the
/// evaluation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdversarialMix {
    /// The calibrated workload, unchanged (the control column).
    Baseline,
    /// Every application's pages are high-entropy media noise: compression
    /// buys nothing, so zpool space is wasted and writeback volume grows.
    Incompressible,
    /// Rapid dirty/clean flip loops: applications are relaunched and
    /// backgrounded in tight cycles, forcing the same pages through
    /// compress/decompress over and over.
    FlipLoop,
    /// Hog-then-exit churn: a foreground hog allocates in critical bursts
    /// and exits, repeatedly — the kill-storm pattern that squeezes cached
    /// apps out and releases pages while writeback is still in flight.
    HogChurn,
}

impl AdversarialMix {
    /// Every mix, in the order the lifetime experiment grids them.
    pub const ALL: [AdversarialMix; 4] = [
        AdversarialMix::Baseline,
        AdversarialMix::Incompressible,
        AdversarialMix::FlipLoop,
        AdversarialMix::HogChurn,
    ];

    /// Table-friendly name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AdversarialMix::Baseline => "baseline",
            AdversarialMix::Incompressible => "incompressible",
            AdversarialMix::FlipLoop => "flip-loop",
            AdversarialMix::HogChurn => "hog-churn",
        }
    }

    /// Which applications carry adversarially incompressible page data
    /// under this mix (empty for every mix except `Incompressible`).
    #[must_use]
    pub fn incompressible_apps(self) -> AppMask {
        match self {
            AdversarialMix::Incompressible => AppMask::all(),
            _ => AppMask::none(),
        }
    }
}

impl fmt::Display for AdversarialMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_the_paper() {
        let yt = AppProfile::for_app(AppName::Youtube);
        assert_eq!((yt.anon_mb_10s, yt.anon_mb_5min), (177, 358));
        let bd = AppProfile::for_app(AppName::BangDream);
        assert_eq!((bd.anon_mb_10s, bd.anon_mb_5min), (326, 821));
        let ff = AppProfile::for_app(AppName::Firefox);
        assert_eq!((ff.anon_mb_10s, ff.anon_mb_5min), (560, 716));
    }

    #[test]
    fn table3_locality_values_match_the_paper() {
        let yt = AppProfile::for_app(AppName::Youtube);
        assert!((yt.locality_2 - 0.86).abs() < 1e-9);
        assert!((yt.locality_4 - 0.72).abs() < 1e-9);
        let bd = AppProfile::for_app(AppName::BangDream);
        assert!((bd.locality_2 - 0.61).abs() < 1e-9);
        assert!((bd.locality_4 - 0.33).abs() < 1e-9);
    }

    #[test]
    fn every_profile_is_internally_consistent() {
        for app in AppName::ALL {
            let p = app.profile();
            assert!(p.anon_mb_5min >= p.anon_mb_10s, "{app}: data must grow");
            assert!(p.hot_fraction > 0.0 && p.hot_fraction < 1.0);
            assert!(p.cold_fraction() > 0.0, "{app}: some data must be cold");
            assert!(p.hot_similarity > 0.5 && p.hot_similarity < 1.0);
            assert!(p.reuse_fraction > 0.9);
            assert!(p.locality_2 > p.locality_4, "{app}: p2 must exceed p4");
            assert!(p.media_weight >= 0.0 && p.media_weight <= 1.0);
        }
    }

    #[test]
    fn average_hot_similarity_is_about_seventy_percent() {
        let avg: f64 = AppName::ALL
            .iter()
            .map(|a| a.profile().hot_similarity)
            .sum::<f64>()
            / AppName::ALL.len() as f64;
        assert!((avg - 0.70).abs() < 0.03, "average similarity {avg}");
    }

    #[test]
    fn cold_start_cost_scales_and_tracks_data_volume() {
        let yt = AppProfile::for_app(AppName::Youtube);
        let full = yt.cold_start_cost(1);
        // 300 ms base + 177 MB * 2 ms.
        assert_eq!(full.as_nanos(), 300_000_000 + 177 * 2_000_000);
        assert_eq!(yt.cold_start_cost(64).as_nanos(), full.as_nanos() / 64);
        // Bigger apps cold-start slower.
        let ff = AppProfile::for_app(AppName::Firefox);
        assert!(ff.cold_start_cost(1) > yt.cold_start_cost(1));
    }

    #[test]
    fn uids_are_unique() {
        let mut uids: Vec<u32> = AppName::ALL.iter().map(|a| a.uid()).collect();
        uids.sort_unstable();
        uids.dedup();
        assert_eq!(uids.len(), 10);
    }

    #[test]
    fn reported_apps_are_a_subset_of_all() {
        for app in AppName::REPORTED {
            assert!(AppName::ALL.contains(&app));
        }
    }

    #[test]
    fn incompressible_profile_only_changes_the_media_weight() {
        for app in AppName::ALL {
            let base = app.profile();
            let hostile = AppProfile::incompressible(app);
            assert!((hostile.media_weight - 1.0).abs() < 1e-12);
            assert_eq!(
                AppProfile {
                    media_weight: base.media_weight,
                    ..hostile
                },
                base,
                "{app}: only media_weight may differ"
            );
        }
    }

    #[test]
    fn app_masks_select_exactly_their_members() {
        assert!(AppMask::none().is_empty());
        assert_eq!(AppMask::all().iter().count(), AppName::ALL.len());
        let mask = AppMask::of(&[AppName::Twitter, AppName::BangDream]);
        assert!(mask.contains(AppName::Twitter));
        assert!(mask.contains(AppName::BangDream));
        assert!(!mask.contains(AppName::Youtube));
        assert_eq!(
            mask.iter().collect::<Vec<_>>(),
            vec![AppName::Twitter, AppName::BangDream]
        );
    }

    #[test]
    fn only_the_incompressible_mix_poisons_page_data() {
        for mix in AdversarialMix::ALL {
            let apps = mix.incompressible_apps();
            if mix == AdversarialMix::Incompressible {
                assert_eq!(apps, AppMask::all());
            } else {
                assert!(apps.is_empty(), "{mix} must not alter page bytes");
            }
        }
    }

    #[test]
    fn bangdream_produces_the_least_hot_data() {
        // §6.1 singles out BangDream as the app with less hot data.
        let min = AppName::ALL
            .iter()
            .map(|a| a.profile().hot_fraction)
            .fold(f64::INFINITY, f64::min);
        assert!((AppName::BangDream.profile().hot_fraction - min).abs() < 1e-9);
    }
}
