//! The device-class catalog of the lifetime experiment.
//!
//! The paper evaluates on a single flagship (a Pixel 7 with 12 GB of DRAM
//! and UFS 3.1 flash), but compressed-swap policy differences are sharpest
//! where memory is scarce and flash is slow. [`DeviceClass`] captures the
//! two ends of the Android device spectrum as named parameter sets — DRAM
//! budget, zpool budget, swap-area size and flash speed class — which the
//! simulation layer translates into its memory configuration. The flagship
//! entry reproduces the workspace's default configuration *exactly*, so
//! selecting it is byte-identical to not selecting anything.

use ariadne_mem::FlashIoConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named point in the Android device spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A 2 GB entry-level device: a small anonymous-DRAM budget, a zpool
    /// sized to what such devices can spare, a small swap partition and
    /// eMMC-class flash (shallow queue, slow per-byte cost).
    Entry2Gb,
    /// A 12 GB flagship — the paper's Pixel 7: identical to
    /// `MemoryConfig::pixel7_scaled` plus UFS 3.1 flash.
    Flagship12Gb,
}

impl DeviceClass {
    /// Both device classes, entry first (the order the lifetime experiment
    /// grids them).
    pub const ALL: [DeviceClass; 2] = [DeviceClass::Entry2Gb, DeviceClass::Flagship12Gb];

    /// Table-friendly name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceClass::Entry2Gb => "entry-2gb",
            DeviceClass::Flagship12Gb => "flagship-12gb",
        }
    }

    /// DRAM budget for anonymous pages, in bytes, scaled down by `scale`
    /// (the same denominator the workload builder uses).
    #[must_use]
    pub fn dram_bytes(self, scale: usize) -> usize {
        let full = match self {
            // Of 2 GB, the system, file cache and GPU leave roughly 768 MB
            // to application anonymous data.
            DeviceClass::Entry2Gb => 768 * 1024 * 1024,
            // The workspace default: ~3 GB of the Pixel 7's 12 GB.
            DeviceClass::Flagship12Gb => 3 * 1024 * 1024 * 1024,
        };
        full / scale.max(1)
    }

    /// zpool budget in bytes (the paper's parameter `S`), scaled by `scale`.
    #[must_use]
    pub fn zpool_bytes(self, scale: usize) -> usize {
        let full = match self {
            // Entry devices cannot spare gigabytes of DRAM for compressed
            // swap; vendors configure a few hundred megabytes.
            DeviceClass::Entry2Gb => 512 * 1024 * 1024,
            DeviceClass::Flagship12Gb => 3 * 1024 * 1024 * 1024,
        };
        full / scale.max(1)
    }

    /// Flash swap-area capacity in bytes, scaled by `scale`.
    #[must_use]
    pub fn flash_swap_bytes(self, scale: usize) -> usize {
        let full = match self {
            DeviceClass::Entry2Gb => 2 * 1024 * 1024 * 1024,
            DeviceClass::Flagship12Gb => 8 * 1024 * 1024 * 1024,
        };
        full / scale.max(1)
    }

    /// The flash speed class: UFS 3.1 on the flagship, eMMC on the entry
    /// device.
    #[must_use]
    pub fn io(self) -> FlashIoConfig {
        match self {
            DeviceClass::Entry2Gb => FlashIoConfig::emmc(),
            DeviceClass::Flagship12Gb => FlashIoConfig::ufs31(),
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_entry_device_is_smaller_and_slower_in_every_dimension() {
        let entry = DeviceClass::Entry2Gb;
        let flagship = DeviceClass::Flagship12Gb;
        assert!(entry.dram_bytes(1) < flagship.dram_bytes(1));
        assert!(entry.zpool_bytes(1) < flagship.zpool_bytes(1));
        assert!(entry.flash_swap_bytes(1) < flagship.flash_swap_bytes(1));
        // eMMC pays more per byte than UFS 3.1.
        assert!(
            entry.io().write_command_cost(4096) > flagship.io().write_command_cost(4096),
            "eMMC must be slower than UFS"
        );
    }

    #[test]
    fn scaling_divides_every_budget() {
        for class in DeviceClass::ALL {
            assert_eq!(class.dram_bytes(64), class.dram_bytes(1) / 64);
            assert_eq!(class.zpool_bytes(64), class.zpool_bytes(1) / 64);
            assert_eq!(class.flash_swap_bytes(64), class.flash_swap_bytes(1) / 64);
            assert_eq!(class.dram_bytes(0), class.dram_bytes(1));
        }
    }

    #[test]
    fn the_flagship_matches_the_workspace_default_flash_model() {
        assert_eq!(DeviceClass::Flagship12Gb.io(), FlashIoConfig::ufs31());
        assert_ne!(DeviceClass::Entry2Gb.io(), FlashIoConfig::ufs31());
    }
}
