//! Synthetic anonymous-page content.
//!
//! Compression ratios in this workspace are *real*: the codecs compress real
//! bytes. Those bytes come from [`PageDataGenerator`], which synthesises page
//! contents with the structure the paper describes for mobile anonymous
//! data (§3, Insight 2): "an anonymous page contains multiple types of data
//! blocks, and similar types of data are gathered within a small region
//! (e.g., 128 B or 512 B)". Concretely each 4 KiB page is assembled from
//! 128 B regions, each region drawn from one of a handful of content classes
//! (zero-filled, pointer arrays, small counters, text-like bytes, structure
//! records, media noise). Regions are sampled from a small per-application
//! template pool, so redundancy exists both *within* a region (small-chunk
//! compression works) and *across* pages (large-chunk compression works even
//! better) — exactly the gradient Figure 6 reports.

use crate::profiles::AppProfile;
use ariadne_mem::{PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Size of one content region within a page.
pub const REGION_SIZE: usize = 128;

/// The kinds of data found in anonymous pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentClass {
    /// Untouched / zero-filled allocation.
    Zeros,
    /// Arrays of pointers into the same heap arena (large base, small delta).
    Pointers,
    /// Small integer counters and flags.
    SmallIntegers,
    /// UI strings, resource names, JSON-ish text.
    Text,
    /// Repeating structure records (object headers, vtable layouts).
    Records,
    /// Decoded media / already-compressed assets (high entropy).
    Media,
}

impl ContentClass {
    /// All content classes.
    pub const ALL: [ContentClass; 6] = [
        ContentClass::Zeros,
        ContentClass::Pointers,
        ContentClass::SmallIntegers,
        ContentClass::Text,
        ContentClass::Records,
        ContentClass::Media,
    ];
}

/// SplitMix64: a tiny, high-quality deterministic mixer. Using our own keeps
/// page bytes stable across `rand` versions and avoids seeding overhead per
/// page.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically synthesises the bytes of any page of any application.
///
/// ```
/// use ariadne_trace::{AppName, PageDataGenerator};
/// use ariadne_mem::{AppId, PageId, Pfn};
///
/// let generator = PageDataGenerator::new(42);
/// let page = PageId::new(AppId::new(AppName::Youtube.uid()), Pfn::new(7));
/// let a = generator.page_bytes(&AppName::Youtube.profile(), page);
/// let b = generator.page_bytes(&AppName::Youtube.profile(), page);
/// assert_eq!(a, b); // fully deterministic
/// assert_eq!(a.len(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageDataGenerator {
    seed: u64,
}

impl PageDataGenerator {
    /// Create a generator with the given global seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PageDataGenerator { seed }
    }

    /// The content class of the `region_index`-th 128 B region of `page`.
    #[must_use]
    pub fn region_class(
        &self,
        profile: &AppProfile,
        page: PageId,
        region_index: usize,
    ) -> ContentClass {
        // Adversarial hook: a profile with full media weight (see
        // `AppProfile::incompressible`) gets *only* high-entropy media
        // regions, so nothing about the page compresses. Calibrated profiles
        // top out at 0.55, so their pages are untouched by this branch.
        if profile.media_weight >= 1.0 {
            return ContentClass::Media;
        }
        let mut state = self
            .seed
            .wrapping_mul(0x243F_6A88_85A3_08D3)
            .wrapping_add(u64::from(page.app().value()))
            .wrapping_add(page.pfn().value().wrapping_mul(0x1000_0000_01B3))
            .wrapping_add(region_index as u64);
        let roll = splitmix64(&mut state) as f64 / u64::MAX as f64;
        // Media weight is per-app; the rest of the probability mass is split
        // across the structured classes in fixed proportions.
        let media = profile.media_weight * 0.6;
        let zeros = 0.10;
        let pointers = (1.0 - media - zeros) * 0.30;
        let small_ints = (1.0 - media - zeros) * 0.25;
        let text = (1.0 - media - zeros) * 0.25;
        if roll < zeros {
            ContentClass::Zeros
        } else if roll < zeros + pointers {
            ContentClass::Pointers
        } else if roll < zeros + pointers + small_ints {
            ContentClass::SmallIntegers
        } else if roll < zeros + pointers + small_ints + text {
            ContentClass::Text
        } else if roll < 1.0 - media {
            ContentClass::Records
        } else {
            ContentClass::Media
        }
    }

    /// Generate the 4 KiB contents of `page` for an application described by
    /// `profile`.
    ///
    /// Thin allocating wrapper over [`PageDataGenerator::fill_page_bytes`];
    /// hot paths (the compression oracle, the codec benchmarks) use the
    /// fill variant with a reused buffer instead.
    #[must_use]
    pub fn page_bytes(&self, profile: &AppProfile, page: PageId) -> Vec<u8> {
        let mut out = vec![0u8; PAGE_SIZE];
        let buf: &mut [u8; PAGE_SIZE] = out.as_mut_slice().try_into().expect("PAGE_SIZE buffer");
        self.fill_page_bytes(profile, page, buf);
        out
    }

    /// Synthesise the contents of `page` into a caller-provided buffer
    /// without allocating. Every byte of `out` is overwritten, so the buffer
    /// may be reused across calls; the bytes written are identical to what
    /// [`PageDataGenerator::page_bytes`] returns.
    pub fn fill_page_bytes(&self, profile: &AppProfile, page: PageId, out: &mut [u8; PAGE_SIZE]) {
        // Fully adversarial profiles (see `AppProfile::incompressible`) get
        // one continuous high-entropy stream over the whole page, keyed so
        // that no two pages ever share a run of bytes. The per-region Media
        // generator below reuses its keying across adjacent pages (region 31
        // of page p collides with region 0 of page p+1), which is harmless
        // noise for calibrated profiles but would hand large-chunk codecs
        // real cross-page matches — and the whole point of the adversarial
        // profile is that *nothing* compresses.
        if profile.media_weight >= 1.0 {
            // Hash the (seed, app, pfn) key through the mixer once so that
            // no two pages' streams are shifted copies of each other (the
            // raw key advances by a constant per pfn, exactly like the
            // stream's own step).
            let mut key = self
                .seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(u64::from(page.app().value()) << 32)
                .wrapping_add(page.pfn().value().wrapping_mul(0xFF51_AFD7_ED55_8CCD));
            let mut state = splitmix64(&mut key);
            for slot in 0..PAGE_SIZE / 8 {
                out[slot * 8..slot * 8 + 8].copy_from_slice(&splitmix64(&mut state).to_le_bytes());
            }
            return;
        }
        for region_index in 0..PAGE_SIZE / REGION_SIZE {
            let class = self.region_class(profile, page, region_index);
            // Template pooling: draw the region's template id from a small
            // per-app pool so identical regions recur across pages. This is
            // what gives large compression chunks their advantage.
            let mut state = self
                .seed
                .wrapping_add(u64::from(page.app().value()).wrapping_mul(0x9E37_79B9))
                .wrapping_add(page.pfn().value())
                .wrapping_add((region_index as u64) << 32);
            let template = splitmix64(&mut state) % 24;
            let region = &mut out[region_index * REGION_SIZE..(region_index + 1) * REGION_SIZE];
            self.fill_region(region, class, page, template, region_index);
        }
    }

    /// Total bytes of anonymous data generated for `pages` pages.
    #[must_use]
    pub fn bytes_for_pages(pages: usize) -> usize {
        pages * PAGE_SIZE
    }

    /// Write exactly [`REGION_SIZE`] bytes of `class`-typed content into
    /// `out` (a region-sized slice of the page buffer). Index-based writes
    /// keep the hot synthesis path free of intermediate allocations.
    fn fill_region(
        &self,
        out: &mut [u8],
        class: ContentClass,
        page: PageId,
        template: u64,
        region_index: usize,
    ) {
        debug_assert_eq!(out.len(), REGION_SIZE);
        let app_seed = u64::from(page.app().value());
        match class {
            ContentClass::Zeros => out.fill(0),
            ContentClass::Pointers => {
                // 16 pointers of 8 bytes: shared arena base per (app, template),
                // deltas grow with the slot index.
                let base = 0x7000_0000_0000u64
                    + (app_seed << 20)
                    + template * 0x10_0000
                    + (region_index as u64 % 4) * 0x800;
                for slot in 0..REGION_SIZE / 8 {
                    let ptr = base + (slot as u64) * 64 + (template % 8) * 8;
                    out[slot * 8..slot * 8 + 8].copy_from_slice(&ptr.to_le_bytes());
                }
            }
            ContentClass::SmallIntegers => {
                // 32 counters of 4 bytes, values near a small template base.
                let base = (template * 17 + 100) as u32;
                for slot in 0..REGION_SIZE / 4 {
                    let value = base + (slot as u32 % 7);
                    out[slot * 4..slot * 4 + 4].copy_from_slice(&value.to_le_bytes());
                }
            }
            ContentClass::Text => {
                const WORDS: [&[u8]; 8] = [
                    b"activity",
                    b"resource",
                    b"android.",
                    b"layout__",
                    b"string__",
                    b"view____",
                    b"binding_",
                    b"content_",
                ];
                let mut written = 0usize;
                let mut idx = template as usize;
                while written < REGION_SIZE {
                    let word = WORDS[idx % WORDS.len()];
                    let take = word.len().min(REGION_SIZE - written);
                    out[written..written + take].copy_from_slice(&word[..take]);
                    written += take;
                    idx += 1;
                }
            }
            ContentClass::Records => {
                // Four 32-byte records: shared template header plus a small
                // per-record payload.
                for record in 0..REGION_SIZE / 32 {
                    let at = record * 32;
                    let header = (0xDEAD_0000u32 + template as u32 * 8).to_le_bytes();
                    out[at..at + 4].copy_from_slice(&header);
                    out[at + 4..at + 8].copy_from_slice(&(template as u32).to_le_bytes());
                    out[at + 8..at + 12].copy_from_slice(&(record as u32).to_le_bytes());
                    out[at + 12..at + 32].fill((template % 251) as u8);
                }
            }
            ContentClass::Media => {
                // High-entropy noise keyed by page and region: incompressible.
                let mut state = self
                    .seed
                    .wrapping_mul(0xA24B_AED4_963E_E407)
                    .wrapping_add(app_seed << 32)
                    .wrapping_add(page.pfn().value().wrapping_mul(31))
                    .wrapping_add(region_index as u64);
                for slot in 0..REGION_SIZE / 8 {
                    out[slot * 8..slot * 8 + 8]
                        .copy_from_slice(&splitmix64(&mut state).to_le_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::AppName;
    use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec};
    use ariadne_mem::{AppId, Pfn};

    fn page(app: AppName, pfn: u64) -> PageId {
        PageId::new(AppId::new(app.uid()), Pfn::new(pfn))
    }

    #[test]
    fn page_generation_is_deterministic_and_page_sized() {
        let generator = PageDataGenerator::new(7);
        let profile = AppName::Twitter.profile();
        let a = generator.page_bytes(&profile, page(AppName::Twitter, 3));
        let b = generator.page_bytes(&profile, page(AppName::Twitter, 3));
        assert_eq!(a, b);
        assert_eq!(a.len(), PAGE_SIZE);
    }

    #[test]
    fn fill_page_bytes_matches_the_allocating_wrapper() {
        let generator = PageDataGenerator::new(7);
        let profile = AppName::Twitter.profile();
        // A dirty, reused buffer must be fully overwritten.
        let mut buf = [0xAAu8; PAGE_SIZE];
        for pfn in 0..16u64 {
            let p = page(AppName::Twitter, pfn);
            generator.fill_page_bytes(&profile, p, &mut buf);
            assert_eq!(buf.as_slice(), generator.page_bytes(&profile, p).as_slice());
        }
    }

    #[test]
    fn different_pages_have_different_contents() {
        let generator = PageDataGenerator::new(7);
        let profile = AppName::Twitter.profile();
        let a = generator.page_bytes(&profile, page(AppName::Twitter, 3));
        let b = generator.page_bytes(&profile, page(AppName::Twitter, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_contents() {
        let profile = AppName::Twitter.profile();
        let a = PageDataGenerator::new(1).page_bytes(&profile, page(AppName::Twitter, 3));
        let b = PageDataGenerator::new(2).page_bytes(&profile, page(AppName::Twitter, 3));
        assert_ne!(a, b);
    }

    #[test]
    fn pages_are_compressible_but_not_trivial() {
        let generator = PageDataGenerator::new(11);
        let profile = AppName::Youtube.profile();
        let mut data = Vec::new();
        for pfn in 0..64u64 {
            data.extend(generator.page_bytes(&profile, page(AppName::Youtube, pfn)));
        }
        let codec = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
        let image = codec.compress(&data).unwrap();
        let ratio = image.stats().ratio().value();
        assert!(ratio > 1.5, "ratio {ratio} too low — pages look like noise");
        assert!(ratio < 30.0, "ratio {ratio} too high — pages look trivial");
    }

    #[test]
    fn larger_chunks_achieve_better_ratios_like_figure6() {
        let generator = PageDataGenerator::new(3);
        let profile = AppName::Twitter.profile();
        let mut data = Vec::new();
        for pfn in 0..256u64 {
            data.extend(generator.page_bytes(&profile, page(AppName::Twitter, pfn)));
        }
        let small = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::new(128).unwrap())
            .compress(&data)
            .unwrap()
            .stats()
            .ratio()
            .value();
        let large = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k64())
            .compress(&data)
            .unwrap()
            .stats()
            .ratio()
            .value();
        assert!(
            large > small * 1.3,
            "large-chunk ratio {large:.2} should clearly beat small-chunk {small:.2}"
        );
    }

    #[test]
    fn media_heavy_apps_compress_worse() {
        let generator = PageDataGenerator::new(5);
        let game = AppName::BangDream.profile(); // media_weight 0.55
        let browser = AppName::Edge.profile(); // media_weight 0.22
        let collect = |profile: &AppProfile, app: AppName| {
            let mut data = Vec::new();
            for pfn in 0..64u64 {
                data.extend(generator.page_bytes(profile, page(app, pfn)));
            }
            ChunkedCodec::new(Algorithm::Lz4, ChunkSize::k4())
                .compress(&data)
                .unwrap()
                .stats()
                .ratio()
                .value()
        };
        let game_ratio = collect(&game, AppName::BangDream);
        let browser_ratio = collect(&browser, AppName::Edge);
        assert!(
            browser_ratio > game_ratio,
            "browser {browser_ratio:.2} should compress better than game {game_ratio:.2}"
        );
    }

    #[test]
    fn incompressible_profiles_emit_only_media_noise() {
        let generator = PageDataGenerator::new(11);
        let profile = AppProfile::incompressible(AppName::Twitter);
        let mut data = Vec::new();
        for pfn in 0..64u64 {
            let p = page(AppName::Twitter, pfn);
            for region in 0..PAGE_SIZE / REGION_SIZE {
                assert_eq!(
                    generator.region_class(&profile, p, region),
                    ContentClass::Media
                );
            }
            data.extend(generator.page_bytes(&profile, p));
        }
        // Noise does not compress: framing overhead makes the "compressed"
        // image at least as large as the input. Large chunks span pages, so
        // they would expose any cross-page repetition in the noise stream —
        // check them too.
        for chunk in [ChunkSize::k4(), ChunkSize::k16(), ChunkSize::k64()] {
            let image = ChunkedCodec::new(Algorithm::Lzo, chunk)
                .compress(&data)
                .unwrap();
            assert!(
                image.compressed_len() >= data.len(),
                "incompressible pages must not show savings at {} B chunks",
                chunk.bytes()
            );
        }
    }

    #[test]
    fn region_classes_cover_multiple_kinds() {
        let generator = PageDataGenerator::new(9);
        let profile = AppName::GoogleMaps.profile();
        let mut seen = std::collections::HashSet::new();
        for pfn in 0..32u64 {
            for region in 0..PAGE_SIZE / REGION_SIZE {
                seen.insert(generator.region_class(
                    &profile,
                    page(AppName::GoogleMaps, pfn),
                    region,
                ));
            }
        }
        assert!(seen.len() >= 4, "only {} content classes seen", seen.len());
    }
}
