//! Property-based tests: every codec must losslessly roundtrip arbitrary
//! byte sequences, and the chunked framing must preserve slicing semantics.

use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec, Codec};
use proptest::prelude::*;

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Fully random bytes.
        proptest::collection::vec(any::<u8>(), 0..6000),
        // Highly repetitive data (worst case for match emission logic).
        (any::<u8>(), 0usize..6000).prop_map(|(b, n)| vec![b; n]),
        // Structured data: repeating small templates, like anonymous pages.
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..200).prop_map(
            |(template, reps)| {
                template
                    .iter()
                    .cycle()
                    .take(template.len() * reps)
                    .copied()
                    .collect()
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lz4_roundtrips(data in arbitrary_bytes()) {
        let codec = ariadne_compress::Lz4::new();
        let packed = codec.compress(&data).unwrap();
        prop_assert_eq!(codec.decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn lzo_roundtrips(data in arbitrary_bytes()) {
        let codec = ariadne_compress::Lzo::new();
        let packed = codec.compress(&data).unwrap();
        prop_assert_eq!(codec.decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn bdi_roundtrips(data in arbitrary_bytes()) {
        let codec = ariadne_compress::Bdi::new();
        let packed = codec.compress(&data).unwrap();
        prop_assert_eq!(codec.decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn chunked_roundtrips_across_algorithms_and_sizes(
        data in arbitrary_bytes(),
        alg_idx in 0usize..3,
        size_idx in 0usize..4,
    ) {
        let alg = Algorithm::ALL[alg_idx];
        let sizes = [128usize, 512, 4096, 32768];
        let codec = ChunkedCodec::new(alg, ChunkSize::new(sizes[size_idx]).unwrap());
        let image = codec.compress(&data).unwrap();
        prop_assert_eq!(codec.decompress(&image).unwrap(), data);
    }

    #[test]
    fn chunked_per_chunk_decompression_matches_slices(
        data in proptest::collection::vec(any::<u8>(), 0..5000),
    ) {
        let chunk = 512usize;
        let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::new(chunk).unwrap());
        let image = codec.compress(&data).unwrap();
        for index in 0..image.chunk_count() {
            let start = index * chunk;
            let end = (start + chunk).min(data.len());
            prop_assert_eq!(codec.decompress_chunk(&image, index).unwrap(), &data[start..end]);
        }
    }

    #[test]
    fn corrupting_a_byte_never_panics(
        data in proptest::collection::vec(any::<u8>(), 16..1024),
        flip in any::<(usize, u8)>(),
    ) {
        // Decoders must fail gracefully (error or wrong data), never panic.
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let mut packed = codec.compress(&data).unwrap();
            if !packed.is_empty() {
                let pos = flip.0 % packed.len();
                packed[pos] ^= flip.1 | 1;
                let _ = codec.decompress(&packed, data.len());
            }
        }
    }
}
