//! Differential tests: the word-wide (SWAR) kernels must produce streams
//! byte-identical to the scalar reference codecs they replaced.
//!
//! The scalar loops live in `ariadne_compress::reference` (compiled via the
//! `scalar-reference` feature, which this crate's self dev-dependency turns
//! on for tests). Every corpus here is adversarial for a different part of
//! the scan:
//!
//! * splitmix64 noise — incompressible; exercises the no-match fast path and
//!   the hash-table collision behaviour;
//! * flip-loop pages — the lifetime suite's pathological writer: long runs
//!   with periodic single-byte flips, which lands mismatches in every byte
//!   lane of the 8-byte compare windows;
//! * all-zero pages — maximal-length matches and the BDI zeros encoding;
//! * page-tail misalignment — lengths straddling `PAGE_SIZE` and the 8-byte
//!   word size, so the word loop's scalar tail handles 0–7 leftover bytes.

use ariadne_compress::reference::scalar_codec;
use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec, PAGE_SIZE};
use proptest::prelude::*;

/// splitmix64 PRNG — statistically flat output, incompressible by design.
fn splitmix64_bytes(mut state: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// A flip-loop page: a repetitive base pattern with one byte XOR-flipped per
/// "loop iteration", at a stride chosen to hit every lane of an 8-byte
/// compare window over successive iterations.
fn flip_loop_page(len: usize, stride: usize, rounds: usize) -> Vec<u8> {
    let mut page: Vec<u8> = (0..len).map(|i| ((i / 32) % 251) as u8).collect();
    let mut at = 0usize;
    for round in 0..rounds {
        if len == 0 {
            break;
        }
        at = (at + stride + round) % len;
        page[at] ^= 0xFF;
    }
    page
}

/// Every adversarial corpus from the issue, with page-tail misalignment
/// represented by lengths straddling PAGE_SIZE and the 8-byte word size.
fn corpora() -> Vec<(String, Vec<u8>)> {
    let mut all = Vec::new();
    for len in [
        0usize,
        1,
        7,
        8,
        9,
        63,
        64,
        65,
        PAGE_SIZE - 7,
        PAGE_SIZE - 1,
        PAGE_SIZE,
        PAGE_SIZE + 1,
        PAGE_SIZE + 9,
        3 * PAGE_SIZE + 5,
    ] {
        all.push((format!("noise-{len}"), splitmix64_bytes(len as u64, len)));
        all.push((format!("flip-{len}"), flip_loop_page(len, 97, 300)));
        all.push((format!("zeros-{len}"), vec![0u8; len]));
    }
    // Mixed page: compressible head, noise tail crossing the last word.
    let mut mixed = vec![7u8; PAGE_SIZE / 2];
    mixed.extend(splitmix64_bytes(42, PAGE_SIZE / 2 + 3));
    all.push(("mixed-head-tail".to_string(), mixed));
    all
}

#[test]
fn swar_streams_are_byte_identical_to_the_scalar_reference() {
    for (label, data) in corpora() {
        for algorithm in Algorithm::ALL {
            let swar = algorithm.codec();
            let scalar = scalar_codec(algorithm);
            let fast = swar.compress(&data).unwrap();
            let slow = scalar.compress(&data).unwrap();
            assert_eq!(fast, slow, "{algorithm} diverged on corpus {label}");
            // The appended form must match too (pre-seeded scratch).
            let mut seeded = vec![0xEE, 0xBB];
            swar.compress_into(&data, &mut seeded).unwrap();
            assert_eq!(&seeded[..2], &[0xEE, 0xBB]);
            assert_eq!(&seeded[2..], &fast[..], "{algorithm}/{label} append");
            // And the stream still decodes to the input.
            assert_eq!(swar.decompress(&fast, data.len()).unwrap(), data);
        }
    }
}

#[test]
fn compressed_len_only_matches_a_scalar_per_chunk_sweep() {
    // One page per corpus family keeps the full sweep (3 algorithms × 11
    // chunk sizes × corpora) fast enough for every CI run.
    let corpora = [
        ("noise", splitmix64_bytes(7, 2 * PAGE_SIZE + 11)),
        ("flip", flip_loop_page(2 * PAGE_SIZE + 11, 61, 500)),
        ("zeros", vec![0u8; 2 * PAGE_SIZE + 11]),
    ];
    let mut scratch = Vec::new();
    for (label, data) in &corpora {
        for algorithm in Algorithm::ALL {
            let scalar = scalar_codec(algorithm);
            for chunk in ChunkSize::figure6_sweep() {
                let codec = ChunkedCodec::new(algorithm, chunk);
                let lens = codec.compressed_len_only(data, &mut scratch).unwrap();
                let expected: usize = data
                    .chunks(chunk.bytes())
                    .map(|piece| scalar.compress(piece).unwrap().len().min(piece.len()))
                    .sum();
                assert_eq!(
                    lens.compressed_len, expected,
                    "{algorithm} chunk {chunk} diverged on {label}"
                );
                assert_eq!(lens.original_len, data.len());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_buffers_compress_identically(
        data in proptest::collection::vec(any::<u8>(), 0..6000),
    ) {
        for algorithm in Algorithm::ALL {
            let fast = algorithm.codec().compress(&data).unwrap();
            let slow = scalar_codec(algorithm).compress(&data).unwrap();
            prop_assert_eq!(&fast, &slow, "{} diverged", algorithm);
        }
    }

    #[test]
    fn random_repetitive_buffers_compress_identically(
        (period, len, seed) in (1usize..96, 0usize..5000, any::<u64>()),
    ) {
        // Periodic data with noise perturbations: dense match candidates,
        // adversarial for the lazy-match and chain-walk order.
        let noise = splitmix64_bytes(seed, len);
        let data: Vec<u8> = (0..len)
            .map(|i| {
                let base = ((i / period) % 7 + i % period) as u8;
                if noise[i] < 12 { noise[i] } else { base }
            })
            .collect();
        for algorithm in Algorithm::ALL {
            let fast = algorithm.codec().compress(&data).unwrap();
            let slow = scalar_codec(algorithm).compress(&data).unwrap();
            prop_assert_eq!(&fast, &slow, "{} diverged", algorithm);
        }
    }
}
