//! Base-delta-immediate (BDI) compression.
//!
//! §4.5 of the Ariadne paper lists base-delta compression (Pekhimenko et al.,
//! PACT 2012) as an algorithm Ariadne is compatible with. BDI exploits the
//! observation that values stored close together (pointers, counters, array
//! elements) often differ from a common base by small deltas. This module
//! implements a software BDI that operates on 64-byte segments:
//!
//! * all-zero segment → 1 header byte;
//! * repeated 8-byte value → header + 8 bytes;
//! * base (8/4/2 bytes) + per-element deltas of 1, 2 or 4 bytes;
//! * otherwise the segment is stored verbatim.

use crate::algorithm::Codec;
use crate::error::CompressError;
use crate::swar::read_u64_le;

/// Segment size BDI operates on. 64 B matches the cache-line granularity used
/// by the original hardware proposal and the fine-grained redundancy the
/// paper reports inside anonymous pages.
pub const SEGMENT: usize = 64;

/// Segment encodings, stored in the header byte of each segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    Zeros = 0,
    Repeat8 = 1,
    Base8Delta1 = 2,
    Base8Delta2 = 3,
    Base8Delta4 = 4,
    Base4Delta1 = 5,
    Base4Delta2 = 6,
    Base2Delta1 = 7,
    Raw = 8,
    /// Trailing partial segment (shorter than [`SEGMENT`]), stored verbatim.
    RawPartial = 9,
}

impl Encoding {
    fn from_byte(byte: u8) -> Result<Self, CompressError> {
        Ok(match byte {
            0 => Encoding::Zeros,
            1 => Encoding::Repeat8,
            2 => Encoding::Base8Delta1,
            3 => Encoding::Base8Delta2,
            4 => Encoding::Base8Delta4,
            5 => Encoding::Base4Delta1,
            6 => Encoding::Base4Delta2,
            7 => Encoding::Base2Delta1,
            8 => Encoding::Raw,
            9 => Encoding::RawPartial,
            other => {
                return Err(CompressError::corrupt(format!(
                    "unknown BDI segment encoding {other}"
                )))
            }
        })
    }
}

/// Base-delta-immediate codec over 64-byte segments.
///
/// ```
/// use ariadne_compress::{Bdi, Codec};
///
/// # fn main() -> Result<(), ariadne_compress::CompressError> {
/// // Pointer-like data: large shared base, small deltas.
/// let mut page = Vec::new();
/// for i in 0..512u64 {
///     page.extend_from_slice(&(0x7f80_0000_0000u64 + i * 8).to_le_bytes());
/// }
/// let codec = Bdi::new();
/// let packed = codec.compress(&page)?;
/// assert!(packed.len() < page.len() / 2);
/// assert_eq!(codec.decompress(&packed, page.len())?, page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Create a new BDI codec.
    #[must_use]
    pub fn new() -> Self {
        Bdi { _private: () }
    }

    /// Try to encode `seg` (exactly [`SEGMENT`] bytes) with base size `B` and
    /// delta size `D`, appending header + payload (base followed by deltas)
    /// directly to `out`. On failure the partial emission is rolled back
    /// (`compress_into` only ever appends, so truncating back to the saved
    /// length removes exactly our own bytes) and `false` is returned.
    ///
    /// Elements are scanned word-wide: one `u64` load per 8 bytes, with the
    /// 8/4/2-byte lanes extracted by shifting. Lane order matches the memory
    /// order of the scalar reference's per-element `from_le_bytes` reads, and
    /// every delta is computed with the same zero-extend-then-subtract
    /// arithmetic, so both the feasibility decision and the emitted payload
    /// bytes are identical.
    fn try_emit_base_delta(
        seg: &[u8],
        encoding: Encoding,
        base_size: usize,
        delta_size: usize,
        out: &mut Vec<u8>,
    ) -> bool {
        debug_assert_eq!(seg.len(), SEGMENT);
        let max_delta: i64 = match delta_size {
            1 => i64::from(i8::MAX),
            2 => i64::from(i16::MAX),
            4 => i64::from(i32::MAX),
            _ => unreachable!("delta size is 1, 2 or 4"),
        };
        let saved = out.len();
        out.push(encoding as u8);
        out.extend_from_slice(&seg[..base_size]);

        let mut base = [0u8; 8];
        base[..base_size].copy_from_slice(&seg[..base_size]);
        let base = u64::from_le_bytes(base) as i64;

        let lanes_per_word = 8 / base_size;
        let lane_bits = base_size * 8;
        let lane_mask = if base_size == 8 {
            u64::MAX
        } else {
            (1u64 << lane_bits) - 1
        };
        for word_index in 0..SEGMENT / 8 {
            let word = read_u64_le(seg, word_index * 8);
            for lane in 0..lanes_per_word {
                // Zero-extended little-endian element, as the scalar
                // reference reads it.
                let value = ((word >> (lane * lane_bits)) & lane_mask) as i64;
                let delta = value.wrapping_sub(base);
                if delta > max_delta || delta < -(max_delta + 1) {
                    out.truncate(saved);
                    return false;
                }
                out.extend_from_slice(&delta.to_le_bytes()[..delta_size]);
            }
        }
        true
    }

    fn encode_segment(seg: &[u8], out: &mut Vec<u8>) {
        debug_assert_eq!(seg.len(), SEGMENT);
        let word = |i: usize| read_u64_le(seg, i * 8);
        if (0..SEGMENT / 8).all(|i| word(i) == 0) {
            out.push(Encoding::Zeros as u8);
            return;
        }
        if (1..SEGMENT / 8).all(|i| word(i) == word(0)) {
            out.push(Encoding::Repeat8 as u8);
            out.extend_from_slice(&seg[..8]);
            return;
        }
        // Candidate encodings in ascending payload-size order (16, 20, 24,
        // 34, 36, 40 bytes — all distinct and all below SEGMENT). The scalar
        // reference materialized every feasible payload and kept the
        // strictly smallest; with distinct sizes that winner is exactly the
        // first feasible candidate in this order, so the first success can
        // be emitted directly with no intermediate allocation.
        let candidates: [(Encoding, usize, usize); 6] = [
            (Encoding::Base8Delta1, 8, 1),
            (Encoding::Base4Delta1, 4, 1),
            (Encoding::Base8Delta2, 8, 2),
            (Encoding::Base2Delta1, 2, 1),
            (Encoding::Base4Delta2, 4, 2),
            (Encoding::Base8Delta4, 8, 4),
        ];
        for (enc, base, delta) in candidates {
            if Self::try_emit_base_delta(seg, enc, base, delta, out) {
                return;
            }
        }
        out.push(Encoding::Raw as u8);
        out.extend_from_slice(seg);
    }

    fn decode_segment<'a>(
        encoding: Encoding,
        input: &'a [u8],
        out: &mut Vec<u8>,
    ) -> Result<&'a [u8], CompressError> {
        let take = |input: &'a [u8], n: usize| -> Result<(&'a [u8], &'a [u8]), CompressError> {
            if input.len() < n {
                Err(CompressError::corrupt("truncated BDI segment payload"))
            } else {
                Ok(input.split_at(n))
            }
        };
        let decode_base_delta =
            |payload: &[u8], base_size: usize, delta_size: usize, out: &mut Vec<u8>| {
                let mut base = [0u8; 8];
                base[..base_size].copy_from_slice(&payload[..base_size]);
                let base = u64::from_le_bytes(base) as i64;
                let count = SEGMENT / base_size;
                for i in 0..count {
                    let start = base_size + i * delta_size;
                    let mut d = [0u8; 8];
                    d[..delta_size].copy_from_slice(&payload[start..start + delta_size]);
                    // Sign-extend the delta.
                    let delta = match delta_size {
                        1 => i64::from(d[0] as i8),
                        2 => i64::from(i16::from_le_bytes([d[0], d[1]])),
                        _ => i64::from(i32::from_le_bytes([d[0], d[1], d[2], d[3]])),
                    };
                    let value = (base.wrapping_add(delta)) as u64;
                    out.extend_from_slice(&value.to_le_bytes()[..base_size]);
                }
            };

        match encoding {
            Encoding::Zeros => {
                out.extend_from_slice(&[0u8; SEGMENT]);
                Ok(input)
            }
            Encoding::Repeat8 => {
                let (value, rest) = take(input, 8)?;
                for _ in 0..SEGMENT / 8 {
                    out.extend_from_slice(value);
                }
                Ok(rest)
            }
            Encoding::Raw => {
                let (seg, rest) = take(input, SEGMENT)?;
                out.extend_from_slice(seg);
                Ok(rest)
            }
            Encoding::RawPartial => {
                let (len_byte, rest) = take(input, 1)?;
                let len = len_byte[0] as usize;
                let (seg, rest) = take(rest, len)?;
                out.extend_from_slice(seg);
                Ok(rest)
            }
            Encoding::Base8Delta1 => {
                let (payload, rest) = take(input, 8 + 8)?;
                decode_base_delta(payload, 8, 1, out);
                Ok(rest)
            }
            Encoding::Base8Delta2 => {
                let (payload, rest) = take(input, 8 + 16)?;
                decode_base_delta(payload, 8, 2, out);
                Ok(rest)
            }
            Encoding::Base8Delta4 => {
                let (payload, rest) = take(input, 8 + 32)?;
                decode_base_delta(payload, 8, 4, out);
                Ok(rest)
            }
            Encoding::Base4Delta1 => {
                let (payload, rest) = take(input, 4 + 16)?;
                decode_base_delta(payload, 4, 1, out);
                Ok(rest)
            }
            Encoding::Base4Delta2 => {
                let (payload, rest) = take(input, 4 + 32)?;
                decode_base_delta(payload, 4, 2, out);
                Ok(rest)
            }
            Encoding::Base2Delta1 => {
                let (payload, rest) = take(input, 2 + 32)?;
                decode_base_delta(payload, 2, 1, out);
                Ok(rest)
            }
        }
    }
}

impl Codec for Bdi {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 8);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        let mut chunks = input.chunks_exact(SEGMENT);
        for seg in &mut chunks {
            Self::encode_segment(seg, out);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            out.push(Encoding::RawPartial as u8);
            out.push(tail.len() as u8);
            out.extend_from_slice(tail);
        }
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(decompressed_len);
        let mut rest = input;
        while !rest.is_empty() {
            let encoding = Encoding::from_byte(rest[0])?;
            rest = Self::decode_segment(encoding, &rest[1..], &mut out)?;
        }
        if out.len() != decompressed_len {
            return Err(CompressError::corrupt(format!(
                "decoded {} bytes, expected {decompressed_len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "bdi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let codec = Bdi::new();
        let packed = codec.compress(data).unwrap();
        codec.decompress(&packed, data.len()).unwrap()
    }

    #[test]
    fn zero_page_collapses_to_headers() {
        let data = vec![0u8; 4096];
        let packed = Bdi::new().compress(&data).unwrap();
        assert_eq!(packed.len(), 4096 / SEGMENT);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn pointer_like_data_uses_base_delta() {
        let mut data = Vec::new();
        for i in 0..512u64 {
            data.extend_from_slice(&(0x5555_0000_1000u64 + i * 16).to_le_bytes());
        }
        let packed = Bdi::new().compress(&data).unwrap();
        assert!(packed.len() < data.len() / 2, "got {}", packed.len());
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn small_integer_arrays_use_narrow_bases() {
        // 16-bit counters close to each other.
        let mut data = Vec::new();
        for i in 0..2048u16 {
            data.extend_from_slice(&(1000 + (i % 50)).to_le_bytes());
        }
        let packed = Bdi::new().compress(&data).unwrap();
        assert!(packed.len() < data.len());
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn random_data_falls_back_to_raw_without_corruption() {
        let mut x = 0xCAFEBABEu32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 16) as u8
            })
            .collect();
        let packed = Bdi::new().compress(&data).unwrap();
        // At worst one header byte per segment of expansion.
        assert!(packed.len() <= data.len() + data.len() / SEGMENT + 2);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn non_segment_aligned_lengths_roundtrip() {
        for len in [1usize, 63, 64, 65, 100, 4095, 4097] {
            let data: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn negative_deltas_are_handled() {
        let mut data = Vec::new();
        for i in (0..512u64).rev() {
            data.extend_from_slice(&(0x9000_0000u64 + i).to_le_bytes());
        }
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn corrupt_header_is_rejected() {
        assert!(Bdi::new().decompress(&[200u8], 64).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let data = vec![1u8; 64];
        let packed = Bdi::new().compress(&data).unwrap();
        assert!(Bdi::new()
            .decompress(&packed[..packed.len() - 1], 64)
            .is_err());
    }
}
