//! Thermal / CPU-frequency throttling model for sustained compression load.
//!
//! A phone that compresses continuously heats up, the governor drops the
//! CPU frequency, and every further (de)compression takes longer — the
//! regime behind the paper's CPU-usage-under-throttling claim. The model
//! here is a deliberately simple exponentially-smoothed heat state:
//!
//! * every (de)compression charge adds its **base** cost to a heat
//!   accumulator;
//! * the accumulator decays with time constant [`ThermalConfig::tau_nanos`]
//!   between charges (integer arithmetic, so replays are deterministic);
//! * the current heat, relative to [`ThermalConfig::saturation_nanos`],
//!   inflates the next charge by up to [`ThermalConfig::max_extra_ppm`]
//!   parts per million.
//!
//! Inflation is computed from the heat accumulated *before* the current
//! operation, so a cold CPU's first operation is never inflated, and a
//! disabled model (the default) returns every base cost untouched —
//! byte-identical to a workspace that has never heard of thermals. The
//! model is charged through `SchemeContext` in `ariadne-zram`, which every
//! scheme shares, so no scheme can dodge the throttle.

use crate::latency::CostNanos;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Knobs of the thermal throttling model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Whether throttling is modelled at all. Off by default; when off the
    /// model is a transparent pass-through and no state is kept.
    pub enabled: bool,
    /// Exponential-decay time constant of the heat state, in simulated
    /// nanoseconds: after `tau_nanos` of idle time roughly half the heat
    /// has dissipated.
    pub tau_nanos: u128,
    /// Heat level (accumulated busy-nanoseconds) at which throttling
    /// saturates at [`ThermalConfig::max_extra_ppm`].
    pub saturation_nanos: u128,
    /// Maximum cost inflation, in parts per million of the base cost
    /// (500_000 = a fully heat-soaked CPU runs 1.5× slower).
    pub max_extra_ppm: u64,
}

impl ThermalConfig {
    /// The disabled model: every cost passes through untouched.
    #[must_use]
    pub fn off() -> Self {
        ThermalConfig {
            enabled: false,
            tau_nanos: 0,
            saturation_nanos: 0,
            max_extra_ppm: 0,
        }
    }

    /// A phone-like sustained-load profile: heat halves after ~100 ms of
    /// idle simulated time, saturates after ~50 ms of accumulated
    /// compression work, and a saturated CPU runs 1.5× slower.
    #[must_use]
    pub fn sustained() -> Self {
        ThermalConfig {
            enabled: true,
            tau_nanos: 100_000_000,
            saturation_nanos: 50_000_000,
            max_extra_ppm: 500_000,
        }
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig::off()
    }
}

/// The exponentially-smoothed thermal state.
///
/// Interior mutability (`Cell`) because the charge sites only hold a shared
/// `&SchemeContext`; all fields are `Copy`, so the model stays `Clone`.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    config: ThermalConfig,
    /// Accumulated busy-nanoseconds of compression work, post-decay.
    heat: Cell<u128>,
    /// Simulated instant of the last charge (for the decay step).
    last_update: Cell<u128>,
    /// Lifetime sum of inflation added on top of base costs.
    extra_nanos: Cell<u128>,
}

impl ThermalModel {
    /// Build a model with the given knobs (cold state).
    #[must_use]
    pub fn new(config: ThermalConfig) -> Self {
        ThermalModel {
            config,
            heat: Cell::new(0),
            last_update: Cell::new(0),
            extra_nanos: Cell::new(0),
        }
    }

    /// The knobs in effect.
    #[must_use]
    pub fn config(&self) -> ThermalConfig {
        self.config
    }

    /// Whether the model actually inflates anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The current heat level, in accumulated busy-nanoseconds (post-decay
    /// as of the last charge).
    #[must_use]
    pub fn heat_nanos(&self) -> u128 {
        self.heat.get()
    }

    /// Lifetime nanoseconds of inflation charged on top of base costs —
    /// the "thermal-inflated CPU time" column of the lifetime experiment.
    #[must_use]
    pub fn extra_nanos(&self) -> CostNanos {
        CostNanos(self.extra_nanos.get())
    }

    /// The current throttle, in parts per million of extra cost, without
    /// advancing any state.
    #[must_use]
    pub fn throttle_ppm(&self) -> u64 {
        if !self.config.enabled || self.config.saturation_nanos == 0 {
            return 0;
        }
        let raw = self
            .heat
            .get()
            .saturating_mul(u128::from(self.config.max_extra_ppm))
            / self.config.saturation_nanos;
        raw.min(u128::from(self.config.max_extra_ppm)) as u64
    }

    /// Charge one (de)compression of base cost `base` at simulated instant
    /// `now_nanos`: decay the heat for the elapsed time, inflate `base` by
    /// the *prior* heat, then absorb `base` into the heat state. Returns
    /// the inflated cost (== `base` when disabled).
    pub fn charge(&self, base: CostNanos, now_nanos: u128) -> CostNanos {
        if !self.config.enabled {
            return base;
        }
        // Exponential decay in integer arithmetic: each elapsed `tau`
        // roughly halves the heat (heat * tau / (tau + dt) is the first-
        // order rational approximation, monotone and overflow-safe).
        let dt = now_nanos.saturating_sub(self.last_update.get());
        if dt > 0 && self.config.tau_nanos > 0 {
            let tau = self.config.tau_nanos;
            let decayed = self
                .heat
                .get()
                .saturating_mul(tau)
                .checked_div(tau.saturating_add(dt))
                .unwrap_or(0);
            self.heat.set(decayed);
        }
        self.last_update.set(now_nanos);
        let extra = base.as_nanos() * u128::from(self.throttle_ppm()) / 1_000_000;
        self.heat
            .set(self.heat.get().saturating_add(base.as_nanos()));
        self.extra_nanos.set(self.extra_nanos.get() + extra);
        CostNanos(base.as_nanos() + extra)
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::new(ThermalConfig::off())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_a_transparent_pass_through() {
        let model = ThermalModel::default();
        for i in 0..100u128 {
            assert_eq!(model.charge(CostNanos(12_345), i * 1000), CostNanos(12_345));
        }
        assert_eq!(model.heat_nanos(), 0);
        assert_eq!(model.extra_nanos(), CostNanos::zero());
        assert_eq!(model.throttle_ppm(), 0);
    }

    #[test]
    fn the_first_operation_of_a_cold_cpu_is_never_inflated() {
        let model = ThermalModel::new(ThermalConfig::sustained());
        assert_eq!(model.charge(CostNanos(1_000_000), 0), CostNanos(1_000_000));
        assert!(model.heat_nanos() > 0);
    }

    #[test]
    fn sustained_load_inflates_and_saturates() {
        let config = ThermalConfig::sustained();
        let model = ThermalModel::new(config);
        let base = CostNanos(5_000_000);
        let mut now = 0u128;
        let mut last = CostNanos::zero();
        // Back-to-back charges: heat only grows, inflation is monotone.
        for _ in 0..40 {
            let inflated = model.charge(base, now);
            assert!(inflated >= last, "inflation must not shrink under load");
            last = inflated;
            now += 1; // essentially no decay between charges
        }
        // Saturated: exactly max_extra_ppm on top.
        let saturated = model.charge(base, now);
        assert_eq!(
            saturated,
            CostNanos(
                base.as_nanos() + base.as_nanos() * u128::from(config.max_extra_ppm) / 1_000_000
            )
        );
        assert!(model.extra_nanos() > CostNanos::zero());
    }

    #[test]
    fn idle_time_cools_the_cpu_back_down() {
        let model = ThermalModel::new(ThermalConfig::sustained());
        let base = CostNanos(5_000_000);
        let mut now = 0u128;
        for _ in 0..40 {
            model.charge(base, now);
            now += 1;
        }
        let hot = model.throttle_ppm();
        assert!(hot > 0);
        // A long idle gap decays the heat away.
        now += 100 * 100_000_000;
        model.charge(CostNanos(1), now);
        assert!(
            model.throttle_ppm() < hot / 10,
            "a long idle must shed most of the heat"
        );
    }

    #[test]
    fn identical_charge_sequences_are_deterministic() {
        let a = ThermalModel::new(ThermalConfig::sustained());
        let b = ThermalModel::new(ThermalConfig::sustained());
        let mut totals = (CostNanos::zero(), CostNanos::zero());
        for i in 0..200u128 {
            let base = CostNanos(10_000 + (i * 977) % 50_000);
            let at = i * 123_456;
            totals.0 += a.charge(base, at);
            totals.1 += b.charge(base, at);
        }
        assert_eq!(totals.0, totals.1);
        assert_eq!(a.heat_nanos(), b.heat_nanos());
        assert_eq!(a.extra_nanos(), b.extra_nanos());
    }
}
