//! The [`Codec`] trait and the [`Algorithm`] selector enum.

use crate::{Bdi, CompressError, Lz4, Lzo};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lossless block codec.
///
/// Every codec in this crate compresses a complete input buffer into an
/// owned output buffer and can reverse the transformation exactly. Codecs are
/// stateless and cheap to construct; the compression state (hash tables and
/// the like) lives on the stack or in per-call allocations so a single codec
/// value may be shared freely across threads.
pub trait Codec: fmt::Debug + Send + Sync {
    /// Compress `input` into a fresh buffer.
    ///
    /// The output of `compress` is only meaningful to the matching
    /// [`Codec::decompress`]; it is not a standard container format.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidParameter`] if the input violates a
    /// codec-specific constraint (none of the bundled codecs have any).
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError>;

    /// Compress `input`, appending the encoded bytes to `out` instead of
    /// allocating a fresh buffer. Callers that compress in a loop clear and
    /// reuse one scratch buffer, which keeps the hot path allocation-free;
    /// the bytes appended are identical to what [`Codec::compress`] returns.
    ///
    /// # Errors
    ///
    /// Same contract as [`Codec::compress`].
    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        out.extend_from_slice(&self.compress(input)?);
        Ok(())
    }

    /// Decompress `input`, which must have been produced by
    /// [`Codec::compress`] on the same codec, into a buffer of exactly
    /// `decompressed_len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Corrupt`] if the stream is truncated,
    /// contains an out-of-range back-reference, or does not decode to exactly
    /// `decompressed_len` bytes.
    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError>;

    /// Short human-readable name of the codec (for reports and benchmarks).
    fn name(&self) -> &'static str;
}

/// Selector for the compression algorithms evaluated in the paper.
///
/// The Ariadne paper evaluates the two algorithms shipped by Android's ZRAM
/// (LZ4 and LZO) and discusses compatibility with base-delta-immediate
/// compression in §4.5. [`Algorithm`] is the value-level way of choosing one
/// of them; call [`Algorithm::codec`] to obtain the actual implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// LZ4 block format, greedy matcher: fastest, lowest ratio.
    Lz4,
    /// LZO-class codec with lazy matching: slower, better ratio.
    Lzo,
    /// Base-delta-immediate compression over 64 B segments.
    Bdi,
}

impl Algorithm {
    /// All algorithms, in the order they appear in the paper.
    pub const ALL: [Algorithm; 3] = [Algorithm::Lz4, Algorithm::Lzo, Algorithm::Bdi];

    /// Return the codec implementation for this algorithm.
    #[must_use]
    pub fn codec(self) -> Box<dyn Codec> {
        match self {
            Algorithm::Lz4 => Box::new(Lz4::new()),
            Algorithm::Lzo => Box::new(Lzo::new()),
            Algorithm::Bdi => Box::new(Bdi::new()),
        }
    }

    /// Short lowercase name, matching the kernel module naming (`lz4`, `lzo`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Lz4 => "lz4",
            Algorithm::Lzo => "lzo",
            Algorithm::Bdi => "bdi",
        }
    }
}

impl Default for Algorithm {
    /// LZO is the default algorithm on the Google Pixel 7 (§6.2 of the paper).
    fn default() -> Self {
        Algorithm::Lzo
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_roundtrips_a_simple_buffer() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 13) as u8).collect();
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let compressed = codec.compress(&data).unwrap();
            let restored = codec.decompress(&compressed, data.len()).unwrap();
            assert_eq!(restored, data, "roundtrip failed for {alg}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::Lz4.name(), "lz4");
        assert_eq!(Algorithm::Lzo.name(), "lzo");
        assert_eq!(Algorithm::Bdi.name(), "bdi");
        assert_eq!(Algorithm::Lz4.to_string(), "lz4");
    }

    #[test]
    fn default_matches_pixel7_kernel_default() {
        assert_eq!(Algorithm::default(), Algorithm::Lzo);
    }

    #[test]
    fn codec_trait_is_object_safe_and_usable_through_box() {
        let codec: Box<dyn Codec> = Algorithm::Lz4.codec();
        let out = codec.compress(&[0u8; 128]).unwrap();
        assert_eq!(codec.decompress(&out, 128).unwrap(), vec![0u8; 128]);
    }
}
