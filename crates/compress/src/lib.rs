//! Compression substrate for the Ariadne reproduction.
//!
//! The Ariadne paper (HPCA 2025) relies on the Linux kernel's LZ4 and LZO
//! compressors, invoked through ZRAM with a fixed 4 KiB compression unit.
//! Ariadne's key mechanism, *AdaptiveComp*, varies the compression chunk size
//! (from 128 B up to 128 KiB) according to the hotness of the data being
//! compressed. This crate provides everything the rest of the workspace needs
//! to reproduce that behaviour in userspace:
//!
//! * [`Lz4`] — an LZ4-block-format compatible codec (greedy hash-table
//!   matcher), the "fast" algorithm of the paper.
//! * [`Lzo`] — an LZO-class codec using lazy matching over hash chains; it
//!   trades speed for ratio exactly like the kernel's LZO1X does relative to
//!   LZ4.
//! * [`Bdi`] — base-delta-immediate compression, listed in §4.5 of the paper
//!   as an alternative algorithm Ariadne is compatible with.
//! * [`ChunkedCodec`] — splits a buffer into fixed-size chunks, compresses
//!   each independently and frames the result so that individual chunks can
//!   be decompressed on their own (the mechanism AdaptiveComp builds on).
//! * [`LatencyModel`] — a calibrated cost model that converts (algorithm,
//!   chunk size, byte count) into simulated nanoseconds, reproducing the
//!   latency/ratio trade-off of the paper's Figure 6. Real wall-clock numbers
//!   from a laptop would not transfer to a Pixel 7's Cortex cores, so all
//!   simulated timing in the workspace flows through this model while the
//!   *ratios* come from genuinely compressing the bytes.
//!
//! # Quick example
//!
//! ```
//! use ariadne_compress::{Algorithm, ChunkedCodec, ChunkSize};
//!
//! # fn main() -> Result<(), ariadne_compress::CompressError> {
//! let data = vec![42u8; 4096];
//! let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::new(1024)?);
//! let compressed = codec.compress(&data)?;
//! assert!(compressed.compressed_len() < data.len());
//! let restored = codec.decompress(&compressed)?;
//! assert_eq!(restored, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod bdi;
mod chunk;
mod error;
mod latency;
mod lz4;
mod lzo;
#[cfg(any(test, feature = "scalar-reference"))]
pub mod reference;
mod stats;
mod swar;
mod thermal;

pub use algorithm::{Algorithm, Codec};
pub use bdi::Bdi;
pub use chunk::{ChunkSize, ChunkedCodec, CompressedChunk, CompressedImage, CompressedLen};
pub use error::CompressError;
pub use latency::{CostNanos, LatencyModel, LatencyParams};
pub use lz4::Lz4;
pub use lzo::Lzo;
pub use stats::{CompressionRatio, CompressionStats};
pub use thermal::{ThermalConfig, ThermalModel};

/// The page size used throughout the workspace (4 KiB, as on the Pixel 7).
pub const PAGE_SIZE: usize = 4096;
