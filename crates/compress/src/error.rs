//! Error type shared by every codec in this crate.

use std::error::Error;
use std::fmt;

/// Error returned by compression and decompression routines.
///
/// The `Display` representation is lowercase and concise, per the Rust API
/// guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompressError {
    /// The compressed stream ended unexpectedly or contained an impossible
    /// back-reference.
    Corrupt {
        /// Human-readable detail of what was wrong with the stream.
        detail: String,
    },
    /// A parameter was outside its legal range (for example a zero chunk
    /// size, or a chunk size that is not a power of two).
    InvalidParameter {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// Why it was rejected.
        detail: String,
    },
    /// The caller asked for a chunk index that does not exist in the image.
    ChunkOutOfRange {
        /// The requested chunk index.
        index: usize,
        /// Number of chunks actually present.
        available: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Corrupt { detail } => {
                write!(f, "corrupt compressed stream: {detail}")
            }
            CompressError::InvalidParameter { parameter, detail } => {
                write!(f, "invalid parameter `{parameter}`: {detail}")
            }
            CompressError::ChunkOutOfRange { index, available } => {
                write!(
                    f,
                    "chunk index {index} out of range ({available} chunks available)"
                )
            }
        }
    }
}

impl Error for CompressError {}

impl CompressError {
    /// Convenience constructor for corrupt-stream errors.
    pub(crate) fn corrupt(detail: impl Into<String>) -> Self {
        CompressError::Corrupt {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = CompressError::corrupt("truncated literal run");
        let text = err.to_string();
        assert!(text.contains("truncated literal run"));
        assert!(text.starts_with("corrupt"));
    }

    #[test]
    fn chunk_out_of_range_reports_both_numbers() {
        let err = CompressError::ChunkOutOfRange {
            index: 9,
            available: 4,
        };
        let text = err.to_string();
        assert!(text.contains('9') && text.contains('4'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompressError>();
    }
}
