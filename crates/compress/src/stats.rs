//! Compression statistics: ratios and aggregate accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// A compression ratio (original size divided by compressed size).
///
/// The paper reports ratios between 1.7 (128 B chunks) and 3.9 (128 KiB
/// chunks); higher is better. A ratio below 1.0 means the data expanded.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CompressionRatio(f64);

impl CompressionRatio {
    /// Build a ratio from raw sizes. A compressed size of zero (only possible
    /// for empty input) is reported as a ratio of 1.0.
    #[must_use]
    pub fn from_sizes(original: usize, compressed: usize) -> Self {
        if compressed == 0 {
            CompressionRatio(1.0)
        } else {
            CompressionRatio(original as f64 / compressed as f64)
        }
    }

    /// The ratio as a floating-point value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for CompressionRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}x", self.0)
    }
}

/// Aggregate compression statistics (byte counts before and after).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    original_bytes: usize,
    compressed_bytes: usize,
    operations: usize,
}

impl CompressionStats {
    /// Statistics for a single compression of `original` bytes down to
    /// `compressed` bytes.
    #[must_use]
    pub fn new(original: usize, compressed: usize) -> Self {
        CompressionStats {
            original_bytes: original,
            compressed_bytes: compressed,
            operations: 1,
        }
    }

    /// Total bytes before compression.
    #[must_use]
    pub fn original_bytes(&self) -> usize {
        self.original_bytes
    }

    /// Total bytes after compression.
    #[must_use]
    pub fn compressed_bytes(&self) -> usize {
        self.compressed_bytes
    }

    /// Number of compression operations aggregated into this value.
    #[must_use]
    pub fn operations(&self) -> usize {
        self.operations
    }

    /// The aggregate compression ratio.
    #[must_use]
    pub fn ratio(&self) -> CompressionRatio {
        CompressionRatio::from_sizes(self.original_bytes, self.compressed_bytes)
    }
}

impl AddAssign for CompressionStats {
    fn add_assign(&mut self, rhs: Self) {
        self.original_bytes += rhs.original_bytes;
        self.compressed_bytes += rhs.compressed_bytes;
        self.operations += rhs.operations;
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({}) over {} ops",
            self.original_bytes,
            self.compressed_bytes,
            self.ratio(),
            self.operations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_from_sizes() {
        assert!((CompressionRatio::from_sizes(4096, 1024).value() - 4.0).abs() < 1e-9);
        assert!((CompressionRatio::from_sizes(0, 0).value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_display_is_compact() {
        assert_eq!(CompressionRatio::from_sizes(39, 10).to_string(), "3.90x");
    }

    #[test]
    fn stats_accumulate() {
        let mut total = CompressionStats::default();
        total += CompressionStats::new(4096, 2048);
        total += CompressionStats::new(4096, 1024);
        assert_eq!(total.original_bytes(), 8192);
        assert_eq!(total.compressed_bytes(), 3072);
        assert_eq!(total.operations(), 2);
        assert!(total.ratio().value() > 2.6 && total.ratio().value() < 2.7);
    }

    #[test]
    fn display_mentions_ratio_and_ops() {
        let stats = CompressionStats::new(100, 50);
        let text = stats.to_string();
        assert!(text.contains("2.00x") && text.contains("1 ops"));
    }
}
