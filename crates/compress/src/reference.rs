//! Scalar reference codecs for differential testing of the SWAR kernels.
//!
//! These are the byte-at-a-time compress loops the production [`crate::Lz4`],
//! [`crate::Lzo`] and [`crate::Bdi`] codecs used before their inner scans
//! were rewritten word-wide. They are kept verbatim — per-call allocations
//! and all — as an executable specification: the SWAR kernels must produce
//! **byte-identical** streams, which `tests/kernel_equivalence.rs` checks by
//! compressing adversarial corpora through both and comparing the output.
//!
//! Compiled only for tests and under the `scalar-reference` feature (the
//! crate's own integration tests enable it through a self dev-dependency),
//! so production builds carry no dead scalar code.
//!
//! Decompression was not changed by the SWAR work, so the reference codecs
//! delegate `decompress` to the production implementations.

use crate::algorithm::Codec;
use crate::bdi::SEGMENT;
use crate::error::CompressError;
use crate::{Bdi, Lz4, Lzo};

/// Scalar reference for the LZ4 compress loop (pre-SWAR, per-call table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarLz4 {
    _private: (),
}

impl ScalarLz4 {
    /// Create a new scalar LZ4 reference codec.
    #[must_use]
    pub fn new() -> Self {
        ScalarLz4 { _private: () }
    }

    fn hash(word: u32) -> usize {
        const HASH_LOG: usize = 13;
        ((word.wrapping_mul(2_654_435_761)) >> (32 - HASH_LOG)) as usize
    }

    fn read_u32_le(data: &[u8], pos: usize) -> u32 {
        u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
    }

    fn write_length(out: &mut Vec<u8>, mut len: usize) {
        while len >= 255 {
            out.push(255);
            len -= 255;
        }
        out.push(len as u8);
    }

    fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: Option<usize>, offset: u16) {
        const MIN_MATCH: usize = 4;
        let lit_len = literals.len();
        let ml_field = match match_len {
            Some(ml) => (ml - MIN_MATCH).min(15),
            None => 0,
        };
        let token = (((lit_len.min(15)) as u8) << 4) | ml_field as u8;
        out.push(token);
        if lit_len >= 15 {
            Self::write_length(out, lit_len - 15);
        }
        out.extend_from_slice(literals);
        if let Some(ml) = match_len {
            out.extend_from_slice(&offset.to_le_bytes());
            if ml - MIN_MATCH >= 15 {
                Self::write_length(out, ml - MIN_MATCH - 15);
            }
        }
    }
}

impl Codec for ScalarLz4 {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        const MIN_MATCH: usize = 4;
        const MF_LIMIT: usize = 12;
        const HASH_LOG: usize = 13;
        const MAX_DISTANCE: usize = 65535;
        let n = input.len();
        if n == 0 {
            out.push(0);
            return Ok(());
        }
        if n < MF_LIMIT + 1 {
            Self::emit_sequence(out, input, None, 0);
            return Ok(());
        }

        let mut table = vec![usize::MAX; 1 << HASH_LOG];
        let match_limit = n - MF_LIMIT;
        let mut anchor = 0usize;
        let mut pos = 0usize;

        while pos < match_limit {
            let word = Self::read_u32_le(input, pos);
            let slot = Self::hash(word);
            let candidate = table[slot];
            table[slot] = pos;

            let is_match = candidate != usize::MAX
                && pos - candidate <= MAX_DISTANCE
                && Self::read_u32_le(input, candidate) == word;
            if !is_match {
                pos += 1;
                continue;
            }

            let mut match_len = MIN_MATCH;
            let max_len = n - pos - 5;
            while match_len < max_len && input[candidate + match_len] == input[pos + match_len] {
                match_len += 1;
            }

            let offset = (pos - candidate) as u16;
            Self::emit_sequence(out, &input[anchor..pos], Some(match_len), offset);

            pos += match_len;
            anchor = pos;

            if pos < match_limit {
                let w = Self::read_u32_le(input, pos - 2);
                table[Self::hash(w)] = pos - 2;
            }
        }

        Self::emit_sequence(out, &input[anchor..], None, 0);
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        Lz4::new().decompress(input, decompressed_len)
    }

    fn name(&self) -> &'static str {
        "lz4-scalar"
    }
}

/// Scalar reference for the LZO-class compress loop (pre-SWAR, per-call
/// head/prev chains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarLzo {
    _private: (),
}

const LZO_MIN_MATCH: usize = 4;
const LZO_MAX_MATCH_TOKEN: usize = 0x7F + LZO_MIN_MATCH;
const LZO_MAX_LITERAL_TOKEN: usize = 0x80;
const LZO_MAX_DISTANCE: usize = 65535;
const LZO_HASH_LOG: usize = 14;
const LZO_MAX_CHAIN: usize = 16;

impl ScalarLzo {
    /// Create a new scalar LZO reference codec.
    #[must_use]
    pub fn new() -> Self {
        ScalarLzo { _private: () }
    }

    fn hash(data: &[u8], pos: usize) -> usize {
        let word = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        ((word.wrapping_mul(2_654_435_761)) >> (32 - LZO_HASH_LOG)) as usize
    }

    fn find_match(
        input: &[u8],
        pos: usize,
        head: &[usize],
        prev: &[usize],
        max_len: usize,
    ) -> Option<(usize, usize)> {
        if max_len < LZO_MIN_MATCH {
            return None;
        }
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head[Self::hash(input, pos)];
        let mut chain = 0usize;
        while candidate != usize::MAX && chain < LZO_MAX_CHAIN {
            let dist = pos - candidate;
            if dist > LZO_MAX_DISTANCE {
                break;
            }
            let mut len = 0usize;
            while len < max_len && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len == max_len {
                    break;
                }
            }
            candidate = prev[candidate];
            chain += 1;
        }
        if best_len >= LZO_MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    fn emit_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
        while !literals.is_empty() {
            let take = literals.len().min(LZO_MAX_LITERAL_TOKEN);
            out.push((take - 1) as u8);
            out.extend_from_slice(&literals[..take]);
            literals = &literals[take..];
        }
    }

    fn emit_match(out: &mut Vec<u8>, mut len: usize, dist: usize) {
        while len >= LZO_MIN_MATCH {
            let take = len.min(LZO_MAX_MATCH_TOKEN);
            let take = if len - take > 0 && len - take < LZO_MIN_MATCH {
                len - LZO_MIN_MATCH
            } else {
                take
            };
            out.push(0x80 | ((take - LZO_MIN_MATCH) as u8));
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            len -= take;
        }
    }
}

impl Codec for ScalarLzo {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        let n = input.len();
        if n < LZO_MIN_MATCH + 1 {
            Self::emit_literals(out, input);
            return Ok(());
        }

        let mut head = vec![usize::MAX; 1 << LZO_HASH_LOG];
        let mut prev = vec![usize::MAX; n];
        let hash_limit = n.saturating_sub(LZO_MIN_MATCH);

        let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, p: usize| {
            if p < hash_limit {
                let h = Self::hash(input, p);
                prev[p] = head[h];
                head[h] = p;
            }
        };

        let mut anchor = 0usize;
        let mut pos = 0usize;
        while pos + LZO_MIN_MATCH <= n {
            let max_len = n - pos;
            let found = Self::find_match(input, pos, &head, &prev, max_len);
            match found {
                None => {
                    insert(&mut head, &mut prev, pos);
                    pos += 1;
                }
                Some((len, dist)) => {
                    let mut use_len = len;
                    let mut use_dist = dist;
                    let mut start = pos;
                    if pos + 1 + LZO_MIN_MATCH <= n {
                        insert(&mut head, &mut prev, pos);
                        if let Some((len2, dist2)) =
                            Self::find_match(input, pos + 1, &head, &prev, n - pos - 1)
                        {
                            if len2 > len + 1 {
                                use_len = len2;
                                use_dist = dist2;
                                start = pos + 1;
                            }
                        }
                    } else {
                        insert(&mut head, &mut prev, pos);
                    }

                    Self::emit_literals(out, &input[anchor..start]);
                    Self::emit_match(out, use_len, use_dist);

                    let end = start + use_len;
                    let mut p = start.max(pos + 1);
                    while p < end && p < hash_limit {
                        insert(&mut head, &mut prev, p);
                        p += 1;
                    }
                    pos = end;
                    anchor = end;
                }
            }
        }
        Self::emit_literals(out, &input[anchor..]);
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        Lzo::new().decompress(input, decompressed_len)
    }

    fn name(&self) -> &'static str {
        "lzo-scalar"
    }
}

/// Scalar reference for the BDI segment encoder (pre-SWAR, materializes a
/// payload `Vec` per candidate encoding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBdi {
    _private: (),
}

impl ScalarBdi {
    /// Create a new scalar BDI reference codec.
    #[must_use]
    pub fn new() -> Self {
        ScalarBdi { _private: () }
    }

    fn try_base_delta(seg: &[u8], base_size: usize, delta_size: usize) -> Option<Vec<u8>> {
        let read = |i: usize| -> u64 {
            let mut v = [0u8; 8];
            v[..base_size].copy_from_slice(&seg[i * base_size..(i + 1) * base_size]);
            u64::from_le_bytes(v)
        };
        let count = seg.len() / base_size;
        let base = read(0);
        let max_delta: i64 = match delta_size {
            1 => i64::from(i8::MAX),
            2 => i64::from(i16::MAX),
            4 => i64::from(i32::MAX),
            _ => unreachable!("delta size is 1, 2 or 4"),
        };
        let mut payload = Vec::with_capacity(base_size + count * delta_size);
        payload.extend_from_slice(&seg[..base_size]);
        for i in 0..count {
            let value = read(i) as i64;
            let delta = value.wrapping_sub(base as i64);
            if delta > max_delta || delta < -(max_delta + 1) {
                return None;
            }
            payload.extend_from_slice(&delta.to_le_bytes()[..delta_size]);
        }
        Some(payload)
    }

    fn encode_segment(seg: &[u8], out: &mut Vec<u8>) {
        // Header byte values mirror `bdi::Encoding` (pinned by the decoder).
        const ZEROS: u8 = 0;
        const REPEAT8: u8 = 1;
        const RAW: u8 = 8;
        if seg.iter().all(|&b| b == 0) {
            out.push(ZEROS);
            return;
        }
        if seg.chunks_exact(8).all(|c| c == &seg[..8]) {
            out.push(REPEAT8);
            out.extend_from_slice(&seg[..8]);
            return;
        }
        // (header byte, base size, delta size) in the original scan order.
        let candidates: [(u8, usize, usize); 6] = [
            (2, 8, 1), // Base8Delta1
            (7, 2, 1), // Base2Delta1
            (5, 4, 1), // Base4Delta1
            (3, 8, 2), // Base8Delta2
            (6, 4, 2), // Base4Delta2
            (4, 8, 4), // Base8Delta4
        ];
        let mut best: Option<(u8, Vec<u8>)> = None;
        for (enc, base, delta) in candidates {
            if let Some(payload) = Self::try_base_delta(seg, base, delta) {
                let better = match &best {
                    Some((_, existing)) => payload.len() < existing.len(),
                    None => true,
                };
                if better {
                    best = Some((enc, payload));
                }
            }
        }
        match best {
            Some((enc, payload)) if payload.len() < SEGMENT => {
                out.push(enc);
                out.extend_from_slice(&payload);
            }
            _ => {
                out.push(RAW);
                out.extend_from_slice(seg);
            }
        }
    }
}

impl Codec for ScalarBdi {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 8);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        const RAW_PARTIAL: u8 = 9;
        let mut chunks = input.chunks_exact(SEGMENT);
        for seg in &mut chunks {
            Self::encode_segment(seg, out);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            out.push(RAW_PARTIAL);
            out.push(tail.len() as u8);
            out.extend_from_slice(tail);
        }
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        Bdi::new().decompress(input, decompressed_len)
    }

    fn name(&self) -> &'static str {
        "bdi-scalar"
    }
}

/// The scalar reference codec for `algorithm`, boxed like
/// [`crate::Algorithm::codec`].
#[must_use]
pub fn scalar_codec(algorithm: crate::Algorithm) -> Box<dyn Codec> {
    match algorithm {
        crate::Algorithm::Lz4 => Box::new(ScalarLz4::new()),
        crate::Algorithm::Lzo => Box::new(ScalarLzo::new()),
        crate::Algorithm::Bdi => Box::new(ScalarBdi::new()),
    }
}
