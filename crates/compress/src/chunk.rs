//! Chunked compression framing — the mechanism AdaptiveComp builds on.
//!
//! The paper's Insight 2 (§3) is a trade-off between the compression chunk
//! size and the resulting ratio/latency: compressing 128 B at a time is fast
//! but yields a low ratio, compressing 128 KiB at a time is slow but yields a
//! high ratio. [`ChunkedCodec`] makes the chunk size an explicit, validated
//! parameter: the input is split into `chunk_size` pieces, each piece is
//! compressed independently, and each compressed piece records whether it was
//! stored compressed or raw (when compression would have expanded it). A
//! [`CompressedImage`] can be decompressed wholesale or one chunk at a time,
//! which is what allows Ariadne to decompress only the pages an application
//! actually touches.

use crate::algorithm::{Algorithm, Codec};
use crate::error::CompressError;
use crate::stats::CompressionStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Smallest chunk size evaluated in the paper (Figure 6).
pub const MIN_CHUNK_SIZE: usize = 128;
/// Largest chunk size evaluated in the paper (Figure 6).
pub const MAX_CHUNK_SIZE: usize = 128 * 1024;

/// A validated compression chunk size in bytes.
///
/// The paper sweeps powers of two from 128 B to 128 KiB; we enforce the same
/// domain so configuration mistakes surface immediately instead of producing
/// silently meaningless results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkSize(usize);

impl ChunkSize {
    /// Create a chunk size.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidParameter`] if `bytes` is not a power
    /// of two or lies outside `128 B ..= 128 KiB`.
    pub fn new(bytes: usize) -> Result<Self, CompressError> {
        if !bytes.is_power_of_two() || !(MIN_CHUNK_SIZE..=MAX_CHUNK_SIZE).contains(&bytes) {
            return Err(CompressError::InvalidParameter {
                parameter: "chunk_size",
                detail: format!(
                    "{bytes} is not a power of two in {MIN_CHUNK_SIZE}..={MAX_CHUNK_SIZE}"
                ),
            });
        }
        Ok(ChunkSize(bytes))
    }

    /// The chunk size in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        self.0
    }

    /// Convenience constructors for the sizes named in the paper's Table 5.
    #[must_use]
    pub fn b256() -> Self {
        ChunkSize(256)
    }
    /// 512 B chunks.
    #[must_use]
    pub fn b512() -> Self {
        ChunkSize(512)
    }
    /// 1 KiB chunks.
    #[must_use]
    pub fn k1() -> Self {
        ChunkSize(1024)
    }
    /// 2 KiB chunks.
    #[must_use]
    pub fn k2() -> Self {
        ChunkSize(2048)
    }
    /// 4 KiB chunks (one page — the only size baseline ZRAM supports).
    #[must_use]
    pub fn k4() -> Self {
        ChunkSize(4096)
    }
    /// 16 KiB chunks.
    #[must_use]
    pub fn k16() -> Self {
        ChunkSize(16 * 1024)
    }
    /// 32 KiB chunks.
    #[must_use]
    pub fn k32() -> Self {
        ChunkSize(32 * 1024)
    }
    /// 64 KiB chunks.
    #[must_use]
    pub fn k64() -> Self {
        ChunkSize(64 * 1024)
    }
    /// 128 KiB chunks.
    #[must_use]
    pub fn k128() -> Self {
        ChunkSize(128 * 1024)
    }

    /// Every chunk size swept in Figure 6 of the paper, smallest first.
    #[must_use]
    pub fn figure6_sweep() -> Vec<ChunkSize> {
        [
            128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
        ]
        .iter()
        .map(|&b| ChunkSize(b))
        .collect()
    }
}

impl fmt::Display for ChunkSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 {
            write!(f, "{}K", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// How a single chunk was stored inside a [`CompressedImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkStorage {
    /// The chunk shrank and is stored compressed.
    Compressed,
    /// Compression would have expanded the chunk; it is stored verbatim.
    Raw,
}

/// One compressed (or raw) chunk of a [`CompressedImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedChunk {
    storage: ChunkStorage,
    original_len: usize,
    payload: Vec<u8>,
}

impl CompressedChunk {
    /// How the chunk is stored.
    #[must_use]
    pub fn storage(&self) -> ChunkStorage {
        self.storage
    }

    /// Length of the chunk before compression.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Length of the stored payload (compressed or raw).
    #[must_use]
    pub fn stored_len(&self) -> usize {
        self.payload.len()
    }
}

/// The sizes measured by [`ChunkedCodec::compressed_len_only`] — everything
/// the swap schemes need from a compression run when the payload itself is
/// never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedLen {
    /// Total length of the original data.
    pub original_len: usize,
    /// Stored length (compressed, counting raw-stored chunks at full size).
    pub compressed_len: usize,
    /// Number of chunks the data split into.
    pub chunk_count: usize,
}

/// The result of compressing a buffer with a [`ChunkedCodec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedImage {
    algorithm: Algorithm,
    chunk_size: ChunkSize,
    original_len: usize,
    chunks: Vec<CompressedChunk>,
}

impl CompressedImage {
    /// Algorithm that produced this image.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Chunk size the image was compressed with.
    #[must_use]
    pub fn chunk_size(&self) -> ChunkSize {
        self.chunk_size
    }

    /// Total length of the original data.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Total stored (compressed) length, including raw-stored chunks.
    #[must_use]
    pub fn compressed_len(&self) -> usize {
        self.chunks.iter().map(CompressedChunk::stored_len).sum()
    }

    /// Number of chunks in the image.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Iterate over the chunks of the image.
    pub fn chunks(&self) -> impl Iterator<Item = &CompressedChunk> {
        self.chunks.iter()
    }

    /// Compression statistics for the whole image.
    #[must_use]
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::new(self.original_len, self.compressed_len())
    }
}

/// Splits data into fixed-size chunks and compresses each independently.
///
/// ```
/// use ariadne_compress::{Algorithm, ChunkedCodec, ChunkSize};
///
/// # fn main() -> Result<(), ariadne_compress::CompressError> {
/// let codec = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
/// let data: Vec<u8> = (0..32_768u32).map(|i| (i / 64) as u8).collect();
/// let image = codec.compress(&data)?;
/// // Decompress only the third 4 KiB chunk.
/// let chunk = codec.decompress_chunk(&image, 2)?;
/// assert_eq!(&chunk[..], &data[8192..12288]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ChunkedCodec {
    algorithm: Algorithm,
    chunk_size: ChunkSize,
    codec: Box<dyn Codec>,
}

impl ChunkedCodec {
    /// Create a chunked codec for `algorithm` with the given `chunk_size`.
    #[must_use]
    pub fn new(algorithm: Algorithm, chunk_size: ChunkSize) -> Self {
        ChunkedCodec {
            algorithm,
            chunk_size,
            codec: algorithm.codec(),
        }
    }

    /// The algorithm used by this codec.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The chunk size used by this codec.
    #[must_use]
    pub fn chunk_size(&self) -> ChunkSize {
        self.chunk_size
    }

    /// Compress `data` into a [`CompressedImage`].
    ///
    /// # Errors
    ///
    /// Propagates any [`CompressError`] from the underlying codec.
    pub fn compress(&self, data: &[u8]) -> Result<CompressedImage, CompressError> {
        let mut chunks = Vec::with_capacity(data.len() / self.chunk_size.bytes() + 1);
        for piece in data.chunks(self.chunk_size.bytes()) {
            let compressed = self.codec.compress(piece)?;
            let chunk = if compressed.len() < piece.len() {
                CompressedChunk {
                    storage: ChunkStorage::Compressed,
                    original_len: piece.len(),
                    payload: compressed,
                }
            } else {
                CompressedChunk {
                    storage: ChunkStorage::Raw,
                    original_len: piece.len(),
                    payload: piece.to_vec(),
                }
            };
            chunks.push(chunk);
        }
        Ok(CompressedImage {
            algorithm: self.algorithm,
            chunk_size: self.chunk_size,
            original_len: data.len(),
            chunks,
        })
    }

    /// Compute the stored (compressed) size `data` would occupy without
    /// building a [`CompressedImage`]: each chunk is compressed into the
    /// caller's `scratch` buffer (cleared and reused per chunk), and only the
    /// winning length — compressed, or raw when compression would expand the
    /// chunk — is accumulated. The result is bit-identical to
    /// `self.compress(data)?.compressed_len()` while keeping the hot path
    /// free of per-chunk allocations; a pinning test enforces the identity.
    ///
    /// # Errors
    ///
    /// Propagates any [`CompressError`] from the underlying codec.
    pub fn compressed_len_only(
        &self,
        data: &[u8],
        scratch: &mut Vec<u8>,
    ) -> Result<CompressedLen, CompressError> {
        let mut compressed_len = 0usize;
        let mut chunk_count = 0usize;
        for piece in data.chunks(self.chunk_size.bytes()) {
            scratch.clear();
            self.codec.compress_into(piece, scratch)?;
            // Same storage decision as `compress`: raw storage wins whenever
            // compression failed to shrink the chunk.
            compressed_len += scratch.len().min(piece.len());
            chunk_count += 1;
        }
        Ok(CompressedLen {
            original_len: data.len(),
            compressed_len,
            chunk_count,
        })
    }

    /// Decompress an entire image back into the original bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidParameter`] if the image was produced
    /// by a different algorithm, or a [`CompressError::Corrupt`] from the
    /// underlying codec.
    pub fn decompress(&self, image: &CompressedImage) -> Result<Vec<u8>, CompressError> {
        self.check_algorithm(image)?;
        let mut out = Vec::with_capacity(image.original_len);
        for chunk in &image.chunks {
            out.extend_from_slice(&self.decode_chunk(chunk)?);
        }
        Ok(out)
    }

    /// Decompress the `index`-th chunk of an image.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::ChunkOutOfRange`] for a bad index, or a codec
    /// error for corrupt payloads.
    pub fn decompress_chunk(
        &self,
        image: &CompressedImage,
        index: usize,
    ) -> Result<Vec<u8>, CompressError> {
        self.check_algorithm(image)?;
        let chunk = image
            .chunks
            .get(index)
            .ok_or(CompressError::ChunkOutOfRange {
                index,
                available: image.chunks.len(),
            })?;
        self.decode_chunk(chunk)
    }

    fn decode_chunk(&self, chunk: &CompressedChunk) -> Result<Vec<u8>, CompressError> {
        match chunk.storage {
            ChunkStorage::Raw => Ok(chunk.payload.clone()),
            ChunkStorage::Compressed => self.codec.decompress(&chunk.payload, chunk.original_len),
        }
    }

    fn check_algorithm(&self, image: &CompressedImage) -> Result<(), CompressError> {
        if image.algorithm != self.algorithm {
            return Err(CompressError::InvalidParameter {
                parameter: "algorithm",
                detail: format!(
                    "image was compressed with {} but this codec uses {}",
                    image.algorithm, self.algorithm
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize) -> Vec<u8> {
        // Data with 128 B-scale structure similar to anonymous pages.
        (0..len)
            .map(|i| {
                let region = i / 128;
                ((region * 37 + (i % 16)) % 251) as u8
            })
            .collect()
    }

    #[test]
    fn chunk_size_rejects_invalid_values() {
        assert!(ChunkSize::new(0).is_err());
        assert!(ChunkSize::new(100).is_err()); // not a power of two
        assert!(ChunkSize::new(64).is_err()); // too small
        assert!(ChunkSize::new(256 * 1024).is_err()); // too large
        assert!(ChunkSize::new(4096).is_ok());
    }

    #[test]
    fn chunk_size_display_matches_paper_notation() {
        assert_eq!(ChunkSize::new(128).unwrap().to_string(), "128B");
        assert_eq!(ChunkSize::k1().to_string(), "1K");
        assert_eq!(ChunkSize::k128().to_string(), "128K");
    }

    #[test]
    fn figure6_sweep_is_complete_and_ordered() {
        let sweep = ChunkSize::figure6_sweep();
        assert_eq!(sweep.first().unwrap().bytes(), 128);
        assert_eq!(sweep.last().unwrap().bytes(), 128 * 1024);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn whole_image_roundtrips_for_every_algorithm_and_size() {
        let data = sample_data(40_000);
        for alg in Algorithm::ALL {
            for size in [ChunkSize::b256(), ChunkSize::k4(), ChunkSize::k32()] {
                let codec = ChunkedCodec::new(alg, size);
                let image = codec.compress(&data).unwrap();
                assert_eq!(codec.decompress(&image).unwrap(), data, "{alg} {size}");
            }
        }
    }

    #[test]
    fn compressed_len_only_is_bit_identical_to_a_full_compression() {
        let data = sample_data(40_000);
        let mut scratch = Vec::new();
        for alg in Algorithm::ALL {
            for size in [
                ChunkSize::new(128).unwrap(),
                ChunkSize::k4(),
                ChunkSize::k64(),
            ] {
                let codec = ChunkedCodec::new(alg, size);
                let image = codec.compress(&data).unwrap();
                let lens = codec.compressed_len_only(&data, &mut scratch).unwrap();
                assert_eq!(lens.compressed_len, image.compressed_len(), "{alg} {size}");
                assert_eq!(lens.original_len, image.original_len(), "{alg} {size}");
                assert_eq!(lens.chunk_count, image.chunk_count(), "{alg} {size}");
            }
        }
    }

    #[test]
    fn compress_into_appends_exactly_what_compress_returns() {
        let data = sample_data(10_000);
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let fresh = codec.compress(&data).unwrap();
            // Pre-seeded scratch: compress_into must append, not overwrite.
            let mut scratch = vec![0xEEu8; 3];
            codec.compress_into(&data, &mut scratch).unwrap();
            assert_eq!(&scratch[..3], &[0xEE; 3], "{alg}");
            assert_eq!(&scratch[3..], fresh.as_slice(), "{alg}");
        }
    }

    #[test]
    fn individual_chunks_decompress_to_the_right_slice() {
        let data = sample_data(20_000);
        let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::k1());
        let image = codec.compress(&data).unwrap();
        for index in 0..image.chunk_count() {
            let start = index * 1024;
            let end = (start + 1024).min(data.len());
            assert_eq!(
                codec.decompress_chunk(&image, index).unwrap(),
                &data[start..end]
            );
        }
    }

    #[test]
    fn larger_chunks_do_not_hurt_compression_ratio() {
        let data = sample_data(256 * 1024);
        let small = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::new(128).unwrap())
            .compress(&data)
            .unwrap();
        let large = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k64())
            .compress(&data)
            .unwrap();
        assert!(
            large.compressed_len() <= small.compressed_len(),
            "large {} vs small {}",
            large.compressed_len(),
            small.compressed_len()
        );
    }

    #[test]
    fn incompressible_chunks_are_stored_raw() {
        let mut x = 7u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::new(128).unwrap());
        let image = codec.compress(&data).unwrap();
        assert!(image.chunks().any(|c| c.storage() == ChunkStorage::Raw));
        // Raw storage bounds the image size by the original size.
        assert!(image.compressed_len() <= data.len());
        assert_eq!(codec.decompress(&image).unwrap(), data);
    }

    #[test]
    fn chunk_index_out_of_range_is_reported() {
        let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::k4());
        let image = codec.compress(&[1u8; 4096]).unwrap();
        let err = codec.decompress_chunk(&image, 5).unwrap_err();
        assert!(matches!(
            err,
            CompressError::ChunkOutOfRange {
                index: 5,
                available: 1
            }
        ));
    }

    #[test]
    fn algorithm_mismatch_is_rejected() {
        let data = sample_data(8192);
        let image = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::k4())
            .compress(&data)
            .unwrap();
        let other = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
        assert!(other.decompress(&image).is_err());
    }

    #[test]
    fn empty_input_produces_empty_image() {
        let codec = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
        let image = codec.compress(&[]).unwrap();
        assert_eq!(image.chunk_count(), 0);
        assert_eq!(image.compressed_len(), 0);
        assert_eq!(codec.decompress(&image).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stats_report_the_real_ratio() {
        let data = vec![0u8; 65536];
        let codec = ChunkedCodec::new(Algorithm::Lz4, ChunkSize::k4());
        let image = codec.compress(&data).unwrap();
        let stats = image.stats();
        assert!(stats.ratio().value() > 10.0);
    }
}
