//! Chunk-size-dependent latency cost model, calibrated to Figure 6.
//!
//! The paper measures compression and decompression latency of LZ4 and LZO on
//! a Google Pixel 7 while sweeping the compression chunk size from 128 B to
//! 128 KiB over 576 MB of anonymous data (Figure 6). Two findings drive
//! Ariadne's design:
//!
//! 1. compressing a fixed amount of data in 128 B chunks is ~59× (LZ4) /
//!    ~42× (LZO) faster than compressing it in 128 KiB chunks, and
//! 2. the compression ratio climbs from about 1.7 to about 3.9 over the same
//!    sweep.
//!
//! A laptop-class x86 core running our from-scratch codecs would not
//! reproduce the phone's absolute numbers, so all *simulated* time in this
//! workspace comes from [`LatencyModel`]: a per-byte cost that grows as a
//! power law of the chunk size, anchored at the paper's two endpoints. The
//! benchmarks additionally report the real measured throughput of the Rust
//! codecs as an auxiliary result.

use crate::algorithm::Algorithm;
use crate::chunk::ChunkSize;
use serde::{Deserialize, Serialize};

/// A simulated duration in nanoseconds.
///
/// Kept as a plain newtype (rather than `std::time::Duration`) because
/// simulated time routinely exceeds what a `u64` of nanoseconds can overflow
/// into when multiplied, and because it makes accidental mixing of wall-clock
/// and simulated time a type error.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CostNanos(pub u128);

impl CostNanos {
    /// Zero cost.
    #[must_use]
    pub fn zero() -> Self {
        CostNanos(0)
    }

    /// The cost in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u128 {
        self.0
    }

    /// The cost in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The cost in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: CostNanos) -> Self {
        CostNanos(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for CostNanos {
    type Output = CostNanos;
    fn add(self, rhs: CostNanos) -> CostNanos {
        CostNanos(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for CostNanos {
    fn add_assign(&mut self, rhs: CostNanos) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for CostNanos {
    fn sum<I: Iterator<Item = CostNanos>>(iter: I) -> CostNanos {
        iter.fold(CostNanos::zero(), |a, b| a + b)
    }
}

/// Calibration parameters for one algorithm.
///
/// The per-byte cost follows a two-segment power law of the chunk size with
/// a knee at 4 KiB: below the knee the cost rises steeply with chunk size
/// (the fine-grained redundancy of anonymous pages makes tiny chunks very
/// cheap to compress), above the knee it rises only gently (the matcher is
/// already operating over multi-page windows). The product of the two
/// segments reproduces the end-to-end slowdown the paper measures between
/// 128 B and 128 KiB chunks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Compression cost per byte at the 128 B reference chunk size, in ns.
    pub comp_ns_per_byte_at_128: f64,
    /// Exponent of the compression power law below the 4 KiB knee.
    pub comp_alpha_small: f64,
    /// Exponent of the compression power law above the 4 KiB knee.
    pub comp_alpha_large: f64,
    /// Decompression cost per byte at the 128 B reference chunk size, in ns.
    pub decomp_ns_per_byte_at_128: f64,
    /// Exponent of the decompression power law below the 4 KiB knee.
    pub decomp_alpha_small: f64,
    /// Exponent of the decompression power law above the 4 KiB knee.
    pub decomp_alpha_large: f64,
    /// Fixed per-operation overhead (ns) — dominates for very small chunks.
    pub per_op_overhead_ns: f64,
}

/// Chunk size at which the cost power law changes slope (one page).
const KNEE_BYTES: f64 = 4096.0;

impl LatencyParams {
    /// Parameters reproducing the Figure 6 shape for the given algorithm.
    ///
    /// Anchors: LZ4 compression is 59.2× slower per byte at 128 KiB than at
    /// 128 B, LZO 41.8×; decompression scales more gently. BDI (not measured
    /// in the paper) is modelled as a fast, nearly chunk-size-independent
    /// codec.
    #[must_use]
    pub fn for_algorithm(algorithm: Algorithm) -> Self {
        // Anchors: compressing 128 KiB chunks is 59.2x (LZ4) / 41.8x (LZO)
        // slower per byte than 128 B chunks; most of that slowdown happens
        // below the 4 KiB knee, with only a ~1.25x further increase from 4 KiB
        // to 128 KiB (multi-page chunks amortize the kernel's per-page call
        // overhead). Decompression scales more gently (about 12x end to end,
        // ~1.15x above the knee).
        let span = 32f64.ln(); // both segments cover a 32x size range
        let comp_alpha_large = 1.25f64.ln() / span;
        let decomp_alpha_large = 1.15f64.ln() / span;
        match algorithm {
            Algorithm::Lz4 => LatencyParams {
                comp_ns_per_byte_at_128: 0.55,
                comp_alpha_small: (59.2f64 / 1.25).ln() / span,
                comp_alpha_large,
                decomp_ns_per_byte_at_128: 0.18,
                decomp_alpha_small: (12.0f64 / 1.15).ln() / span,
                decomp_alpha_large,
                per_op_overhead_ns: 4.0,
            },
            Algorithm::Lzo => LatencyParams {
                comp_ns_per_byte_at_128: 0.80,
                comp_alpha_small: (41.8f64 / 1.25).ln() / span,
                comp_alpha_large,
                decomp_ns_per_byte_at_128: 0.25,
                decomp_alpha_small: (12.0f64 / 1.15).ln() / span,
                decomp_alpha_large,
                per_op_overhead_ns: 5.0,
            },
            Algorithm::Bdi => LatencyParams {
                comp_ns_per_byte_at_128: 0.35,
                comp_alpha_small: 0.05,
                comp_alpha_large: 0.05,
                decomp_ns_per_byte_at_128: 0.15,
                decomp_alpha_small: 0.05,
                decomp_alpha_large: 0.05,
                per_op_overhead_ns: 3.0,
            },
        }
    }
}

/// Converts (algorithm, chunk size, byte count) into simulated nanoseconds.
///
/// ```
/// use ariadne_compress::{Algorithm, ChunkSize, LatencyModel};
///
/// let model = LatencyModel::pixel7();
/// let small = model.compression_cost(Algorithm::Lz4, ChunkSize::new(128).unwrap(), 1 << 20);
/// let large = model.compression_cost(Algorithm::Lz4, ChunkSize::k128(), 1 << 20);
/// // Compressing the same megabyte in 128 KiB chunks is dramatically slower.
/// assert!(large.as_nanos() > 40 * small.as_nanos());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    lz4: LatencyParams,
    lzo: LatencyParams,
    bdi: LatencyParams,
}

impl LatencyModel {
    /// The model calibrated to the paper's Pixel 7 measurements.
    #[must_use]
    pub fn pixel7() -> Self {
        LatencyModel {
            lz4: LatencyParams::for_algorithm(Algorithm::Lz4),
            lzo: LatencyParams::for_algorithm(Algorithm::Lzo),
            bdi: LatencyParams::for_algorithm(Algorithm::Bdi),
        }
    }

    /// Build a model from explicit per-algorithm parameters.
    #[must_use]
    pub fn from_params(lz4: LatencyParams, lzo: LatencyParams, bdi: LatencyParams) -> Self {
        LatencyModel { lz4, lzo, bdi }
    }

    fn params(&self, algorithm: Algorithm) -> &LatencyParams {
        match algorithm {
            Algorithm::Lz4 => &self.lz4,
            Algorithm::Lzo => &self.lzo,
            Algorithm::Bdi => &self.bdi,
        }
    }

    fn cost(
        ns_per_byte_at_128: f64,
        alpha_small: f64,
        alpha_large: f64,
        per_op_overhead_ns: f64,
        chunk: ChunkSize,
        bytes: usize,
    ) -> CostNanos {
        if bytes == 0 {
            return CostNanos::zero();
        }
        let size = chunk.bytes() as f64;
        let scale = if size <= KNEE_BYTES {
            (size / 128.0).powf(alpha_small)
        } else {
            (KNEE_BYTES / 128.0).powf(alpha_small) * (size / KNEE_BYTES).powf(alpha_large)
        };
        let per_byte = ns_per_byte_at_128 * scale;
        let ops = (bytes as f64 / chunk.bytes() as f64).ceil();
        let total = per_byte * bytes as f64 + ops * per_op_overhead_ns;
        CostNanos(total.max(0.0) as u128)
    }

    /// Simulated time to compress `bytes` of data in chunks of `chunk`.
    #[must_use]
    pub fn compression_cost(
        &self,
        algorithm: Algorithm,
        chunk: ChunkSize,
        bytes: usize,
    ) -> CostNanos {
        let p = self.params(algorithm);
        Self::cost(
            p.comp_ns_per_byte_at_128,
            p.comp_alpha_small,
            p.comp_alpha_large,
            p.per_op_overhead_ns,
            chunk,
            bytes,
        )
    }

    /// Simulated time to decompress `bytes` of original data that was
    /// compressed in chunks of `chunk`.
    #[must_use]
    pub fn decompression_cost(
        &self,
        algorithm: Algorithm,
        chunk: ChunkSize,
        bytes: usize,
    ) -> CostNanos {
        let p = self.params(algorithm);
        Self::cost(
            p.decomp_ns_per_byte_at_128,
            p.decomp_alpha_small,
            p.decomp_alpha_large,
            p.per_op_overhead_ns,
            chunk,
            bytes,
        )
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::pixel7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB_576: usize = 576 * 1024 * 1024;

    #[test]
    fn figure6_slowdown_anchors_are_reproduced() {
        let model = LatencyModel::pixel7();
        for (alg, expected) in [(Algorithm::Lz4, 59.2), (Algorithm::Lzo, 41.8)] {
            let small = model.compression_cost(alg, ChunkSize::new(128).unwrap(), MB_576);
            let large = model.compression_cost(alg, ChunkSize::k128(), MB_576);
            let slowdown = large.as_nanos() as f64 / small.as_nanos() as f64;
            // Per-op overhead shifts the ratio slightly; accept ±30 %.
            assert!(
                slowdown > expected * 0.7 && slowdown < expected * 1.3,
                "{alg}: slowdown {slowdown}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn cost_is_monotonic_in_chunk_size() {
        let model = LatencyModel::pixel7();
        let costs: Vec<u128> = ChunkSize::figure6_sweep()
            .into_iter()
            .map(|c| {
                model
                    .compression_cost(Algorithm::Lzo, c, 1 << 22)
                    .as_nanos()
            })
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
    }

    #[test]
    fn cost_is_monotonic_in_bytes() {
        let model = LatencyModel::pixel7();
        let a = model.compression_cost(Algorithm::Lz4, ChunkSize::k4(), 4096);
        let b = model.compression_cost(Algorithm::Lz4, ChunkSize::k4(), 8192);
        assert!(b > a);
    }

    #[test]
    fn decompression_is_faster_than_compression() {
        let model = LatencyModel::pixel7();
        for alg in [Algorithm::Lz4, Algorithm::Lzo] {
            let c = model.compression_cost(alg, ChunkSize::k4(), 1 << 20);
            let d = model.decompression_cost(alg, ChunkSize::k4(), 1 << 20);
            assert!(d < c, "{alg}");
        }
    }

    #[test]
    fn lz4_is_faster_than_lzo() {
        let model = LatencyModel::pixel7();
        let lz4 = model.compression_cost(Algorithm::Lz4, ChunkSize::k4(), 1 << 20);
        let lzo = model.compression_cost(Algorithm::Lzo, ChunkSize::k4(), 1 << 20);
        assert!(lz4 < lzo);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let model = LatencyModel::pixel7();
        assert_eq!(
            model.compression_cost(Algorithm::Lzo, ChunkSize::k4(), 0),
            CostNanos::zero()
        );
    }

    #[test]
    fn cost_nanos_arithmetic() {
        let mut a = CostNanos(10);
        a += CostNanos(5);
        assert_eq!(a, CostNanos(15));
        assert_eq!(CostNanos(3) + CostNanos(4), CostNanos(7));
        let total: CostNanos = [CostNanos(1), CostNanos(2), CostNanos(3)].into_iter().sum();
        assert_eq!(total, CostNanos(6));
        assert!((CostNanos(2_500_000).as_millis_f64() - 2.5).abs() < 1e-9);
    }
}
