//! Word-wide (SWAR) scan primitives shared by the compression kernels.
//!
//! The LZ4 and LZO match loops and the BDI segment scans all reduce to one
//! primitive: "how many leading bytes do two regions have in common?". The
//! scalar codecs answered it one byte at a time; the kernels in this crate
//! now answer it eight bytes at a time with `u64` reads and
//! `trailing_zeros` to locate the first mismatching byte. The result is the
//! *same number* the byte loop would produce — the SWAR form only changes
//! how fast the answer is computed, never what it is — which is what lets
//! the compressed streams stay byte-identical to the scalar reference
//! codecs (pinned by `tests/kernel_equivalence.rs`).
//!
//! Everything here is safe code: the slice-indexing bounds checks on the
//! word loads compile down to a single comparison per iteration, and
//! `u64::from_le_bytes` on a 8-byte slice is recognised by LLVM as an
//! unaligned load.

/// Read a little-endian `u64` starting at `pos`. Panics (bounds check) if
/// fewer than 8 bytes remain — callers guarantee the room.
#[inline]
pub(crate) fn read_u64_le(data: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8-byte slice"))
}

/// Length of the common prefix of `data[a..a + max]` and `data[b..b + max]`,
/// exactly as the scalar loop
/// `while len < max && data[a + len] == data[b + len] { len += 1 }` would
/// compute it, but comparing eight bytes per step.
///
/// Callers must guarantee `a + max <= data.len()` and `b + max <= data.len()`
/// (the word loads stay inside those bounds; a violation panics on the
/// bounds check rather than reading out of range).
#[inline]
pub(crate) fn common_prefix(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max {
        let xor = read_u64_le(data, a + len) ^ read_u64_le(data, b + len);
        if xor != 0 {
            // The first differing byte is the lowest non-zero byte of the
            // XOR on a little-endian read.
            return len + (xor.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// A generation-stamped hash-table of input positions, reused across
/// compress calls through a `thread_local` so the hot path never allocates
/// or clears the table. A slot is live only when its stamp matches the
/// current generation; `begin_pass` bumps the generation, which invalidates
/// every slot in O(1). The entries are re-zeroed only when the `u32`
/// generation counter wraps (once every four billion compress calls).
///
/// Each slot packs `(generation << 32) | position` into one `u64`, so the
/// match loops — which read and write a slot on every inserted position —
/// touch a single cache line's worth of data per operation instead of a
/// stamp array and a position array on separate lines. Positions are
/// therefore capped at `u32::MAX - 1` bytes, far beyond any compression
/// unit in the workspace (chunks top out at 128 KiB).
///
/// Reading a slot whose stamp is stale returns `usize::MAX` — the same
/// "empty" sentinel the scalar codecs used for freshly-allocated tables —
/// so lookups observe exactly the state a per-call `vec![usize::MAX; N]`
/// would hold.
#[derive(Debug)]
pub(crate) struct StampedTable {
    entries: Vec<u64>,
    generation: u32,
}

impl StampedTable {
    /// Create a table with `slots` entries, all empty.
    pub(crate) fn new(slots: usize) -> Self {
        StampedTable {
            entries: vec![0; slots],
            generation: 0,
        }
    }

    /// Invalidate every slot, starting a fresh compress pass.
    pub(crate) fn begin_pass(&mut self) {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrapped: physically reset the entries so stale
                // slots from generation `u32::MAX` cannot alias.
                self.entries.fill(0);
                1
            }
        };
    }

    /// The position stored in `slot` during the current pass, or
    /// `usize::MAX` when the slot is empty.
    #[inline]
    pub(crate) fn get(&self, slot: usize) -> usize {
        let entry = self.entries[slot];
        if (entry >> 32) as u32 == self.generation {
            (entry & u32::MAX as u64) as usize
        } else {
            usize::MAX
        }
    }

    /// Store `pos` in `slot` for the current pass.
    #[inline]
    pub(crate) fn set(&mut self, slot: usize, pos: usize) {
        debug_assert!(
            pos < u32::MAX as usize,
            "position overflows the packed slot"
        );
        self.entries[slot] = (u64::from(self.generation) << 32) | pos as u64;
    }

    /// Store `pos` in `slot` and return the position it displaced (or
    /// `usize::MAX` if the slot was empty) — `get` + `set` fused into one
    /// slot access for the insert path, which runs once per input byte.
    #[inline]
    pub(crate) fn replace(&mut self, slot: usize, pos: usize) -> usize {
        debug_assert!(
            pos < u32::MAX as usize,
            "position overflows the packed slot"
        );
        let entry = self.entries[slot];
        self.entries[slot] = (u64::from(self.generation) << 32) | pos as u64;
        if (entry >> 32) as u32 == self.generation {
            (entry & u32::MAX as u64) as usize
        } else {
            usize::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_prefix_matches_the_scalar_loop() {
        let mut data: Vec<u8> = (0..64u8).collect();
        data.extend((0..64u8).map(|i| if i == 37 { 0xFF } else { i }));
        for max in 0..=64usize {
            let scalar = {
                let mut len = 0;
                while len < max && data[len] == data[64 + len] {
                    len += 1;
                }
                len
            };
            assert_eq!(common_prefix(&data, 0, 64, max), scalar, "max {max}");
        }
    }

    #[test]
    fn common_prefix_handles_mismatch_in_every_byte_lane() {
        for lane in 0..24usize {
            let a: Vec<u8> = vec![7u8; 48];
            let mut data = a.clone();
            data.extend_from_slice(&a);
            data[48 + lane] = 9;
            assert_eq!(common_prefix(&data, 0, 48, 48), lane, "lane {lane}");
        }
    }

    #[test]
    fn stamped_table_is_empty_after_begin_pass() {
        let mut table = StampedTable::new(8);
        table.begin_pass();
        assert_eq!(table.get(3), usize::MAX);
        table.set(3, 17);
        assert_eq!(table.get(3), 17);
        table.begin_pass();
        assert_eq!(table.get(3), usize::MAX, "new pass must not see old slots");
    }

    #[test]
    fn stamped_table_survives_generation_wrap() {
        let mut table = StampedTable::new(2);
        table.generation = u32::MAX - 1;
        table.begin_pass(); // -> u32::MAX
        table.set(0, 5);
        table.begin_pass(); // wraps -> 1, stamps cleared
        assert_eq!(table.get(0), usize::MAX);
        table.set(1, 9);
        assert_eq!(table.get(1), 9);
    }
}
