//! An LZO-class codec: lazy matching over hash chains.
//!
//! The Linux kernel's LZO1X is the default ZRAM compressor on the Google
//! Pixel 7. Compared with LZ4 it spends more effort finding matches (and so
//! achieves a better ratio at lower speed). This module reproduces that
//! design point with a from-scratch codec: a hash-chain matcher with one-step
//! lazy evaluation, emitting a compact token stream. The output format is our
//! own (we do not need binary compatibility with LZO1X streams), but the
//! speed/ratio trade-off relative to [`crate::Lz4`] mirrors the kernel pair.
//!
//! # Stream format
//!
//! A sequence of tokens:
//!
//! * `0x00..=0x7F` — literal run: `(token & 0x7F) + 1` literal bytes follow.
//! * `0x80..=0xFF` — match: length `(token & 0x7F) + 4`, followed by a
//!   2-byte little-endian back-reference distance (1-based). Runs longer
//!   than 131 bytes are split across several match tokens.

use crate::algorithm::Codec;
use crate::error::CompressError;
use crate::swar::{common_prefix, StampedTable};
use std::cell::RefCell;

thread_local! {
    /// Per-thread hash-chain scratch (head table + `prev` links), reused
    /// across compress calls. The scalar codec allocated a 128 KiB head
    /// table plus an `n`-entry chain vector per call; the stamped table
    /// invalidates in O(1) and `prev` only grows. Stale `prev` contents are
    /// harmless: a chain walk only reaches positions inserted during the
    /// current pass, and every insertion writes `prev[p]` first. Links are
    /// `u32` (positions are bounded by the packed head table anyway), which
    /// halves the chain's cache traffic — every input position is inserted
    /// exactly once, so the insert path is the hottest loop in the codec.
    static CHAIN_SCRATCH: RefCell<(StampedTable, Vec<u32>)> =
        RefCell::new((StampedTable::new(1 << HASH_LOG), Vec::new()));
}

const MIN_MATCH: usize = 4;
const MAX_MATCH_TOKEN: usize = 0x7F + MIN_MATCH; // 131
const MAX_LITERAL_TOKEN: usize = 0x80; // 128 literals per token
const MAX_DISTANCE: usize = 65535;
const HASH_LOG: usize = 14;
/// How many hash-chain candidates are examined per position. Higher values
/// find better matches (higher ratio) at the cost of more CPU work — the
/// LZO-versus-LZ4 trade-off.
const MAX_CHAIN: usize = 16;

/// LZO-class codec (lazy matching, hash chains).
///
/// ```
/// use ariadne_compress::{Codec, Lzo};
///
/// # fn main() -> Result<(), ariadne_compress::CompressError> {
/// let codec = Lzo::new();
/// let data: Vec<u8> = (0..4096u32).map(|i| (i / 16) as u8).collect();
/// let packed = codec.compress(&data)?;
/// assert!(packed.len() < data.len());
/// assert_eq!(codec.decompress(&packed, data.len())?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lzo {
    _private: (),
}

impl Lzo {
    /// Create a new LZO-class codec.
    #[must_use]
    pub fn new() -> Self {
        Lzo { _private: () }
    }

    #[inline]
    fn hash(data: &[u8], pos: usize) -> usize {
        // A single 4-byte slice load (one bounds check) — this runs once per
        // input byte on the insert path.
        let word = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4-byte slice"));
        ((word.wrapping_mul(2_654_435_761)) >> (32 - HASH_LOG)) as usize
    }

    /// Find the longest match for `pos` by walking the hash chain, keeping
    /// only matches strictly longer than `floor` (callers pass
    /// `MIN_MATCH - 1`, or the length a candidate must displace).
    ///
    /// The floor doubles as a cheap rejection filter: a candidate whose byte
    /// at the current-best offset differs from `input[pos + best]` cannot
    /// have a common prefix longer than the best, so the word-wide compare
    /// is skipped. The same candidates are walked in the same order and the
    /// running best evolves through the same strict improvements, so the
    /// match returned — and therefore the emitted stream — is identical to
    /// the unfiltered walk.
    fn find_match(
        input: &[u8],
        pos: usize,
        head: &StampedTable,
        prev: &[u32],
        max_len: usize,
        floor: usize,
    ) -> Option<(usize, usize)> {
        if floor >= max_len {
            return None;
        }
        let mut best_len = floor;
        let mut best_dist = 0usize;
        let mut candidate = head.get(Self::hash(input, pos));
        let mut chain = 0usize;
        // `best_len < max_len` holds throughout (a best reaching `max_len`
        // breaks out below), so the probe byte is always in bounds.
        let mut probe = input[pos + best_len];
        while candidate != usize::MAX && chain < MAX_CHAIN {
            let dist = pos - candidate;
            if dist > MAX_DISTANCE {
                break;
            }
            if input[candidate + best_len] == probe {
                let len = common_prefix(input, candidate, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == max_len {
                        break;
                    }
                    probe = input[pos + best_len];
                }
            }
            // `u32::MAX` links widen to the `usize::MAX` "end of chain"
            // sentinel (positions never reach either value).
            let link = prev[candidate];
            candidate = if link == u32::MAX {
                usize::MAX
            } else {
                link as usize
            };
            chain += 1;
        }
        if best_dist != 0 {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    fn emit_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
        while !literals.is_empty() {
            let take = literals.len().min(MAX_LITERAL_TOKEN);
            out.push((take - 1) as u8);
            out.extend_from_slice(&literals[..take]);
            literals = &literals[take..];
        }
    }

    fn emit_match(out: &mut Vec<u8>, mut len: usize, dist: usize) {
        debug_assert!((1..=MAX_DISTANCE).contains(&dist));
        while len >= MIN_MATCH {
            let take = len.min(MAX_MATCH_TOKEN);
            // Never leave a remainder shorter than MIN_MATCH.
            let take = if len - take > 0 && len - take < MIN_MATCH {
                len - MIN_MATCH
            } else {
                take
            };
            out.push(0x80 | ((take - MIN_MATCH) as u8));
            out.extend_from_slice(&(dist as u16).to_le_bytes());
            len -= take;
        }
        debug_assert_eq!(len, 0);
    }
}

impl Codec for Lzo {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        let n = input.len();
        if n < MIN_MATCH + 1 {
            Self::emit_literals(out, input);
            return Ok(());
        }

        CHAIN_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let (head, prev) = &mut *scratch;
            head.begin_pass();
            if prev.len() < n {
                prev.resize(n, u32::MAX);
            }
            self.compress_with_scratch(input, out, head, prev);
        });
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(decompressed_len);
        let mut pos = 0usize;
        let n = input.len();
        while pos < n {
            let token = input[pos];
            pos += 1;
            if token & 0x80 == 0 {
                let run = (token & 0x7F) as usize + 1;
                if pos + run > n {
                    return Err(CompressError::corrupt("truncated literal run"));
                }
                out.extend_from_slice(&input[pos..pos + run]);
                pos += run;
            } else {
                let len = (token & 0x7F) as usize + MIN_MATCH;
                if pos + 2 > n {
                    return Err(CompressError::corrupt("truncated match distance"));
                }
                let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                pos += 2;
                if dist == 0 || dist > out.len() {
                    return Err(CompressError::corrupt(format!(
                        "invalid back-reference distance {dist} at output length {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
        if out.len() != decompressed_len {
            return Err(CompressError::corrupt(format!(
                "decoded {} bytes, expected {decompressed_len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "lzo"
    }
}

impl Lzo {
    /// The compress loop proper, operating on borrowed per-thread scratch.
    /// Identical match decisions to the scalar reference: the stamped head
    /// table behaves exactly like a fresh `vec![usize::MAX; _]`, and the
    /// word-wide compare returns the same lengths the byte loop did.
    fn compress_with_scratch(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        head: &mut StampedTable,
        prev: &mut [u32],
    ) {
        let n = input.len();
        let hash_limit = n.saturating_sub(MIN_MATCH);

        let insert = |head: &mut StampedTable, prev: &mut [u32], p: usize| {
            if p < hash_limit {
                let h = Self::hash(input, p);
                // Truncating the `usize::MAX` empty sentinel yields
                // `u32::MAX`, the chain-end sentinel the walk widens back.
                prev[p] = head.replace(h, p) as u32;
            }
        };

        let mut anchor = 0usize;
        let mut pos = 0usize;
        while pos + MIN_MATCH <= n {
            let max_len = n - pos;
            let found = Self::find_match(input, pos, head, prev, max_len, MIN_MATCH - 1);
            match found {
                None => {
                    insert(head, prev, pos);
                    pos += 1;
                }
                Some((len, dist)) => {
                    // Lazy evaluation: peek one position ahead; if it yields a
                    // strictly longer match, emit the current byte as a
                    // literal instead.
                    let mut use_len = len;
                    let mut use_dist = dist;
                    let mut start = pos;
                    if pos + 1 + MIN_MATCH <= n {
                        insert(head, prev, pos);
                        // A lazy match only displaces the current one when it
                        // is strictly longer than `len + 1`; passing that as
                        // the floor lets the walk reject non-improving
                        // candidates on a single byte probe.
                        if let Some((len2, dist2)) =
                            Self::find_match(input, pos + 1, head, prev, n - pos - 1, len + 1)
                        {
                            debug_assert!(len2 > len + 1);
                            use_len = len2;
                            use_dist = dist2;
                            start = pos + 1;
                        }
                    } else {
                        insert(head, prev, pos);
                    }

                    Self::emit_literals(out, &input[anchor..start]);
                    Self::emit_match(out, use_len, use_dist);

                    // Index the positions covered by the match.
                    let end = start + use_len;
                    let mut p = start.max(pos + 1);
                    while p < end && p < hash_limit {
                        insert(head, prev, p);
                        p += 1;
                    }
                    pos = end;
                    anchor = end;
                }
            }
        }
        Self::emit_literals(out, &input[anchor..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz4::Lz4;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let codec = Lzo::new();
        let packed = codec.compress(data).unwrap();
        codec.decompress(&packed, data.len()).unwrap()
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        assert_eq!(roundtrip(&[]), Vec::<u8>::new());
        for len in 1..20usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn constant_page_compresses_well() {
        let data = vec![0x5Au8; 4096];
        let packed = Lzo::new().compress(&data).unwrap();
        assert!(packed.len() < 160, "got {}", packed.len());
        assert_eq!(Lzo::new().decompress(&packed, 4096).unwrap(), data);
    }

    #[test]
    fn structured_data_roundtrips() {
        let data: Vec<u8> = (0..16_384u32)
            .flat_map(|i| (i % 512).to_le_bytes())
            .collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        let data: Vec<u8> = b"xyz".iter().cycle().take(700).copied().collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn lzo_ratio_is_at_least_as_good_as_lz4_on_redundant_data() {
        // Repeated 256-byte template with small perturbations: the deeper
        // search of the LZO-class codec should not lose to greedy LZ4.
        let template: Vec<u8> = (0..256u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut data = Vec::new();
        for rep in 0..64u8 {
            let mut block = template.clone();
            block[(rep as usize * 3) % 256] = rep;
            data.extend_from_slice(&block);
        }
        let lzo_len = Lzo::new().compress(&data).unwrap().len();
        let lz4_len = Lz4::new().compress(&data).unwrap().len();
        assert!(
            lzo_len <= lz4_len + lz4_len / 10,
            "lzo {lzo_len} vs lz4 {lz4_len}"
        );
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn incompressible_data_expansion_is_bounded() {
        let mut x = 0x9E3779B9u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let packed = Lzo::new().compress(&data).unwrap();
        // One token byte per 128 literals.
        assert!(packed.len() <= data.len() + data.len() / 64 + 16);
        assert_eq!(Lzo::new().decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let codec = Lzo::new();
        // Truncated literal run.
        assert!(codec.decompress(&[0x05, 1, 2], 6).is_err());
        // Bad distance.
        assert!(codec.decompress(&[0x80, 0x10, 0x00], 4).is_err());
        // Wrong expected length.
        let packed = codec.compress(&[9u8; 100]).unwrap();
        assert!(codec.decompress(&packed, 99).is_err());
    }

    #[test]
    fn very_long_match_splits_across_tokens() {
        let mut data = vec![1u8, 2, 3, 4];
        data.extend(std::iter::repeat(7u8).take(5000));
        assert_eq!(roundtrip(&data), data);
    }
}
