//! An LZ4-block-format codec with a greedy, hash-table-based matcher.
//!
//! This is a from-scratch implementation of the LZ4 block format (token byte
//! with 4-bit literal-length / match-length fields, 2-byte little-endian
//! offsets, 255-extension bytes) as used by the Linux kernel's `lz4`
//! crypto-API driver that backs ZRAM on the Pixel 7. It favours speed over
//! ratio: one hash probe per position and greedy match acceptance, exactly
//! the design point of upstream LZ4.

use crate::algorithm::Codec;
use crate::error::CompressError;
use crate::swar::{common_prefix, StampedTable};
use std::cell::RefCell;

thread_local! {
    /// Per-thread match table, reused across compress calls so the hot path
    /// never allocates (the scalar codec paid a 64 KiB `vec!` per call).
    static MATCH_TABLE: RefCell<StampedTable> =
        RefCell::new(StampedTable::new(1 << HASH_LOG));
}

/// Minimum match length encodable by the LZ4 block format.
const MIN_MATCH: usize = 4;
/// Matches may not begin within the final `MF_LIMIT` bytes of the input
/// (mirrors the reference implementation, which keeps the last bytes literal
/// so the decoder's wild copies stay in bounds; ours copies bytewise but we
/// keep the format-compatible restriction).
const MF_LIMIT: usize = 12;
/// log2 of the number of hash-table slots used by the greedy matcher.
const HASH_LOG: usize = 13;
/// Maximum back-reference distance representable with a 2-byte offset.
const MAX_DISTANCE: usize = 65535;

/// LZ4 block-format codec.
///
/// ```
/// use ariadne_compress::{Codec, Lz4};
///
/// # fn main() -> Result<(), ariadne_compress::CompressError> {
/// let codec = Lz4::new();
/// let page = vec![7u8; 4096];
/// let packed = codec.compress(&page)?;
/// assert!(packed.len() < 64);
/// assert_eq!(codec.decompress(&packed, 4096)?, page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lz4 {
    _private: (),
}

impl Lz4 {
    /// Create a new LZ4 codec.
    #[must_use]
    pub fn new() -> Self {
        Lz4 { _private: () }
    }

    fn hash(word: u32) -> usize {
        // Fibonacci hashing constant used by reference LZ4.
        ((word.wrapping_mul(2_654_435_761)) >> (32 - HASH_LOG)) as usize
    }

    #[inline]
    fn read_u32_le(data: &[u8], pos: usize) -> u32 {
        // A single 4-byte slice load (one bounds check) — this runs once per
        // input byte on the insert path.
        u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4-byte slice"))
    }

    /// Append an LZ4 length using the 15 + 255-extension scheme.
    fn write_length(out: &mut Vec<u8>, mut len: usize) {
        while len >= 255 {
            out.push(255);
            len -= 255;
        }
        out.push(len as u8);
    }

    fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: Option<usize>, offset: u16) {
        let lit_len = literals.len();
        let ml_field = match match_len {
            Some(ml) => {
                debug_assert!(ml >= MIN_MATCH);
                (ml - MIN_MATCH).min(15)
            }
            None => 0,
        };
        let token = (((lit_len.min(15)) as u8) << 4) | ml_field as u8;
        out.push(token);
        if lit_len >= 15 {
            Self::write_length(out, lit_len - 15);
        }
        out.extend_from_slice(literals);
        if let Some(ml) = match_len {
            out.extend_from_slice(&offset.to_le_bytes());
            if ml - MIN_MATCH >= 15 {
                Self::write_length(out, ml - MIN_MATCH - 15);
            }
        }
    }
}

impl Codec for Lz4 {
    fn compress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CompressError> {
        let n = input.len();
        if n == 0 {
            // A block consisting of a single token with zero literals.
            out.push(0);
            return Ok(());
        }
        if n < MF_LIMIT + 1 {
            Self::emit_sequence(out, input, None, 0);
            return Ok(());
        }

        MATCH_TABLE.with(|table| {
            let mut table = table.borrow_mut();
            table.begin_pass();
            let match_limit = n - MF_LIMIT;
            let mut anchor = 0usize;
            let mut pos = 0usize;

            while pos < match_limit {
                let word = Self::read_u32_le(input, pos);
                let slot = Self::hash(word);
                let candidate = table.replace(slot, pos);

                let is_match = candidate != usize::MAX
                    && pos - candidate <= MAX_DISTANCE
                    && Self::read_u32_le(input, candidate) == word;
                if !is_match {
                    pos += 1;
                    continue;
                }

                // Extend the match forward as far as possible (but never into
                // the tail that must remain literal). The word-wide scan
                // locates the same first mismatch the byte loop would.
                let max_len = n - pos - 5; // keep last 5 bytes literal
                let mut match_len = MIN_MATCH;
                if max_len > MIN_MATCH {
                    match_len += common_prefix(
                        input,
                        candidate + MIN_MATCH,
                        pos + MIN_MATCH,
                        max_len - MIN_MATCH,
                    );
                }

                let offset = (pos - candidate) as u16;
                Self::emit_sequence(out, &input[anchor..pos], Some(match_len), offset);

                pos += match_len;
                anchor = pos;

                // Seed the table with a couple of positions inside the match
                // so that following matches can still be found quickly.
                if pos < match_limit {
                    let w = Self::read_u32_le(input, pos - 2);
                    table.set(Self::hash(w), pos - 2);
                }
            }

            // Trailing literals.
            Self::emit_sequence(out, &input[anchor..], None, 0);
        });
        Ok(())
    }

    fn decompress(&self, input: &[u8], decompressed_len: usize) -> Result<Vec<u8>, CompressError> {
        let mut out = Vec::with_capacity(decompressed_len);
        let mut pos = 0usize;
        let n = input.len();

        loop {
            if pos >= n {
                return Err(CompressError::corrupt("missing token byte"));
            }
            let token = input[pos];
            pos += 1;

            // Literal run.
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                loop {
                    let b = *input
                        .get(pos)
                        .ok_or_else(|| CompressError::corrupt("truncated literal length"))?;
                    pos += 1;
                    lit_len += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            if pos + lit_len > n {
                return Err(CompressError::corrupt("truncated literal run"));
            }
            out.extend_from_slice(&input[pos..pos + lit_len]);
            pos += lit_len;

            if pos == n {
                break; // Final sequence carries literals only.
            }

            // Match.
            if pos + 2 > n {
                return Err(CompressError::corrupt("truncated match offset"));
            }
            let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2;
            if offset == 0 || offset > out.len() {
                return Err(CompressError::corrupt(format!(
                    "invalid back-reference offset {offset} at output length {}",
                    out.len()
                )));
            }
            let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
            if (token & 0x0F) == 15 {
                loop {
                    let b = *input
                        .get(pos)
                        .ok_or_else(|| CompressError::corrupt("truncated match length"))?;
                    pos += 1;
                    match_len += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            let start = out.len() - offset;
            for i in 0..match_len {
                let byte = out[start + i];
                out.push(byte);
            }
        }

        if out.len() != decompressed_len {
            return Err(CompressError::corrupt(format!(
                "decoded {} bytes, expected {decompressed_len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "lz4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let codec = Lz4::new();
        let packed = codec.compress(data).unwrap();
        codec.decompress(&packed, data.len()).unwrap()
    }

    #[test]
    fn empty_input_roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::<u8>::new());
    }

    #[test]
    fn tiny_inputs_roundtrip() {
        for len in 1..32usize {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn constant_page_compresses_well() {
        let data = vec![0xABu8; 4096];
        let packed = Lz4::new().compress(&data).unwrap();
        assert!(
            packed.len() < 100,
            "constant page should shrink, got {}",
            packed.len()
        );
        assert_eq!(Lz4::new().decompress(&packed, 4096).unwrap(), data);
    }

    #[test]
    fn periodic_data_roundtrips() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 97) as u8).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn pseudo_random_data_roundtrips_without_much_expansion() {
        // xorshift-style noise: mostly incompressible.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let packed = Lz4::new().compress(&data).unwrap();
        assert!(packed.len() <= data.len() + data.len() / 128 + 32);
        assert_eq!(Lz4::new().decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        // 300 distinct leading bytes force a literal length > 15.
        let mut data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 251) as u8).collect();
        data.extend(std::iter::repeat(9u8).take(64));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_matches_use_extension_bytes() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        data.extend(std::iter::repeat(0u8).take(2000));
        data.extend_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn overlapping_match_copy_is_correct() {
        // "abcabcabc..." produces offset-3 matches that overlap the output.
        let data: Vec<u8> = b"abc".iter().cycle().take(1000).copied().collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn wrong_expected_length_is_rejected() {
        let codec = Lz4::new();
        let packed = codec.compress(&[5u8; 256]).unwrap();
        assert!(matches!(
            codec.decompress(&packed, 257),
            Err(CompressError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let codec = Lz4::new();
        let packed = codec.compress(&vec![3u8; 1024]).unwrap();
        let truncated = &packed[..packed.len() - 1];
        assert!(codec.decompress(truncated, 1024).is_err());
    }

    #[test]
    fn invalid_offset_is_rejected() {
        // token: 0 literals + match, offset 0xFFFF with empty output history.
        let bogus = [0x04u8, 0xFF, 0xFF];
        assert!(Lz4::new().decompress(&bogus, 8).is_err());
    }
}
