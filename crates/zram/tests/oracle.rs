//! Property tests for the memoized compression oracle: a cache hit must be
//! bit-identical to a cold codec run, for every algorithm × chunk size ×
//! page group, with the oracle enabled, disabled, or payload-caching.

use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec};
use ariadne_mem::{PageId, PAGE_SIZE};
use ariadne_trace::{AppName, WorkloadBuilder};
use ariadne_zram::{CompressionOracle, SchemeContext};
use proptest::prelude::*;

/// The workload pages oracle groups are drawn from (two apps, so groups can
/// come from either profile).
fn harness() -> (SchemeContext, Vec<PageId>) {
    let workloads = vec![
        WorkloadBuilder::new(9).scale(1024).build(AppName::Twitter),
        WorkloadBuilder::new(9).scale(1024).build(AppName::Youtube),
    ];
    let ctx = SchemeContext::new(9, &workloads);
    let pages: Vec<PageId> = workloads
        .iter()
        .flat_map(|w| w.pages.iter().map(|p| p.page))
        .collect();
    (ctx, pages)
}

fn algorithm(index: u8) -> Algorithm {
    Algorithm::ALL[index as usize % Algorithm::ALL.len()]
}

fn chunk_size(index: u8) -> ChunkSize {
    let sweep = ChunkSize::figure6_sweep();
    sweep[index as usize % sweep.len()]
}

/// Map raw picks onto a same-app page group (entries never mix apps), with
/// duplicates removed (a page is stored at most once per group).
fn group(pages: &[PageId], picks: &[u16]) -> Vec<PageId> {
    let app = pages[picks[0] as usize % pages.len()].app();
    let mut out: Vec<PageId> = Vec::new();
    for &pick in picks {
        let page = pages[pick as usize % pages.len()];
        if page.app() == app && !out.contains(&page) {
            out.push(page);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The core bit-identity contract: for any group, algorithm and chunk
    // size, (a) a cold oracle run, (b) a cache hit, (c) a disabled-oracle
    // run and (d) a direct `ChunkedCodec::compress` of the synthesized
    // bytes all report the same sizes.
    #[test]
    fn oracle_hits_are_bit_identical_to_cold_codec_runs(
        picks in proptest::collection::vec(proptest::prelude::any::<u16>(), 1..6),
        alg_pick in 0u8..3,
        chunk_pick in 0u8..11,
    ) {
        let (ctx, pages) = harness();
        let group = group(&pages, &picks);
        let algorithm = algorithm(alg_pick);
        let chunk_size = chunk_size(chunk_pick);

        let cold = ctx.compress_pages(&group, algorithm, chunk_size);
        let hit = ctx.compress_pages(&group, algorithm, chunk_size);
        prop_assert!(!cold.hit && hit.hit);

        let off = ctx
            .clone()
            .with_oracle_enabled(false)
            .compress_pages(&group, algorithm, chunk_size);
        prop_assert!(!off.hit);

        let image = ChunkedCodec::new(algorithm, chunk_size)
            .compress(&ctx.pages_bytes(&group))
            .expect("compression cannot fail");

        for outcome in [&cold, &hit, &off] {
            prop_assert_eq!(outcome.original_len, group.len() * PAGE_SIZE);
            prop_assert_eq!(outcome.original_len, image.original_len());
            prop_assert_eq!(outcome.compressed_len, image.compressed_len());
            prop_assert_eq!(outcome.chunk_count, image.chunk_count());
        }
    }

    // Payload caching: the cached image is the genuine compression of the
    // genuine page bytes — it decompresses back to them exactly and equals
    // a fresh codec run chunk for chunk.
    #[test]
    fn cached_payloads_are_the_real_compressed_images(
        picks in proptest::collection::vec(proptest::prelude::any::<u16>(), 1..4),
        alg_pick in 0u8..3,
        chunk_pick in 0u8..11,
    ) {
        let (ctx, pages) = harness();
        let ctx = ctx.with_oracle(CompressionOracle::new().with_payload_budget(1 << 20));
        let group = group(&pages, &picks);
        let algorithm = algorithm(alg_pick);
        let chunk_size = chunk_size(chunk_pick);

        let outcome = ctx.compress_pages(&group, algorithm, chunk_size);
        let bytes = ctx.pages_bytes(&group);
        let codec = ChunkedCodec::new(algorithm, chunk_size);
        let fresh = codec.compress(&bytes).expect("compression cannot fail");
        prop_assert_eq!(outcome.compressed_len, fresh.compressed_len());

        let cached = ctx
            .cached_image(&group, algorithm, chunk_size)
            .expect("payload cached within the 1 MiB budget");
        prop_assert_eq!(&cached, &fresh);
        prop_assert_eq!(codec.decompress(&cached).expect("roundtrip"), bytes);
    }
}

/// Deterministic (non-property) pin: the oracle serves hits across *clones*
/// of a context — the sharing the schemes rely on — and its counters add up.
#[test]
fn shared_oracle_counts_hits_across_context_clones() {
    let (ctx, pages) = harness();
    let group: Vec<PageId> = pages.iter().take(4).copied().collect();
    let clone = ctx.clone();
    let first = ctx.compress_pages(&group, Algorithm::Lzo, ChunkSize::k16());
    let second = clone.compress_pages(&group, Algorithm::Lzo, ChunkSize::k16());
    assert!(!first.hit && second.hit);
    assert_eq!(first.compressed_len, second.compressed_len);
    let stats = ctx.oracle_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.bytes_saved, 4 * PAGE_SIZE);
}
