//! The optimistic `DRAM` baseline: no swapping at all.
//!
//! Figures 2, 3 and 10 of the paper include a "DRAM" configuration in which
//! main memory is assumed large enough to hold every application's anonymous
//! data, so relaunches read everything straight from DRAM and the reclaim
//! path never compresses or swaps anonymous pages. It is the lower bound the
//! paper measures Ariadne against ("within 10 % of the optimistic DRAM
//! configuration").

use crate::scheme::{
    AccessKind, AccessOutcome, MemoryConfig, MemoryPressure, ReclaimOutcome, ReleasedFootprint,
    SchemeContext, SchemeStats, SwapScheme,
};
use crate::swap_scheme_identity;
use ariadne_mem::{AppId, CpuActivity, MainMemory, PageId, PageLocation, ReclaimRequest, SimClock};

/// The no-swap baseline.
///
/// ```
/// use ariadne_zram::{DramOnlyScheme, MemoryConfig, SwapScheme};
///
/// let scheme = DramOnlyScheme::new(MemoryConfig::unlimited_dram(64));
/// assert_eq!(scheme.name(), "DRAM");
/// ```
#[derive(Debug)]
pub struct DramOnlyScheme {
    dram: MainMemory,
    stats: SchemeStats,
}

impl DramOnlyScheme {
    /// Create the scheme. Normally used with [`MemoryConfig::unlimited_dram`].
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        DramOnlyScheme {
            dram: MainMemory::new(config.dram_bytes, config.watermarks),
            stats: SchemeStats::default(),
        }
    }
}

impl SwapScheme for DramOnlyScheme {
    swap_scheme_identity!("DRAM");

    fn register_page(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext) {
        // With unlimited DRAM insertion cannot fail; if a finite capacity was
        // configured we silently stop tracking overflowing pages, which keeps
        // this baseline optimistic rather than erroring.
        let _ = self.dram.insert(page);
        clock.charge_cpu(CpuActivity::Other, ctx.timing.lru_ops(1));
    }

    fn access(
        &mut self,
        page: PageId,
        _kind: AccessKind,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> AccessOutcome {
        let _ = self.dram.insert(page);
        let latency = ctx.timing.dram_access(1);
        clock.advance(latency);
        AccessOutcome {
            latency,
            found_in: PageLocation::Dram,
            io_stall: ariadne_compress::CostNanos::zero(),
        }
    }

    fn reclaim(
        &mut self,
        request: ReclaimRequest,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        // Anonymous pages are never reclaimed. The kernel still spends a
        // little CPU writing back file pages; model that as a scan over the
        // requested pages.
        let scan = ctx.timing.reclaim_scan(request.target_pages);
        clock.charge_cpu(CpuActivity::ReclaimScan, scan);
        self.stats.cpu.charge(CpuActivity::ReclaimScan, scan);
        ReclaimOutcome::default()
    }

    fn on_pressure(
        &mut self,
        _pressure: MemoryPressure,
        _clock: &mut SimClock,
        _ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        // The optimistic baseline has unlimited DRAM: pressure spikes are
        // absorbed without reclaiming (or even scanning) anything.
        ReclaimOutcome::default()
    }

    fn on_foreground(&mut self, _app: AppId) {}

    fn on_background(&mut self, _app: AppId) {}

    fn release_app(
        &mut self,
        app: AppId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReleasedFootprint {
        let evicted = self.dram.evict_app(app);
        let cost = ctx.timing.lru_ops(evicted.len());
        clock.charge_cpu(CpuActivity::Other, cost);
        self.stats.cpu.charge(CpuActivity::Other, cost);
        ReleasedFootprint {
            dram_pages: evicted.len(),
            ..ReleasedFootprint::default()
        }
    }

    fn location_of(&self, page: PageId) -> PageLocation {
        if self.dram.contains(page) {
            PageLocation::Dram
        } else {
            PageLocation::Absent
        }
    }

    fn dram(&self) -> &MainMemory {
        &self.dram
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::ReclaimRequest;
    use ariadne_trace::{AppName, WorkloadBuilder};

    fn setup() -> (DramOnlyScheme, SchemeContext, SimClock, Vec<PageId>) {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        let scheme = DramOnlyScheme::new(MemoryConfig::unlimited_dram(1024));
        (scheme, ctx, SimClock::new(), pages)
    }

    #[test]
    fn accesses_are_always_dram_hits() {
        let (mut scheme, ctx, mut clock, pages) = setup();
        for &page in &pages {
            scheme.register_page(page, &mut clock, &ctx);
        }
        let outcome = scheme.access(pages[0], AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Dram);
        assert_eq!(outcome.latency, ctx.timing.dram_access(1));
    }

    #[test]
    fn reclaim_never_compresses_or_evicts() {
        let (mut scheme, ctx, mut clock, pages) = setup();
        for &page in &pages {
            scheme.register_page(page, &mut clock, &ctx);
        }
        let before = scheme.dram().resident_pages();
        let outcome = scheme.reclaim(
            ReclaimRequest {
                target_pages: 100,
                reason: ariadne_mem::reclaim::ReclaimReason::LowWatermark,
            },
            &mut clock,
            &ctx,
        );
        assert_eq!(outcome.pages_reclaimed, 0);
        assert_eq!(scheme.dram().resident_pages(), before);
        assert_eq!(scheme.stats().compression_ops, 0);
    }

    #[test]
    fn unknown_pages_report_absent() {
        let (scheme, _ctx, _clock, pages) = setup();
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Absent);
    }
}
