//! The flash-backed `SWAP` baseline.
//!
//! Before compressed swap existed, Android (like any Linux system) could
//! reclaim anonymous pages by writing them, uncompressed, to a swap area on
//! the flash device and reading them back on demand. The paper evaluates
//! this scheme as the `SWAP` configuration: it keeps kswapd CPU usage low
//! (the CPU mostly waits for I/O) but makes relaunches slow (every miss pays
//! a flash read) and wears out the flash.

use crate::scheme::{
    AccessKind, AccessOutcome, MemoryConfig, ReclaimOutcome, ReleasedFootprint, SchemeContext,
    SchemeStats, SwapScheme,
};
use crate::swap_scheme_identity;
use crate::writeback::charge_fault_io;
use ariadne_compress::CostNanos;
use ariadne_mem::{
    AppId, CpuActivity, FlashDevice, LruList, MainMemory, PageId, PageLocation, ReclaimRequest,
    SimClock, WriteRequest, PAGE_SIZE,
};
use std::collections::HashSet;

/// The uncompressed flash-swap baseline.
///
/// ```
/// use ariadne_zram::{FlashSwapScheme, MemoryConfig, SwapScheme};
///
/// let scheme = FlashSwapScheme::new(MemoryConfig::pixel7_scaled(256));
/// assert_eq!(scheme.name(), "SWAP");
/// ```
#[derive(Debug)]
pub struct FlashSwapScheme {
    dram: MainMemory,
    flash: FlashDevice,
    lru: LruList<PageId>,
    foreground: Option<AppId>,
    stats: SchemeStats,
}

impl FlashSwapScheme {
    /// Create the scheme from a memory configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        FlashSwapScheme {
            dram: MainMemory::new(config.dram_bytes, config.watermarks),
            flash: FlashDevice::with_io(config.flash_swap_bytes, config.io),
            lru: LruList::new(),
            foreground: None,
            stats: SchemeStats::default(),
        }
    }

    /// Pick up to `count` LRU victims, protecting the foreground app when
    /// other victims exist.
    fn pick_victims(&mut self, count: usize) -> Vec<PageId> {
        let mut victims: Vec<PageId> = Vec::with_capacity(count);
        let mut skipped: Vec<PageId> = Vec::new();
        while victims.len() < count {
            match self.lru.pop_lru() {
                None => break,
                Some(page) => {
                    if Some(page.app()) == self.foreground && !self.lru.is_empty() {
                        skipped.push(page);
                    } else {
                        victims.push(page);
                    }
                }
            }
        }
        for page in skipped {
            self.lru.insert_lru(page);
        }
        victims
    }

    /// Evict `target_pages` LRU victims to flash in one (possibly batched)
    /// submission. Returns (pages evicted, user-visible latency): under the
    /// queued I/O model a direct reclaim only ever pays a queue-full stall,
    /// under the synchronous model it waits for the device writes.
    fn evict_to_flash(
        &mut self,
        target_pages: usize,
        synchronous: bool,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> (usize, CostNanos) {
        let victims = self.pick_victims(target_pages);
        if victims.is_empty() {
            return (0, CostNanos::zero());
        }

        let scan = ctx.timing.reclaim_scan(victims.len());
        clock.charge_cpu(CpuActivity::ReclaimScan, scan);
        self.stats.cpu.charge(CpuActivity::ReclaimScan, scan);

        let requests: Vec<WriteRequest> = victims
            .iter()
            .map(|page| WriteRequest {
                pages: vec![*page],
                original_bytes: PAGE_SIZE,
                stored_bytes: PAGE_SIZE,
                compressed: false,
            })
            .collect();
        let result = self.flash.submit_writes(requests, clock.now().as_nanos());
        if result.commands > 0 {
            let io_cpu = ctx.timing.lru_ops(2 * result.commands);
            clock.charge_cpu(CpuActivity::SwapIo, io_cpu);
            self.stats.cpu.charge(CpuActivity::SwapIo, io_cpu);
        }

        // Rejected pages (swap area full) stay resident.
        let rejected: HashSet<PageId> = result
            .dropped
            .iter()
            .flat_map(|r| r.pages.iter().copied())
            .collect();
        let mut evicted = 0usize;
        for page in victims {
            if rejected.contains(&page) {
                self.lru.insert_lru(page);
            } else {
                self.dram.remove(page);
                evicted += 1;
            }
        }
        self.stats.io_queue_stall_time += result.queue_stall;
        self.stats.flash = self.flash.stats();

        let mut visible_latency = CostNanos::zero();
        if synchronous {
            // Direct reclaim: the faulting thread waits for the inline
            // writes (sync mode) or for a queue slot (queued mode).
            visible_latency = result.sync_latency + result.queue_stall;
            clock.advance(visible_latency);
        }
        (evicted, visible_latency)
    }

    /// Ensure there is room for one more resident page, via direct reclaim if
    /// necessary. Returns the user-visible latency incurred.
    fn make_room(&mut self, clock: &mut SimClock, ctx: &SchemeContext) -> CostNanos {
        let mut latency = CostNanos::zero();
        while self.dram.free_bytes() < PAGE_SIZE {
            let (evicted, lat) = self.evict_to_flash(1, true, clock, ctx);
            latency += lat;
            if evicted == 0 {
                break;
            }
        }
        latency
    }
}

impl SwapScheme for FlashSwapScheme {
    // Pressure spikes use the default `on_pressure` (proactive reclaim via
    // `reclaim`): flash swap has no deferred work, eviction is the whole job.
    swap_scheme_identity!("SWAP");

    fn attach_trace(&mut self, trace: &ariadne_obs::TraceHandle) {
        self.flash.set_trace(trace);
    }

    fn register_page(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext) {
        if self.dram.contains(page) {
            self.lru.touch(page);
            return;
        }
        let _ = self.make_room(clock, ctx);
        if self.dram.insert(page).is_ok() {
            self.lru.touch(page);
            clock.charge_cpu(CpuActivity::Other, ctx.timing.lru_ops(1));
        }
    }

    fn access(
        &mut self,
        page: PageId,
        _kind: AccessKind,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> AccessOutcome {
        if self.dram.contains(page) {
            self.lru.touch(page);
            let latency = ctx.timing.dram_access(1);
            clock.advance(latency);
            return AccessOutcome {
                latency,
                found_in: PageLocation::Dram,
                io_stall: CostNanos::zero(),
            };
        }

        let found_in = if self.flash.contains(page) {
            PageLocation::Flash
        } else {
            PageLocation::Absent
        };
        let mut latency = ctx.timing.page_fault();
        let mut io_stall = CostNanos::zero();
        latency += self.make_room(clock, ctx);

        if let Some(slot) = self.flash.slot_for(page) {
            let fault = self
                .flash
                .fault_in(slot, clock.now().as_nanos())
                .expect("slot was just looked up");
            let (io_latency, stall) =
                charge_fault_io(&fault, CostNanos::zero(), &mut self.stats, clock, ctx);
            latency += io_latency;
            io_stall = stall;
            self.stats.flash = self.flash.stats();
            self.stats.swapin_sector_trace.push(slot.value());
        } else {
            // Never swapped (or dropped): model a minor fault that maps a
            // fresh zero page.
            latency += ctx.timing.dram_copy(1);
            self.stats.dropped_pages += 1;
        }

        let _ = self.dram.insert(page);
        self.lru.touch(page);
        latency += ctx.timing.dram_access(1);
        clock.advance(latency);
        AccessOutcome {
            latency,
            found_in,
            io_stall,
        }
    }

    fn reclaim(
        &mut self,
        request: ReclaimRequest,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        let (evicted, _) = self.evict_to_flash(request.target_pages, false, clock, ctx);
        ReclaimOutcome {
            pages_reclaimed: evicted,
            bytes_freed: evicted * PAGE_SIZE,
        }
    }

    fn on_foreground(&mut self, app: AppId) {
        self.foreground = Some(app);
    }

    fn on_background(&mut self, app: AppId) {
        if self.foreground == Some(app) {
            self.foreground = None;
        }
    }

    fn release_app(
        &mut self,
        app: AppId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReleasedFootprint {
        let evicted = self.dram.evict_app(app);
        for page in &evicted {
            self.lru.remove(page);
        }
        let (flash_slots, flash_pages) = self.flash.release_app(app, clock.now().as_nanos());
        self.stats.flash = self.flash.stats();
        let cost = ctx.timing.lru_ops(evicted.len() + flash_pages);
        clock.charge_cpu(CpuActivity::Other, cost);
        self.stats.cpu.charge(CpuActivity::Other, cost);
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        ReleasedFootprint {
            dram_pages: evicted.len(),
            flash_slots,
            flash_pages,
            ..ReleasedFootprint::default()
        }
    }

    fn leak_check(&self) -> Result<(), String> {
        self.flash.leak_check()
    }

    fn next_io_completion(&self) -> Option<u128> {
        self.flash.next_completion()
    }

    fn complete_io(&mut self, now_nanos: u128) -> usize {
        self.flash.retire_completed(now_nanos)
    }

    fn location_of(&self, page: PageId) -> PageLocation {
        if self.dram.contains(page) {
            PageLocation::Dram
        } else if self.flash.contains(page) {
            PageLocation::Flash
        } else {
            PageLocation::Absent
        }
    }

    fn dram(&self) -> &MainMemory {
        &self.dram
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::reclaim::ReclaimReason;
    use ariadne_mem::Watermarks;
    use ariadne_trace::{AppName, WorkloadBuilder};

    fn tiny_config(dram_pages: usize) -> MemoryConfig {
        let dram = dram_pages * PAGE_SIZE;
        MemoryConfig {
            dram_bytes: dram,
            zpool_bytes: 64 * PAGE_SIZE,
            flash_swap_bytes: 1024 * PAGE_SIZE,
            watermarks: Watermarks::new(dram / 8, dram / 4).unwrap(),
            ..MemoryConfig::pixel7_scaled(1024)
        }
    }

    fn setup(dram_pages: usize) -> (FlashSwapScheme, SchemeContext, SimClock, Vec<PageId>) {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        (
            FlashSwapScheme::new(tiny_config(dram_pages)),
            ctx,
            SimClock::new(),
            pages,
        )
    }

    #[test]
    fn resident_accesses_cost_a_dram_access() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096);
        scheme.register_page(pages[0], &mut clock, &ctx);
        let outcome = scheme.access(pages[0], AccessKind::Execution, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Dram);
        assert_eq!(outcome.latency, ctx.timing.dram_access(1));
    }

    #[test]
    fn background_reclaim_moves_lru_pages_to_flash() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096);
        for &page in pages.iter().take(50) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        let outcome = scheme.reclaim(
            ReclaimRequest {
                target_pages: 10,
                reason: ReclaimReason::LowWatermark,
            },
            &mut clock,
            &ctx,
        );
        assert_eq!(outcome.pages_reclaimed, 10);
        assert_eq!(scheme.stats().flash.writes, 10);
        // The 10 least recently registered pages were evicted.
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Flash);
        assert_eq!(scheme.location_of(pages[20]), PageLocation::Dram);
    }

    #[test]
    fn faulting_a_swapped_page_pays_flash_read_latency() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(
            ReclaimRequest {
                target_pages: 5,
                reason: ReclaimReason::LowWatermark,
            },
            &mut clock,
            &ctx,
        );
        let outcome = scheme.access(pages[0], AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Flash);
        assert!(outcome.latency >= ctx.timing.flash_read(PAGE_SIZE));
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Dram);
        assert_eq!(scheme.stats().swapin_sector_trace.len(), 1);
    }

    #[test]
    fn direct_reclaim_happens_when_dram_is_full() {
        let (mut scheme, ctx, mut clock, pages) = setup(8);
        for &page in pages.iter().take(16) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // Only 8 pages fit; the rest forced direct reclaim to flash.
        assert_eq!(scheme.dram().resident_pages(), 8);
        assert!(scheme.stats().flash.writes >= 8);
    }

    #[test]
    fn foreground_apps_pages_are_protected_from_eviction() {
        let workloads = vec![
            WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter),
            WorkloadBuilder::new(1).scale(1024).build(AppName::Youtube),
        ];
        let ctx = SchemeContext::new(1, &workloads);
        let mut clock = SimClock::new();
        let mut scheme = FlashSwapScheme::new(tiny_config(4096));
        let twitter = workloads[0].pages[0].page;
        let youtube: Vec<PageId> = workloads[1].pages.iter().map(|p| p.page).take(20).collect();
        scheme.register_page(twitter, &mut clock, &ctx);
        for &p in &youtube {
            scheme.register_page(p, &mut clock, &ctx);
        }
        scheme.on_foreground(twitter.app());
        scheme.reclaim(
            ReclaimRequest {
                target_pages: 5,
                reason: ReclaimReason::LowWatermark,
            },
            &mut clock,
            &ctx,
        );
        // Twitter's page was the global LRU victim but is foreground-protected.
        assert_eq!(scheme.location_of(twitter), PageLocation::Dram);
    }

    #[test]
    fn absent_pages_fault_without_flash_io() {
        let (mut scheme, ctx, mut clock, pages) = setup(64);
        let outcome = scheme.access(pages[0], AccessKind::Execution, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Absent);
        assert_eq!(scheme.stats().flash.reads, 0);
        assert_eq!(scheme.stats().dropped_pages, 1);
    }
}
