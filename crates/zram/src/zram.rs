//! The state-of-the-art `ZRAM` baseline.
//!
//! This is the scheme modern Android ships (§2.2 of the paper): when memory
//! pressure builds, kswapd takes the least-recently-used anonymous pages,
//! compresses them one 4 KiB page at a time with the kernel's default
//! compressor and stores the result in the zpool. A page fault on compressed
//! data decompresses it on demand — possibly after first compressing *other*
//! pages to make room, which is exactly the on-demand-compression cost the
//! paper identifies as a major source of relaunch latency. When the zpool is
//! full the scheme either drops the oldest compressed data (plain ZRAM, the
//! vendor default) or writes it back to flash (ZSWAP).

use crate::scheme::{
    AccessKind, AccessOutcome, MemoryConfig, MemoryPressure, PressureLevel, ReclaimOutcome,
    ReleasedFootprint, SchemeContext, SchemeStats, SwapScheme, WritebackPolicy,
};
use crate::swap_scheme_identity;
use crate::writeback::{charge_fault_io, ZpoolWriteback};
use ariadne_compress::{Algorithm, ChunkSize, CostNanos};
use ariadne_mem::{
    AppId, CpuActivity, FlashDevice, FlashIoMode, Hotness, LruList, MainMemory, PageId,
    PageLocation, ReclaimRequest, SimClock, Zpool, ZpoolHandle, PAGE_SIZE,
};

/// The baseline compressed-swap scheme (single-page compression, LRU victim
/// selection, on-demand decompression).
///
/// ```
/// use ariadne_zram::{MemoryConfig, SwapScheme, ZramScheme};
///
/// let scheme = ZramScheme::new(MemoryConfig::pixel7_scaled(256));
/// assert_eq!(scheme.name(), "ZRAM");
/// ```
#[derive(Debug)]
pub struct ZramScheme {
    config: MemoryConfig,
    dram: MainMemory,
    zpool: Zpool,
    flash: FlashDevice,
    lru: LruList<PageId>,
    foreground: Option<AppId>,
    stats: SchemeStats,
    /// Reusable buffer for foreground pages popped and reinserted during a
    /// victim scan, so the per-page `make_room` loop never allocates.
    pick_scratch: Vec<PageId>,
}

impl ZramScheme {
    /// Create the scheme from a memory configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        ZramScheme {
            dram: MainMemory::new(config.dram_bytes, config.watermarks),
            zpool: Zpool::new(config.zpool_bytes),
            flash: FlashDevice::with_io(config.flash_swap_bytes, config.io),
            lru: LruList::new(),
            foreground: None,
            stats: SchemeStats::default(),
            pick_scratch: Vec::new(),
            config,
        }
    }

    /// The compression algorithm in use.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// Compress one victim page into the zpool. Returns the compression
    /// latency plus any user-visible writeback cost the overflow incurred
    /// (charged to the caller as CPU; also user-visible if the caller is a
    /// direct reclaim).
    fn compress_page(
        &mut self,
        page: PageId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        // The oracle memoizes the codec run: recompressing the same page
        // (relaunch storms do this constantly) is a hash lookup, not a
        // synthesis + codec pass. Sizes are bit-identical either way.
        let outcome = ctx.compress_pages(&[page], self.config.algorithm, ChunkSize::k4());
        self.stats.record_oracle(&outcome);
        let compressed_len = outcome.compressed_len;
        let cost = ctx.compression_cost(
            self.config.algorithm,
            ChunkSize::k4(),
            outcome.original_len,
            clock.now().as_nanos(),
        );

        let writeback_latency = self.make_zpool_room(compressed_len, clock, ctx);
        if self
            .zpool
            .store(
                vec![page],
                outcome.original_len,
                compressed_len,
                ChunkSize::k4(),
                Hotness::Cold,
            )
            .is_err()
        {
            // Even after writeback the pool cannot take the entry (tiny test
            // configurations); drop the data instead.
            self.stats.dropped_pages += 1;
        }
        self.dram.remove(page);

        self.stats.compression_ops += 1;
        self.stats.pages_compressed += 1;
        self.stats.bytes_before_compression += outcome.original_len;
        self.stats.bytes_after_compression += compressed_len;
        self.stats.compression_time += cost;
        self.stats.compression_log.push(page);
        self.stats.cpu.charge(CpuActivity::Compression, cost);
        clock.charge_cpu(CpuActivity::Compression, cost);
        self.stats.zpool = self.zpool.stats();
        cost + writeback_latency
    }

    /// Free zpool space for `incoming_bytes` according to the writeback
    /// policy (oldest entries first; the shared [`ZpoolWriteback`] helper).
    /// Returns the user-visible latency of the eviction: inline device time
    /// under the synchronous I/O model, queue stalls under the queued one.
    fn make_zpool_room(
        &mut self,
        incoming_bytes: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        ZpoolWriteback {
            zpool: &mut self.zpool,
            flash: &mut self.flash,
            policy: self.config.writeback,
            prefer_cold: false,
            stats: &mut self.stats,
        }
        .make_room(incoming_bytes, clock, ctx)
    }

    /// The zpool fill level above which the ZSWAP policy wants a background
    /// flush to flash (7/8 of capacity), so the synchronous `make_zpool_room`
    /// path stays rare.
    fn flush_threshold_bytes(&self) -> usize {
        self.config.zpool_bytes - self.config.zpool_bytes / 8
    }

    /// Pick up to `count` LRU victims, protecting the foreground app when
    /// other victims exist.
    fn pick_victims(&mut self, count: usize) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        let mut skipped = std::mem::take(&mut self.pick_scratch);
        while victims.len() < count {
            match self.lru.pop_lru() {
                None => break,
                Some(page) => {
                    if Some(page.app()) == self.foreground && !self.lru.is_empty() {
                        skipped.push(page);
                    } else {
                        victims.push(page);
                    }
                }
            }
        }
        for page in skipped.drain(..) {
            self.lru.insert_lru(page);
        }
        self.pick_scratch = skipped;
        victims
    }

    /// Single-victim fast path for the per-page `make_room` loop: the same
    /// pop/skip/reinsert sequence as `pick_victims(1)`, without building the
    /// one-element vector.
    fn pick_one_victim(&mut self) -> Option<PageId> {
        let mut victim = None;
        let mut skipped = std::mem::take(&mut self.pick_scratch);
        while victim.is_none() {
            match self.lru.pop_lru() {
                None => break,
                Some(page) => {
                    if Some(page.app()) == self.foreground && !self.lru.is_empty() {
                        skipped.push(page);
                    } else {
                        victim = Some(page);
                    }
                }
            }
        }
        for page in skipped.drain(..) {
            self.lru.insert_lru(page);
        }
        self.pick_scratch = skipped;
        victim
    }

    /// Ensure one more page fits in DRAM, compressing victims synchronously
    /// if needed. Returns the user-visible latency.
    fn make_room(&mut self, clock: &mut SimClock, ctx: &SchemeContext) -> CostNanos {
        let mut latency = CostNanos::zero();
        while self.dram.free_bytes() < PAGE_SIZE {
            let Some(page) = self.pick_one_victim() else {
                break;
            };
            let cost = self.compress_page(page, clock, ctx);
            latency += cost;
            clock.advance(cost);
        }
        latency
    }

    /// Decompress the entry holding `page` back into DRAM. Returns the
    /// latency and the zpool sector it came from.
    fn decompress_entry(
        &mut self,
        handle: ZpoolHandle,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        let entry = self.zpool.remove(handle).expect("entry is live");
        let cost = ctx.decompression_cost(
            self.config.algorithm,
            entry.chunk_size,
            entry.original_bytes,
            clock.now().as_nanos(),
        );
        self.stats.decompression_ops += 1;
        self.stats.pages_decompressed += entry.pages.len();
        self.stats.decompression_time += cost;
        self.stats.cpu.charge(CpuActivity::Decompression, cost);
        clock.charge_cpu(CpuActivity::Decompression, cost);
        self.stats.swapin_sector_trace.push(entry.sector.value());
        self.stats.zpool = self.zpool.stats();
        cost
    }
}

impl SwapScheme for ZramScheme {
    swap_scheme_identity!();

    fn name(&self) -> String {
        match self.config.writeback {
            WritebackPolicy::DropOldest => "ZRAM".to_string(),
            WritebackPolicy::WritebackToFlash => "ZSWAP".to_string(),
        }
    }

    fn attach_trace(&mut self, trace: &ariadne_obs::TraceHandle) {
        self.flash.set_trace(trace);
    }

    fn register_page(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext) {
        if self.dram.contains(page) {
            self.lru.touch(page);
            return;
        }
        let _ = self.make_room(clock, ctx);
        if self.dram.insert(page).is_ok() {
            self.lru.touch(page);
            clock.charge_cpu(CpuActivity::Other, ctx.timing.lru_ops(1));
        }
    }

    fn access(
        &mut self,
        page: PageId,
        _kind: AccessKind,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> AccessOutcome {
        if self.dram.contains(page) {
            self.lru.touch(page);
            let latency = ctx.timing.dram_access(1);
            clock.advance(latency);
            return AccessOutcome {
                latency,
                found_in: PageLocation::Dram,
                io_stall: CostNanos::zero(),
            };
        }

        let mut latency = ctx.timing.page_fault();
        let mut io_stall = CostNanos::zero();
        latency += self.make_room(clock, ctx);
        let found_in;

        if let Some(handle) = self.zpool.handle_for(page) {
            found_in = PageLocation::Zpool;
            let cost = self.decompress_entry(handle, clock, ctx);
            latency += cost;
        } else if let Some(slot) = self.flash.slot_for(page) {
            found_in = PageLocation::Flash;
            let fault = self
                .flash
                .fault_in(slot, clock.now().as_nanos())
                .expect("slot was just looked up");
            let (io_latency, stall) =
                charge_fault_io(&fault, CostNanos::zero(), &mut self.stats, clock, ctx);
            latency += io_latency;
            io_stall = stall;
            if fault.compressed {
                let cost = ctx.decompression_cost(
                    self.config.algorithm,
                    ChunkSize::k4(),
                    fault.original_bytes,
                    clock.now().as_nanos(),
                );
                latency += cost;
                self.stats.decompression_ops += 1;
                self.stats.pages_decompressed += fault.pages.len();
                self.stats.decompression_time += cost;
                self.stats.cpu.charge(CpuActivity::Decompression, cost);
                clock.charge_cpu(CpuActivity::Decompression, cost);
            }
            self.stats.swapin_sector_trace.push(slot.value());
            self.stats.flash = self.flash.stats();
        } else {
            found_in = PageLocation::Absent;
            latency += ctx.timing.dram_copy(1);
            self.stats.dropped_pages += 1;
        }

        let _ = self.dram.insert(page);
        self.lru.touch(page);
        latency += ctx.timing.dram_access(1);
        clock.advance(latency);
        AccessOutcome {
            latency,
            found_in,
            io_stall,
        }
    }

    fn reclaim(
        &mut self,
        request: ReclaimRequest,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        let victims = self.pick_victims(request.target_pages);
        let scan = ctx.timing.reclaim_scan(victims.len().max(1));
        clock.charge_cpu(CpuActivity::ReclaimScan, scan);
        self.stats.cpu.charge(CpuActivity::ReclaimScan, scan);
        let mut reclaimed = 0usize;
        for page in victims {
            self.compress_page(page, clock, ctx);
            reclaimed += 1;
        }
        ReclaimOutcome {
            pages_reclaimed: reclaimed,
            bytes_freed: reclaimed * PAGE_SIZE,
        }
    }

    fn on_foreground(&mut self, app: AppId) {
        self.foreground = Some(app);
    }

    fn on_background(&mut self, app: AppId) {
        if self.foreground == Some(app) {
            self.foreground = None;
        }
    }

    fn on_pressure(
        &mut self,
        pressure: MemoryPressure,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        let outcome = self.reclaim(pressure.as_reclaim_request(), clock, ctx);
        // The compressed pool is RAM too: a *critical* spike (an imminent
        // large allocation) additionally flushes pending zswap writeback
        // immediately instead of waiting for background drain ticks. Medium
        // pressure leaves the flush to the deferred path.
        if pressure.level == PressureLevel::Critical {
            let pending = self.deferred_pages();
            if pending > 0 {
                self.drain_deferred(pending, clock, ctx);
            }
        }
        outcome
    }

    fn deferred_pages(&self) -> usize {
        // Under the ZSWAP policy, compressed data above the flush threshold
        // is deferred writeback work the engine can drain off the critical
        // path. Plain ZRAM (DropOldest) has no deferred work, and under the
        // synchronous I/O model writeback cannot overlap foreground work at
        // all — the flush happens inline on the reclaim path instead.
        if self.config.writeback != WritebackPolicy::WritebackToFlash
            || self.config.io.mode == FlashIoMode::Sync
        {
            return 0;
        }
        self.zpool
            .used_bytes()
            .saturating_sub(self.flush_threshold_bytes())
            .div_ceil(PAGE_SIZE)
    }

    fn drain_deferred(
        &mut self,
        budget: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> usize {
        if self.config.writeback != WritebackPolicy::WritebackToFlash
            || self.config.io.mode == FlashIoMode::Sync
        {
            return 0;
        }
        let threshold = self.flush_threshold_bytes();
        let flushed = ZpoolWriteback {
            zpool: &mut self.zpool,
            flash: &mut self.flash,
            policy: self.config.writeback,
            prefer_cold: false,
            stats: &mut self.stats,
        }
        .flush_above(threshold, budget, clock, ctx);
        self.stats.zpool = self.zpool.stats();
        flushed
    }

    fn release_app(
        &mut self,
        app: AppId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReleasedFootprint {
        let evicted = self.dram.evict_app(app);
        for page in &evicted {
            self.lru.remove(page);
        }
        let (zpool_entries, zpool_pages) = self.zpool.release_app(app);
        let (flash_slots, flash_pages) = self.flash.release_app(app, clock.now().as_nanos());
        self.stats.zpool = self.zpool.stats();
        self.stats.flash = self.flash.stats();
        let cost = ctx
            .timing
            .lru_ops(evicted.len() + zpool_pages + flash_pages);
        clock.charge_cpu(CpuActivity::Other, cost);
        self.stats.cpu.charge(CpuActivity::Other, cost);
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        ReleasedFootprint {
            dram_pages: evicted.len(),
            zpool_entries,
            zpool_pages,
            flash_slots,
            flash_pages,
            buffered_pages: 0,
        }
    }

    fn leak_check(&self) -> Result<(), String> {
        self.flash.leak_check()
    }

    fn next_io_completion(&self) -> Option<u128> {
        self.flash.next_completion()
    }

    fn complete_io(&mut self, now_nanos: u128) -> usize {
        self.flash.retire_completed(now_nanos)
    }

    fn location_of(&self, page: PageId) -> PageLocation {
        if self.dram.contains(page) {
            PageLocation::Dram
        } else if self.zpool.contains(page) {
            PageLocation::Zpool
        } else if self.flash.contains(page) {
            PageLocation::Flash
        } else {
            PageLocation::Absent
        }
    }

    fn dram(&self) -> &MainMemory {
        &self.dram
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::reclaim::ReclaimReason;
    use ariadne_mem::Watermarks;
    use ariadne_trace::{AppName, WorkloadBuilder};

    fn tiny_config(dram_pages: usize, zpool_pages: usize) -> MemoryConfig {
        let dram = dram_pages * PAGE_SIZE;
        MemoryConfig {
            dram_bytes: dram,
            zpool_bytes: zpool_pages * PAGE_SIZE,
            flash_swap_bytes: 4096 * PAGE_SIZE,
            watermarks: Watermarks::new(dram / 8, dram / 4).unwrap(),
            ..MemoryConfig::pixel7_scaled(1024)
        }
    }

    fn setup(
        dram_pages: usize,
        zpool_pages: usize,
    ) -> (ZramScheme, SchemeContext, SimClock, Vec<PageId>) {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        (
            ZramScheme::new(tiny_config(dram_pages, zpool_pages)),
            ctx,
            SimClock::new(),
            pages,
        )
    }

    fn reclaim_request(pages: usize) -> ReclaimRequest {
        ReclaimRequest {
            target_pages: pages,
            reason: ReclaimReason::LowWatermark,
        }
    }

    #[test]
    fn reclaim_compresses_lru_victims_into_the_zpool() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 1024);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        let outcome = scheme.reclaim(reclaim_request(10), &mut clock, &ctx);
        assert_eq!(outcome.pages_reclaimed, 10);
        assert_eq!(scheme.stats().compression_ops, 10);
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Zpool);
        assert_eq!(scheme.location_of(pages[30]), PageLocation::Dram);
        // Real compression produced a plausible ratio.
        let ratio = scheme.stats().compression_ratio();
        assert!(ratio > 1.2, "ratio {ratio}");
    }

    #[test]
    fn faulting_a_compressed_page_pays_decompression_latency() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 1024);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(10), &mut clock, &ctx);
        let outcome = scheme.access(pages[0], AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Zpool);
        let decomp = ctx
            .latency
            .decompression_cost(Algorithm::Lzo, ChunkSize::k4(), PAGE_SIZE);
        assert!(outcome.latency >= decomp);
        assert_eq!(scheme.location_of(pages[0]), PageLocation::Dram);
        assert_eq!(scheme.stats().decompression_ops, 1);
        assert_eq!(scheme.stats().swapin_sector_trace.len(), 1);
    }

    #[test]
    fn direct_reclaim_adds_compression_to_the_critical_path() {
        // DRAM fits only 8 pages: every further registration must compress.
        let (mut scheme, ctx, mut clock, pages) = setup(8, 1024);
        for &page in pages.iter().take(8) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        assert_eq!(scheme.stats().compression_ops, 0);
        scheme.register_page(pages[8], &mut clock, &ctx);
        assert!(scheme.stats().compression_ops >= 1);
        assert_eq!(scheme.dram().resident_pages(), 8);

        // A fault on a compressed page while DRAM is full pays for both the
        // on-demand compression of a victim and its own decompression.
        let compressed_page = pages[0];
        assert_eq!(scheme.location_of(compressed_page), PageLocation::Zpool);
        let outcome = scheme.access(compressed_page, AccessKind::Relaunch, &mut clock, &ctx);
        let decomp_only =
            ctx.latency
                .decompression_cost(Algorithm::Lzo, ChunkSize::k4(), PAGE_SIZE);
        assert!(
            outcome.latency.as_nanos() > decomp_only.as_nanos(),
            "fault should also pay on-demand compression"
        );
    }

    #[test]
    fn recompressing_the_same_page_hits_the_oracle_with_identical_sizes() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 1024);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(20), &mut clock, &ctx);
        assert_eq!(scheme.stats().oracle_misses, 20);
        assert_eq!(scheme.stats().oracle_hits, 0);
        let zpool_bytes_of = |scheme: &ZramScheme, page: PageId| {
            let handle = scheme.zpool.handle_for(page).expect("page is compressed");
            scheme.zpool.entry(handle).unwrap().compressed_bytes
        };
        let first_sizes: Vec<usize> = pages
            .iter()
            .take(10)
            .map(|&p| zpool_bytes_of(&scheme, p))
            .collect();

        // Fault ten pages back in, then evict them again: the second pass
        // compresses the exact same bytes and is served from the cache,
        // producing bit-identical zpool entry sizes.
        for &page in pages.iter().take(10) {
            scheme.access(page, AccessKind::Execution, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(10), &mut clock, &ctx);
        assert_eq!(scheme.stats().oracle_hits, 10);
        assert_eq!(scheme.stats().oracle_misses, 20);
        assert_eq!(scheme.stats().oracle_bytes_saved, 10 * PAGE_SIZE);
        let second_sizes: Vec<usize> = pages
            .iter()
            .take(10)
            .map(|&p| zpool_bytes_of(&scheme, p))
            .collect();
        assert_eq!(first_sizes, second_sizes);
    }

    #[test]
    fn zpool_overflow_drops_oldest_entries_by_default() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 4);
        for &page in pages.iter().take(64) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(32), &mut clock, &ctx);
        // Far more than 4 pages were compressed, so old entries were dropped.
        assert!(scheme.stats().dropped_pages > 0);
        assert!(scheme.stats().flash.writes == 0);
        // The freshly compressed data is still in the pool.
        let last_victim = scheme.stats().compression_log.last().copied().unwrap();
        assert_eq!(scheme.location_of(last_victim), PageLocation::Zpool);
    }

    #[test]
    fn zswap_writeback_moves_overflow_to_flash() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let mut clock = SimClock::new();
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        let config = tiny_config(4096, 4).with_writeback(WritebackPolicy::WritebackToFlash);
        let mut scheme = ZramScheme::new(config);
        for &page in pages.iter().take(64) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(32), &mut clock, &ctx);
        assert!(scheme.stats().flash.writes > 0);
        assert_eq!(scheme.name(), "ZSWAP");
        // A page written back to flash is still reachable.
        let written_back = pages
            .iter()
            .take(32)
            .find(|&&p| scheme.location_of(p) == PageLocation::Flash)
            .copied()
            .expect("some page was written back");
        let outcome = scheme.access(written_back, AccessKind::Relaunch, &mut clock, &ctx);
        assert_eq!(outcome.found_in, PageLocation::Flash);
        assert!(outcome.latency >= ctx.timing.flash_read(1));
    }

    #[test]
    fn compression_log_preserves_lru_order() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 1024);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // Touch the first five again so they become MRU.
        for &page in pages.iter().take(5) {
            scheme.access(page, AccessKind::Execution, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(5), &mut clock, &ctx);
        let log = &scheme.stats().compression_log;
        assert_eq!(log.len(), 5);
        // Victims are the least recently used pages (5..10), not the touched ones.
        assert_eq!(log[0], pages[5]);
        assert!(!log.contains(&pages[0]));
    }

    #[test]
    fn zswap_drain_flushes_deferred_writeback_work() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let mut clock = SimClock::new();
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        let config = tiny_config(4096, 8).with_writeback(WritebackPolicy::WritebackToFlash);
        let mut scheme = ZramScheme::new(config);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(8), &mut clock, &ctx);
        assert!(
            scheme.deferred_pages() > 0,
            "a nearly full zswap pool should report deferred flush work"
        );
        let writes_before = scheme.stats().flash.writes;
        let flushed = scheme.drain_deferred(64, &mut clock, &ctx);
        assert!(flushed > 0);
        assert!(scheme.stats().flash.writes > writes_before);
        assert_eq!(scheme.deferred_pages(), 0);
    }

    #[test]
    fn critical_pressure_flushes_zswap_immediately_but_medium_defers() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        let config = tiny_config(4096, 8).with_writeback(WritebackPolicy::WritebackToFlash);

        let filled_scheme = |clock: &mut SimClock| {
            let mut scheme = ZramScheme::new(config);
            for &page in pages.iter().take(40) {
                scheme.register_page(page, clock, &ctx);
            }
            scheme.reclaim(reclaim_request(8), clock, &ctx);
            assert!(scheme.deferred_pages() > 0);
            scheme
        };
        let pressure = |level| MemoryPressure {
            target_pages: 1,
            level,
        };

        let mut clock = SimClock::new();
        let mut critical = filled_scheme(&mut clock);
        critical.on_pressure(pressure(PressureLevel::Critical), &mut clock, &ctx);
        assert_eq!(
            critical.deferred_pages(),
            0,
            "critical pressure must flush the pending writeback now"
        );

        let mut clock = SimClock::new();
        let mut medium = filled_scheme(&mut clock);
        medium.on_pressure(pressure(PressureLevel::Medium), &mut clock, &ctx);
        assert!(
            medium.deferred_pages() > 0,
            "medium pressure leaves the flush to the deferred drain path"
        );
    }

    #[test]
    fn plain_zram_has_no_deferred_work() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 8);
        for &page in pages.iter().take(40) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(8), &mut clock, &ctx);
        assert_eq!(scheme.deferred_pages(), 0);
        assert_eq!(scheme.drain_deferred(64, &mut clock, &ctx), 0);
    }

    #[test]
    fn release_app_frees_dram_zpool_and_flash_footprint() {
        let workloads = vec![
            WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter),
            WorkloadBuilder::new(1).scale(1024).build(AppName::Youtube),
        ];
        let ctx = SchemeContext::new(1, &workloads);
        let mut clock = SimClock::new();
        let config = tiny_config(4096, 4).with_writeback(WritebackPolicy::WritebackToFlash);
        let mut scheme = ZramScheme::new(config);
        let twitter: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).take(48).collect();
        let youtube: Vec<PageId> = workloads[1].pages.iter().map(|p| p.page).take(8).collect();
        for &page in twitter.iter().chain(&youtube) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        // Compress enough of Twitter that data spreads over zpool and flash.
        scheme.reclaim(reclaim_request(32), &mut clock, &ctx);
        assert!(scheme.stats().flash.writes > 0);

        let victim = twitter[0].app();
        let footprint = scheme.release_app(victim, &mut clock, &ctx);
        assert!(footprint.dram_pages > 0);
        assert!(footprint.zpool_pages > 0 || footprint.flash_pages > 0);
        for &page in &twitter {
            assert_eq!(scheme.location_of(page), PageLocation::Absent);
        }
        for &page in &youtube {
            assert_ne!(
                scheme.location_of(page),
                PageLocation::Absent,
                "the survivor's pages must be untouched"
            );
        }
        scheme.leak_check().unwrap();
        // A second release finds nothing left.
        assert!(scheme.release_app(victim, &mut clock, &ctx).is_empty());
    }

    #[test]
    fn release_app_with_in_flight_writeback_leaves_no_leaks() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let mut clock = SimClock::new();
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).collect();
        let config = tiny_config(4096, 4).with_writeback(WritebackPolicy::WritebackToFlash);
        let mut scheme = ZramScheme::new(config);
        for &page in pages.iter().take(48) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(32), &mut clock, &ctx);
        // Writeback commands are still in flight at this instant.
        assert!(scheme.next_io_completion().is_some());

        scheme.release_app(pages[0].app(), &mut clock, &ctx);
        scheme.leak_check().unwrap();
        // The orphaned commands retire harmlessly.
        while let Some(at) = scheme.next_io_completion() {
            scheme.complete_io(at);
        }
        scheme.leak_check().unwrap();
        for &page in pages.iter().take(48) {
            assert_eq!(scheme.location_of(page), PageLocation::Absent);
        }
    }

    #[test]
    fn cpu_ledger_records_compression_and_decompression() {
        let (mut scheme, ctx, mut clock, pages) = setup(4096, 1024);
        for &page in pages.iter().take(20) {
            scheme.register_page(page, &mut clock, &ctx);
        }
        scheme.reclaim(reclaim_request(10), &mut clock, &ctx);
        scheme.access(pages[0], AccessKind::Relaunch, &mut clock, &ctx);
        let cpu = &scheme.stats().cpu;
        assert!(cpu.total_for(CpuActivity::Compression) > CostNanos::zero());
        assert!(cpu.total_for(CpuActivity::Decompression) > CostNanos::zero());
        assert!(cpu.total_for(CpuActivity::ReclaimScan) > CostNanos::zero());
        assert_eq!(
            clock.cpu().total_for(CpuActivity::Compression),
            cpu.total_for(CpuActivity::Compression)
        );
    }
}
