//! Shared zpool-overflow writeback machinery.
//!
//! ZRAM/ZSWAP (`crates/zram`) and Ariadne (`crates/core`) used to carry
//! near-identical copies of the same logic: pick a zpool victim (oldest
//! entry, optionally preferring cold data), then either drop it or write it
//! back to the flash swap area. [`ZpoolWriteback`] is the single shared
//! implementation, extended for the asynchronous flash model: under
//! [`FlashIoMode::Queued`](ariadne_mem::FlashIoMode) evicted entries are
//! packed into batched write submissions that overlap foreground execution,
//! and the only user-visible cost is a queue-full stall; under
//! [`FlashIoMode::Sync`](ariadne_mem::FlashIoMode) the device time is
//! returned so the caller can charge it inline (the legacy behaviour the
//! `writeback` experiment compares against).
//!
//! The helper lives here rather than in `ariadne-core` because the crate
//! graph points the other way: `ariadne-core` depends on `ariadne-zram` for
//! the [`SwapScheme`](crate::SwapScheme) contract, so this is the lowest
//! crate both schemes can share.

use crate::scheme::{SchemeContext, SchemeStats, WritebackPolicy};
use ariadne_compress::CostNanos;
use ariadne_mem::{
    CpuActivity, FaultIn, FlashDevice, SimClock, WriteRequest, Zpool, ZpoolEntry, ZpoolHandle,
};

/// Account the device-side cost of a flash fault — the read/stall logic
/// every flash-backed scheme shares:
///
/// * an in-flight fault (or a sync-mode read queued behind inline writes)
///   stalls for [`FaultIn::stall`], minus `overlapped` — work the caller
///   already performed (and charged) while the command kept draining, such
///   as a direct reclaim run after the fault was taken;
/// * an at-rest fault pays the device read latency;
/// * submission bookkeeping costs a couple of list operations of CPU.
///
/// Returns `(latency contribution, stall portion)`; the caller adds the
/// former to the fault latency and reports the latter as
/// [`AccessOutcome::io_stall`](crate::AccessOutcome::io_stall).
pub fn charge_fault_io(
    fault: &FaultIn,
    overlapped: CostNanos,
    stats: &mut SchemeStats,
    clock: &mut SimClock,
    ctx: &SchemeContext,
) -> (CostNanos, CostNanos) {
    let stall = CostNanos(fault.stall.as_nanos().saturating_sub(overlapped.as_nanos()));
    let mut latency = CostNanos::zero();
    if stall > CostNanos::zero() {
        latency += stall;
        stats.io_stall_time += stall;
    }
    if !fault.from_in_flight {
        latency += ctx.timing.flash_read(fault.stored_bytes);
    }
    let io_cpu = ctx.timing.lru_ops(2);
    clock.charge_cpu(CpuActivity::SwapIo, io_cpu);
    stats.cpu.charge(CpuActivity::SwapIo, io_cpu);
    (latency, stall)
}

/// A borrowed view over a scheme's zpool, flash device and statistics,
/// bundling the shared victim-selection and flush logic.
pub struct ZpoolWriteback<'a> {
    /// The compressed pool overflow victims come from.
    pub zpool: &'a mut Zpool,
    /// The flash swap device written-back entries go to.
    pub flash: &'a mut FlashDevice,
    /// Drop overflow or write it back.
    pub policy: WritebackPolicy,
    /// Prefer cold entries as victims, falling back to the oldest entry of
    /// any hotness (Ariadne); `false` selects strictly oldest-first
    /// (ZRAM/ZSWAP, which track no hotness in the pool).
    pub prefer_cold: bool,
    /// The owning scheme's statistics ledger.
    pub stats: &'a mut SchemeStats,
}

impl ZpoolWriteback<'_> {
    /// The next writeback victim: the oldest (lowest-sector) cold entry when
    /// [`ZpoolWriteback::prefer_cold`] is set and one exists, otherwise the
    /// oldest entry of any hotness.
    #[must_use]
    pub fn select_victim(&self) -> Option<ZpoolHandle> {
        if self.prefer_cold {
            if let Some((handle, _)) = self.zpool.oldest_cold() {
                return Some(handle);
            }
        }
        self.zpool.oldest().map(|(handle, _)| handle)
    }

    /// Evict victims until `incoming_bytes` fits in the zpool, flushing them
    /// according to the policy. Returns the user-visible latency the caller
    /// must charge (inline device time under the synchronous model, queue
    /// stalls under the queued model, zero when entries are dropped).
    pub fn make_room(
        &mut self,
        incoming_bytes: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        let mut victims = Vec::new();
        while self.zpool.would_overflow(incoming_bytes) && !self.zpool.is_empty() {
            let Some(handle) = self.select_victim() else {
                break;
            };
            victims.push(self.zpool.remove(handle).expect("victim handle is live"));
        }
        self.flush_entries(victims, clock, ctx)
    }

    /// Flush zpool entries above `threshold_bytes`, up to `budget_pages`
    /// pages, as one batched submission (the ZSWAP background headroom
    /// flush). Returns the number of pages flushed; any latency is the
    /// background flusher's own stall and is *not* charged to the caller.
    pub fn flush_above(
        &mut self,
        threshold_bytes: usize,
        budget_pages: usize,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> usize {
        let mut victims = Vec::new();
        let mut pages = 0usize;
        while pages < budget_pages && self.zpool.used_bytes() > threshold_bytes {
            let Some(handle) = self.select_victim() else {
                break;
            };
            let entry = self.zpool.remove(handle).expect("victim handle is live");
            pages += entry.pages.len().max(1);
            victims.push(entry);
        }
        self.flush_entries(victims, clock, ctx);
        pages
    }

    /// Flush already-removed zpool entries according to the policy. Returns
    /// the user-visible latency of the flush (see
    /// [`ZpoolWriteback::make_room`]).
    pub fn flush_entries(
        &mut self,
        entries: Vec<ZpoolEntry>,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> CostNanos {
        if entries.is_empty() {
            return CostNanos::zero();
        }
        match self.policy {
            WritebackPolicy::DropOldest => {
                for entry in &entries {
                    self.stats.dropped_pages += entry.pages.len();
                }
                CostNanos::zero()
            }
            WritebackPolicy::WritebackToFlash => {
                let submitted_pages: usize = if ctx.metrics().is_enabled() {
                    entries.iter().map(|entry| entry.pages.len()).sum()
                } else {
                    0
                };
                let requests: Vec<WriteRequest> = entries
                    .into_iter()
                    .map(|entry| WriteRequest {
                        pages: entry.pages,
                        original_bytes: entry.original_bytes,
                        stored_bytes: entry.compressed_bytes,
                        compressed: true,
                    })
                    .collect();
                let result = self.flash.submit_writes(requests, clock.now().as_nanos());
                // Submission overhead: a couple of list operations per
                // device command (batching amortizes it; a fully rejected
                // submission issued no command and costs nothing).
                if result.commands > 0 {
                    let io_cpu = ctx.timing.lru_ops(2 * result.commands);
                    clock.charge_cpu(CpuActivity::SwapIo, io_cpu);
                    self.stats.cpu.charge(CpuActivity::SwapIo, io_cpu);
                }
                for dropped in &result.dropped {
                    // Even the writeback target is full: the data is lost.
                    self.stats.dropped_pages += dropped.pages.len();
                }
                self.stats.io_queue_stall_time += result.queue_stall;
                self.stats.flash = self.flash.stats();
                if ctx.metrics().is_enabled() {
                    let dropped_pages: usize = result.dropped.iter().map(|r| r.pages.len()).sum();
                    ctx.metrics().count(
                        ariadne_obs::metrics::names::WRITEBACK_COMMANDS,
                        result.commands as u64,
                    );
                    ctx.metrics().count(
                        ariadne_obs::metrics::names::WRITEBACK_PAGES,
                        submitted_pages.saturating_sub(dropped_pages) as u64,
                    );
                }
                result.sync_latency + result.queue_stall
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::MemoryConfig;
    use ariadne_compress::ChunkSize;
    use ariadne_mem::{AppId, FlashIoConfig, Hotness, PageId, Pfn, PAGE_SIZE};
    use ariadne_trace::{AppName, WorkloadBuilder};

    fn page(pfn: u64) -> PageId {
        PageId::new(AppId::new(0), Pfn::new(pfn))
    }

    fn store(zpool: &mut Zpool, pfn: u64, hotness: Hotness) {
        zpool
            .store(vec![page(pfn)], PAGE_SIZE, 2048, ChunkSize::k4(), hotness)
            .unwrap();
    }

    fn harness(policy: WritebackPolicy) -> (Zpool, FlashDevice, SchemeStats, SchemeContext) {
        let _ = policy;
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        (
            Zpool::new(4 * PAGE_SIZE),
            FlashDevice::with_io(64 * PAGE_SIZE, FlashIoConfig::ufs31()),
            SchemeStats::default(),
            ctx,
        )
    }

    #[test]
    fn cold_entries_are_preferred_victims() {
        let (mut zpool, mut flash, mut stats, _ctx) = harness(WritebackPolicy::WritebackToFlash);
        store(&mut zpool, 1, Hotness::Hot);
        store(&mut zpool, 2, Hotness::Cold);
        let wb = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::WritebackToFlash,
            prefer_cold: true,
            stats: &mut stats,
        };
        let victim = wb.select_victim().unwrap();
        assert!(wb.zpool.entry(victim).unwrap().pages.contains(&page(2)));
    }

    #[test]
    fn without_cold_preference_the_oldest_entry_wins() {
        let (mut zpool, mut flash, mut stats, _ctx) = harness(WritebackPolicy::WritebackToFlash);
        store(&mut zpool, 1, Hotness::Hot);
        store(&mut zpool, 2, Hotness::Cold);
        let wb = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::WritebackToFlash,
            prefer_cold: false,
            stats: &mut stats,
        };
        let victim = wb.select_victim().unwrap();
        assert!(wb.zpool.entry(victim).unwrap().pages.contains(&page(1)));
    }

    #[test]
    fn make_room_batches_writeback_into_queued_commands() {
        let (mut zpool, mut flash, mut stats, ctx) = harness(WritebackPolicy::WritebackToFlash);
        for pfn in 0..4 {
            store(&mut zpool, pfn, Hotness::Cold);
        }
        let mut clock = SimClock::new();
        let latency = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::WritebackToFlash,
            prefer_cold: false,
            stats: &mut stats,
        }
        .make_room(3 * PAGE_SIZE, &mut clock, &ctx);
        // Queued mode: submission is free of user-visible latency.
        assert_eq!(latency, CostNanos::zero());
        assert!(flash.in_flight_commands() >= 1);
        assert!(stats.flash.writes >= 3);
        // Batching: fewer commands than objects.
        assert!(stats.flash.commands < stats.flash.writes);
        assert_eq!(stats.dropped_pages, 0);
    }

    #[test]
    fn sync_mode_reports_inline_device_time() {
        let (mut zpool, _, mut stats, ctx) = harness(WritebackPolicy::WritebackToFlash);
        let mut flash = FlashDevice::with_io(64 * PAGE_SIZE, FlashIoConfig::sync());
        for pfn in 0..4 {
            store(&mut zpool, pfn, Hotness::Cold);
        }
        let mut clock = SimClock::new();
        let latency = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::WritebackToFlash,
            prefer_cold: false,
            stats: &mut stats,
        }
        .make_room(3 * PAGE_SIZE, &mut clock, &ctx);
        assert!(latency > CostNanos::zero());
        assert_eq!(flash.in_flight_commands(), 0);
    }

    #[test]
    fn drop_policy_loses_the_data_without_latency() {
        let (mut zpool, mut flash, mut stats, ctx) = harness(WritebackPolicy::DropOldest);
        for pfn in 0..4 {
            store(&mut zpool, pfn, Hotness::Cold);
        }
        let mut clock = SimClock::new();
        let latency = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::DropOldest,
            prefer_cold: false,
            stats: &mut stats,
        }
        .make_room(3 * PAGE_SIZE, &mut clock, &ctx);
        assert_eq!(latency, CostNanos::zero());
        assert!(stats.dropped_pages >= 3);
        assert_eq!(stats.flash.writes, 0);
    }

    #[test]
    fn flush_above_respects_threshold_and_budget() {
        let (mut zpool, mut flash, mut stats, ctx) = harness(WritebackPolicy::WritebackToFlash);
        for pfn in 0..4 {
            store(&mut zpool, pfn, Hotness::Cold);
        }
        let mut clock = SimClock::new();
        let flushed = ZpoolWriteback {
            zpool: &mut zpool,
            flash: &mut flash,
            policy: WritebackPolicy::WritebackToFlash,
            prefer_cold: false,
            stats: &mut stats,
        }
        .flush_above(PAGE_SIZE, 2, &mut clock, &ctx);
        assert_eq!(flushed, 2);
        assert_eq!(zpool.len(), 2);
    }

    #[test]
    fn memory_config_io_override_round_trips() {
        let config =
            MemoryConfig::pixel7_scaled(64).with_io(FlashIoConfig::sync().with_queue_depth(4));
        assert_eq!(config.io.queue_depth, 4);
        assert_eq!(config.io.mode, ariadne_mem::FlashIoMode::Sync);
    }
}
