//! Baseline swap schemes for the Ariadne reproduction.
//!
//! This crate defines the [`SwapScheme`] abstraction that every memory-swap
//! policy in the workspace implements, plus the three baselines the paper
//! compares against:
//!
//! * [`DramOnlyScheme`] — the optimistic lower bound: DRAM is assumed large
//!   enough that nothing is ever swapped (the `DRAM` bars of Figures 2, 3
//!   and 10);
//! * [`FlashSwapScheme`] — the classic flash-backed swap (`SWAP` bars): LRU
//!   victims are written uncompressed to the flash swap area;
//! * [`ZramScheme`] — the state-of-the-art compressed swap used by modern
//!   Android: LRU victims are compressed one 4 KiB page at a time into the
//!   zpool and decompressed on demand, with optional ZSWAP-style writeback
//!   of compressed data to flash when the zpool fills up.
//!
//! Ariadne itself lives in the `ariadne-core` crate and implements the same
//! [`SwapScheme`] trait, so every experiment drives the four policies through
//! identical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dram_only;
pub mod oracle;
pub mod scheme;
pub mod swap;
pub mod writeback;
pub mod zram;

pub use dram_only::DramOnlyScheme;
pub use oracle::{
    CodecScratch, CompressionOracle, OracleHandle, OracleOutcome, OracleShards, OracleStats,
};
pub use scheme::{
    AccessKind, AccessOutcome, MemoryConfig, MemoryPressure, PressureLevel, ReclaimOutcome,
    ReleasedFootprint, SchemeContext, SchemeStats, SwapScheme, WritebackPolicy,
};
pub use swap::FlashSwapScheme;
pub use writeback::ZpoolWriteback;
pub use zram::ZramScheme;
