//! The memoized compression oracle.
//!
//! Every page in the workspace is synthesized deterministically: the bytes of
//! a page are a pure function of `(seed, profile, page)`. Compressing the
//! same page (or the same multi-page group) with the same algorithm and chunk
//! size therefore produces a bit-identical result every time — yet the
//! schemes used to re-pay page synthesis, a fresh buffer per page and a full
//! codec run on every relaunch storm, kswapd wake and zpool-overflow
//! writeback. [`CompressionOracle`] exploits the immutability: results are
//! memoized under `(pages, algorithm, chunk size)`, so repeated compressions
//! of unchanged data cost one hash lookup instead of a codec run.
//!
//! Three properties make the cache safe and fast:
//!
//! * **Bit-identity** — a hit returns exactly what a cold codec run would
//!   (the cold run itself goes through the zero-allocation
//!   [`compressed_len_only`](ariadne_compress::ChunkedCodec::compressed_len_only)
//!   path); property tests pin this across every algorithm × chunk size.
//! * **Zero allocation in steady state** — the probe key, the page-synthesis
//!   buffer and the per-chunk codec scratch are all reused; only the first
//!   sighting of a group allocates (to clone the key into the map).
//! * **Bounded memory** — entries are kept in strict LRU order with a
//!   configurable entry cap, and payload caching (storing the whole
//!   [`CompressedImage`], off by default) is governed by a byte budget.
//!
//! The oracle only memoizes *results* (sizes, and optionally payloads); the
//! simulated latency of a compression is still charged by the schemes from
//! the calibrated cost model, so experiment output is byte-identical with
//! the oracle on or off — only the host wall-clock changes.

use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec, CompressedImage};
use ariadne_mem::{Chain, FxHashMap, FxHasher, PageId, Slab, PAGE_SIZE};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Cache key: the exact page group plus the codec configuration. Two groups
/// with the same pages in a different order are different keys (the
/// concatenated bytes differ), which is exactly what correctness requires.
///
/// `variant` is the content-variant tag (see
/// [`CompressionOracle::lookup`]): page bytes are a pure function of
/// `(seed, page, profile variant)`, so two consultations of the same pages
/// under different profile variants are different keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OracleKey {
    algorithm: Algorithm,
    chunk_size: ChunkSize,
    variant: u64,
    pages: Vec<PageId>,
}

/// Link channel of the recency chain (head = most recently used).
const RECENCY_CHANNEL: usize = 0;
/// Link channel of the payload chain: only slots still holding a
/// [`CompressedImage`] are linked, in recency order, so payload eviction
/// pops the least recently used payload straight off the tail.
const PAYLOAD_CHANNEL: usize = 1;

/// One memoized compression result, stored in the oracle's slab. The key is
/// kept in the slot so LRU eviction can drop the index entry without a
/// reverse map.
#[derive(Debug, Clone)]
struct OracleEntry {
    key: OracleKey,
    original_len: usize,
    compressed_len: usize,
    chunk_count: usize,
    /// The full compressed image, kept only while the payload byte budget
    /// allows (metadata survives payload eviction).
    image: Option<CompressedImage>,
}

/// What one oracle consultation produced. The sizes are bit-identical
/// whether the result came from the cache or from a cold codec run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Bytes of original (uncompressed) data.
    pub original_len: usize,
    /// Bytes the compressed image would occupy.
    pub compressed_len: usize,
    /// Number of chunks the data split into.
    pub chunk_count: usize,
    /// Whether the result was served from the cache.
    pub hit: bool,
}

/// Lifetime counters of one oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Consultations served from the cache.
    pub hits: usize,
    /// Consultations that ran the codec.
    pub misses: usize,
    /// Original bytes whose synthesis + compression a hit avoided.
    pub bytes_saved: usize,
    /// Entries evicted by the LRU entry cap.
    pub evictions: usize,
    /// Payloads dropped to stay within the payload byte budget.
    pub payload_evictions: usize,
}

/// Reusable synthesis + codec state for cold compression runs: the group
/// byte buffer, the per-chunk codec scratch and one boxed codec per
/// `(algorithm, chunk size)` pair. The oracle owns one for its own
/// single-threaded convenience path; `SchemeContext` keeps one per thread
/// so cold runs never execute under the shared oracle lock.
#[derive(Debug, Default)]
pub struct CodecScratch {
    data: Vec<u8>,
    chunk: Vec<u8>,
    codecs: HashMap<(Algorithm, ChunkSize), ChunkedCodec>,
}

impl CodecScratch {
    /// Synthesize `pages` via `fill` and compress them, reusing this
    /// scratch's buffers. Returns the sizes and, when `want_image`, the full
    /// [`CompressedImage`] (the only allocating variant).
    pub fn compress(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        want_image: bool,
        fill: &mut dyn FnMut(PageId, &mut [u8; PAGE_SIZE]),
    ) -> (ariadne_compress::CompressedLen, Option<CompressedImage>) {
        let original_len = pages.len() * PAGE_SIZE;
        self.data.clear();
        self.data.resize(original_len, 0);
        for (index, &page) in pages.iter().enumerate() {
            let buf: &mut [u8; PAGE_SIZE] = (&mut self.data
                [index * PAGE_SIZE..(index + 1) * PAGE_SIZE])
                .try_into()
                .expect("page-sized slice");
            fill(page, buf);
        }
        let codec = self
            .codecs
            .entry((algorithm, chunk_size))
            .or_insert_with(|| ChunkedCodec::new(algorithm, chunk_size));
        if want_image {
            let image = codec.compress(&self.data).expect("compression cannot fail");
            let lens = ariadne_compress::CompressedLen {
                original_len: image.original_len(),
                compressed_len: image.compressed_len(),
                chunk_count: image.chunk_count(),
            };
            (lens, Some(image))
        } else {
            let lens = codec
                .compressed_len_only(&self.data, &mut self.chunk)
                .expect("compression cannot fail");
            (lens, None)
        }
    }
}

/// Deterministic memoization layer over the chunked codecs (see the module
/// documentation).
///
/// ```
/// use ariadne_zram::SchemeContext;
/// use ariadne_compress::{Algorithm, ChunkSize};
/// use ariadne_trace::{AppName, WorkloadBuilder};
///
/// let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
/// let ctx = SchemeContext::new(1, &workloads);
/// let page = workloads[0].pages[0].page;
/// let cold = ctx.compress_pages(&[page], Algorithm::Lzo, ChunkSize::k4());
/// let hit = ctx.compress_pages(&[page], Algorithm::Lzo, ChunkSize::k4());
/// assert!(!cold.hit && hit.hit);
/// assert_eq!(cold.compressed_len, hit.compressed_len);
/// ```
#[derive(Debug)]
pub struct CompressionOracle {
    enabled: bool,
    max_entries: usize,
    payload_budget: usize,
    payload_bytes: usize,
    /// Memoized results; the two intrusive link channels thread the recency
    /// and payload LRU orders through the slots, so a hit is a hash probe
    /// plus a handful of pointer updates — no tree rebalancing.
    entries: Slab<OracleEntry>,
    /// Key → slab slot.
    index: FxHashMap<OracleKey, u32>,
    /// Recency order (head = most recently used); the tail is the eviction
    /// victim, which keeps eviction order identical to the old tick-ordered
    /// map: strictly least recently used first.
    recency: Chain,
    /// Recency order over the slots that still hold a payload.
    payloads: Chain,
    /// Reused probe key: hits and the probe itself allocate nothing.
    key_scratch: OracleKey,
    /// Synthesis + codec scratch for the single-threaded convenience path
    /// ([`CompressionOracle::compress_pages`]).
    scratch: CodecScratch,
    stats: OracleStats,
}

impl CompressionOracle {
    /// Default cap on memoized entries. Each entry is a few hundred bytes of
    /// metadata, so the cap bounds the oracle to a few MiB of host memory.
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 16;

    /// Create an enabled oracle with the default entry cap and payload
    /// caching disabled (metadata only — what the swap schemes consume).
    #[must_use]
    pub fn new() -> Self {
        CompressionOracle {
            enabled: true,
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            payload_budget: 0,
            payload_bytes: 0,
            entries: Slab::new(),
            index: FxHashMap::default(),
            recency: Chain::new(),
            payloads: Chain::new(),
            key_scratch: OracleKey {
                algorithm: Algorithm::Lzo,
                chunk_size: ChunkSize::k4(),
                variant: 0,
                pages: Vec::new(),
            },
            scratch: CodecScratch::default(),
            stats: OracleStats::default(),
        }
    }

    /// Create a disabled oracle: every consultation runs the codec (still
    /// through the zero-allocation scratch path) and nothing is cached. Used
    /// to pin that results are byte-identical with memoization on or off.
    #[must_use]
    pub fn disabled() -> Self {
        CompressionOracle {
            enabled: false,
            ..CompressionOracle::new()
        }
    }

    /// Override the LRU entry cap (at least 1).
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Enable payload caching: full [`CompressedImage`]s are kept alongside
    /// the metadata while their total compressed size fits in `bytes`.
    #[must_use]
    pub fn with_payload_budget(mut self, bytes: usize) -> Self {
        self.payload_budget = bytes;
        self
    }

    /// Whether memoization is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Compressed bytes currently held by cached payloads.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Probe the cache for `(pages, algorithm, chunk_size, variant)`. A hit
    /// updates the LRU order and the hit/bytes-saved counters; a miss (or a
    /// disabled oracle) returns `None` without touching anything, so callers
    /// can run the codec **outside** the oracle lock and
    /// [`CompressionOracle::admit`] the result afterwards.
    ///
    /// `variant` distinguishes contents the `PageId` alone cannot: a page's
    /// bytes are a pure function of `(seed, page)` *plus* whether its app
    /// carries the adversarial incompressible profile. Callers that share an
    /// oracle across configurations differing only in which apps are
    /// poisoned (the adversarial-mix grid) encode those per-page flags here
    /// so each content variant memoizes independently; callers with a single
    /// configuration pass `0`.
    pub fn lookup(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        variant: u64,
    ) -> Option<OracleOutcome> {
        if !self.enabled {
            return None;
        }
        self.key_scratch.algorithm = algorithm;
        self.key_scratch.chunk_size = chunk_size;
        self.key_scratch.variant = variant;
        self.key_scratch.pages.clear();
        self.key_scratch.pages.extend_from_slice(pages);
        let slot = *self.index.get(&self.key_scratch)?;
        self.recency
            .move_front(&mut self.entries, RECENCY_CHANNEL, slot);
        let entry = self.entries.value_at(slot);
        let (original_len, outcome) = (
            entry.original_len,
            OracleOutcome {
                original_len: entry.original_len,
                compressed_len: entry.compressed_len,
                chunk_count: entry.chunk_count,
                hit: true,
            },
        );
        if entry.image.is_some() {
            self.payloads
                .move_front(&mut self.entries, PAYLOAD_CHANNEL, slot);
        }
        self.stats.hits += 1;
        self.stats.bytes_saved += original_len;
        Some(outcome)
    }

    /// Whether a cold run should build the full [`CompressedImage`] so it
    /// can be admitted as a cached payload.
    #[must_use]
    pub fn caches_payloads(&self) -> bool {
        self.enabled && self.payload_budget > 0
    }

    /// Record a cold compression result computed by the caller (typically
    /// outside the oracle lock, via [`CodecScratch::compress`]). Counts the
    /// miss and inserts the entry unless a concurrent caller admitted the
    /// same key first — duplicate computes of the same key are bit-identical
    /// by construction, so dropping the copy is harmless.
    pub fn admit(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        variant: u64,
        lens: ariadne_compress::CompressedLen,
        image: Option<CompressedImage>,
    ) -> OracleOutcome {
        let outcome = OracleOutcome {
            original_len: lens.original_len,
            compressed_len: lens.compressed_len,
            chunk_count: lens.chunk_count,
            hit: false,
        };
        if !self.enabled {
            return outcome;
        }
        self.stats.misses += 1;
        self.key_scratch.algorithm = algorithm;
        self.key_scratch.chunk_size = chunk_size;
        self.key_scratch.variant = variant;
        self.key_scratch.pages.clear();
        self.key_scratch.pages.extend_from_slice(pages);
        if self.index.contains_key(&self.key_scratch) {
            return outcome;
        }
        let image = image.filter(|i| i.compressed_len() <= self.payload_budget);
        self.payload_bytes += image.as_ref().map_or(0, CompressedImage::compressed_len);
        let has_image = image.is_some();
        let key = self.key_scratch.clone();
        let slot = self
            .entries
            .insert(OracleEntry {
                key: key.clone(),
                original_len: lens.original_len,
                compressed_len: lens.compressed_len,
                chunk_count: lens.chunk_count,
                image,
            })
            .index();
        self.index.insert(key, slot);
        self.recency
            .push_front(&mut self.entries, RECENCY_CHANNEL, slot);
        if has_image {
            self.payloads
                .push_front(&mut self.entries, PAYLOAD_CHANNEL, slot);
        }
        self.enforce_budgets();
        outcome
    }

    /// Compress the concatenated contents of `pages` with `(algorithm,
    /// chunk_size)`, serving from the cache when possible. `fill` synthesizes
    /// one page into the reused group buffer on a miss (it is not called on
    /// hits — that is the point). Single-threaded convenience over
    /// [`CompressionOracle::lookup`] / [`CompressionOracle::admit`]; lock
    /// holders that can compute outside the lock should use those directly.
    pub fn compress_pages(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        fill: &mut dyn FnMut(PageId, &mut [u8; PAGE_SIZE]),
    ) -> OracleOutcome {
        if let Some(hit) = self.lookup(pages, algorithm, chunk_size, 0) {
            return hit;
        }
        let want_image = self.caches_payloads();
        let mut scratch = std::mem::take(&mut self.scratch);
        let (lens, image) = scratch.compress(pages, algorithm, chunk_size, want_image, fill);
        self.scratch = scratch;
        self.admit(pages, algorithm, chunk_size, 0, lens, image)
    }

    /// The cached compressed image for a group, if payload caching kept it.
    #[must_use]
    pub fn cached_image(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        variant: u64,
    ) -> Option<&CompressedImage> {
        let key = OracleKey {
            algorithm,
            chunk_size,
            variant,
            pages: pages.to_vec(),
        };
        let slot = *self.index.get(&key)?;
        self.entries.value_at(slot).image.as_ref()
    }

    /// Evict (a) whole entries beyond the LRU cap and (b) payloads beyond
    /// the payload byte budget, both least-recently-used first: each victim
    /// is the tail of the respective chain, so the cost is proportional to
    /// what is actually evicted, not to the cache size.
    fn enforce_budgets(&mut self) {
        while self.index.len() > self.max_entries {
            let slot = self
                .recency
                .tail()
                .expect("non-empty cache has a recency tail");
            self.recency
                .unlink(&mut self.entries, RECENCY_CHANNEL, slot);
            if self.entries.value_at(slot).image.is_some() {
                self.payloads
                    .unlink(&mut self.entries, PAYLOAD_CHANNEL, slot);
            }
            let entry = self
                .entries
                .remove(self.entries.key_at(slot))
                .expect("recency tail names a live slot");
            self.payload_bytes -= entry
                .image
                .as_ref()
                .map_or(0, CompressedImage::compressed_len);
            self.index.remove(&entry.key);
            self.stats.evictions += 1;
        }
        while self.payload_bytes > self.payload_budget {
            let Some(slot) = self.payloads.tail() else {
                break;
            };
            self.payloads
                .unlink(&mut self.entries, PAYLOAD_CHANNEL, slot);
            let entry = self.entries.value_at_mut(slot);
            let image = entry.image.take().expect("payload chain names a payload");
            self.payload_bytes -= image.compressed_len();
            self.stats.payload_evictions += 1;
        }
    }
}

impl Default for CompressionOracle {
    fn default() -> Self {
        CompressionOracle::new()
    }
}

/// A set of independently locked [`CompressionOracle`] shards.
///
/// Consultations for different keys mostly land on different shards, so
/// parallel experiment cells sharing one oracle no longer serialize on a
/// single mutex. The shard of a key is a pure function of the key — a
/// deterministic hash of `(algorithm, chunk size, pages)` computed without
/// taking any lock — so a given group always consults the same shard and
/// memoization still never misses a repeat.
///
/// Each shard keeps strict LRU order internally; capping and payload
/// budgets are split evenly across shards. Eviction decisions therefore
/// differ from a single-lock oracle with the same total budget, but the
/// oracle only memoizes *results* (which are bit-identical wherever they
/// come from), so this is invisible in experiment output — a property the
/// oracle-equivalence suite pins.
#[derive(Debug)]
pub struct OracleShards {
    shards: Vec<Mutex<CompressionOracle>>,
    /// `shards.len() - 1`; the shard count is a power of two so selection is
    /// a mask of the key hash.
    mask: u64,
    /// Uniform shard configuration, readable without a lock.
    enabled: bool,
    caches_payloads: bool,
}

impl OracleShards {
    /// Default number of independently locked shards (a power of two).
    pub const DEFAULT_SHARDS: usize = 8;

    /// Split `template`'s configuration across `shard_count` shards
    /// (rounded up to a power of two, at least one). Entry and payload
    /// budgets are divided evenly so the total stays what the template
    /// asked for.
    #[must_use]
    pub fn new(template: CompressionOracle, shard_count: usize) -> Self {
        let count = shard_count.max(1).next_power_of_two();
        let per_shard_entries = template.max_entries.div_ceil(count).max(1);
        let per_shard_payload = template.payload_budget.div_ceil(count);
        let enabled = template.enabled;
        let caches_payloads = template.caches_payloads();
        let mut shards = Vec::with_capacity(count);
        // The template itself becomes shard 0 (preserving any entries it
        // already memoized); the rest start cold with the same config.
        let mut first = template;
        first.max_entries = per_shard_entries;
        first.payload_budget = per_shard_payload;
        first.enforce_budgets();
        shards.push(Mutex::new(first));
        for _ in 1..count {
            let mut shard = if enabled {
                CompressionOracle::new()
            } else {
                CompressionOracle::disabled()
            };
            shard.max_entries = per_shard_entries;
            shard.payload_budget = per_shard_payload;
            shards.push(Mutex::new(shard));
        }
        OracleShards {
            shards,
            mask: (count - 1) as u64,
            enabled,
            caches_payloads,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether memoization is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether cold runs should build the full [`CompressedImage`] so it can
    /// be admitted as a cached payload (lock-free: uniform across shards).
    #[must_use]
    pub fn caches_payloads(&self) -> bool {
        self.caches_payloads
    }

    /// The shard responsible for `(pages, algorithm, chunk_size, variant)`:
    /// a pure function of the key, computed without any lock.
    #[must_use]
    pub fn shard(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        variant: u64,
    ) -> &Mutex<CompressionOracle> {
        let mut hasher = FxHasher::default();
        algorithm.hash(&mut hasher);
        chunk_size.hash(&mut hasher);
        variant.hash(&mut hasher);
        pages.hash(&mut hasher);
        let index = (hasher.finish() & self.mask) as usize;
        &self.shards[index]
    }

    /// Total number of memoized entries across all shards.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock was poisoned by a panicking thread.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("oracle shard lock poisoned").len())
            .sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters summed over all shards. Hits and misses are
    /// conserved across sharding: every consultation lands on exactly one
    /// shard, so the totals match what a single-lock oracle would count.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock was poisoned by a panicking thread.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        let mut total = OracleStats::default();
        for shard in &self.shards {
            let stats = shard.lock().expect("oracle shard lock poisoned").stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.bytes_saved += stats.bytes_saved;
            total.evictions += stats.evictions;
            total.payload_evictions += stats.payload_evictions;
        }
        total
    }
}

/// A cloneable handle to one shared, sharded compression oracle.
///
/// Within one experiment, every simulated system is built from the same
/// `(seed, scale)` — the synthesized bytes of a page are identical across
/// all of them — so the oracle pays off most when *shared across systems*:
/// the ZRAM column of Figure 10 compresses the same pages once per run of
/// five apps instead of five times. Experiments create one handle and attach
/// it to every system they build; systems with different seeds must never
/// share a handle (their page contents differ).
///
/// Sharing across concurrently running systems is safe for results (hits
/// and misses report bit-identical sizes, and simulated costs never depend
/// on the cache), but the hit/miss *counters* then depend on thread
/// interleaving — which is why experiment tables never include them.
#[derive(Debug, Clone)]
pub struct OracleHandle(pub(crate) Arc<OracleShards>);

impl OracleHandle {
    /// Wrap an oracle in a shareable handle, sharding it
    /// [`OracleShards::DEFAULT_SHARDS`] ways.
    #[must_use]
    pub fn new(oracle: CompressionOracle) -> Self {
        OracleHandle(Arc::new(OracleShards::new(
            oracle,
            OracleShards::DEFAULT_SHARDS,
        )))
    }

    /// Wrap an oracle in a handle with an explicit shard count (rounded up
    /// to a power of two). `1` gives the old single-lock behaviour; the
    /// equivalence suite uses this to pin that sharding changes nothing
    /// observable.
    #[must_use]
    pub fn with_shards(oracle: CompressionOracle, shard_count: usize) -> Self {
        OracleHandle(Arc::new(OracleShards::new(oracle, shard_count)))
    }

    /// An enabled ([`CompressionOracle::new`]) or disabled
    /// ([`CompressionOracle::disabled`]) oracle behind a fresh handle.
    #[must_use]
    pub fn enabled(enabled: bool) -> Self {
        if enabled {
            OracleHandle::new(CompressionOracle::new())
        } else {
            OracleHandle::new(CompressionOracle::disabled())
        }
    }

    /// The sharded oracle behind this handle.
    #[must_use]
    pub fn shards(&self) -> &OracleShards {
        &self.0
    }

    /// Lifetime counters of the shared oracle, summed over shards.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock was poisoned by a panicking thread.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        self.0.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::{AppId, Pfn};

    fn page(pfn: u64) -> PageId {
        PageId::new(AppId::new(1), Pfn::new(pfn))
    }

    /// A synthetic filler with recognizable, deterministic per-page content.
    fn fill(page: PageId, buf: &mut [u8; PAGE_SIZE]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((page.pfn().value() as usize * 31 + i / 64) % 251) as u8;
        }
    }

    #[test]
    fn hits_return_the_cold_result_bit_for_bit() {
        let mut oracle = CompressionOracle::new();
        let pages = [page(1), page(2), page(3), page(4)];
        let cold = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16(), &mut fill);
        let hit = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16(), &mut fill);
        assert!(!cold.hit && hit.hit);
        assert_eq!(cold.original_len, hit.original_len);
        assert_eq!(cold.compressed_len, hit.compressed_len);
        assert_eq!(cold.chunk_count, hit.chunk_count);
        assert_eq!(oracle.stats().hits, 1);
        assert_eq!(oracle.stats().misses, 1);
        assert_eq!(oracle.stats().bytes_saved, 4 * PAGE_SIZE);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let mut oracle = CompressionOracle::new();
        let a = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        let b = oracle.compress_pages(&[page(1)], Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        let c = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k1(), &mut fill);
        let d = oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(!a.hit && !b.hit && !c.hit && !d.hit);
        assert_eq!(oracle.len(), 4);
    }

    #[test]
    fn disabled_oracle_caches_nothing_but_reports_identical_sizes() {
        let mut enabled = CompressionOracle::new();
        let mut disabled = CompressionOracle::disabled();
        let pages = [page(7), page(9)];
        let on = enabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        let off = disabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        assert_eq!(on.compressed_len, off.compressed_len);
        let off2 = disabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        assert!(!off2.hit, "disabled oracle never hits");
        assert!(disabled.is_empty());
        assert_eq!(disabled.stats().misses, 0, "disabled oracle counts nothing");
    }

    #[test]
    fn lru_cap_evicts_the_least_recently_used_entry() {
        let mut oracle = CompressionOracle::new().with_max_entries(2);
        oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        // Touch page 1 so page 2 becomes the LRU victim.
        let hit = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(hit.hit);
        oracle.compress_pages(&[page(3)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert_eq!(oracle.len(), 2);
        assert_eq!(oracle.stats().evictions, 1);
        let page1 = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(page1.hit, "page 1 survived (recently used)");
        let page2 = oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(!page2.hit, "page 2 was the LRU victim");
    }

    #[test]
    fn lookup_admit_round_trip_and_duplicate_admits_are_harmless() {
        let mut oracle = CompressionOracle::new();
        let pages = [page(5), page(6)];
        assert!(oracle
            .lookup(&pages, Algorithm::Lzo, ChunkSize::k4(), 0)
            .is_none());

        // Compute outside the oracle (the two-phase context path) and admit.
        let mut scratch = CodecScratch::default();
        let (lens, image) =
            scratch.compress(&pages, Algorithm::Lzo, ChunkSize::k4(), false, &mut fill);
        assert!(image.is_none(), "payload caching is off by default");
        let admitted = oracle.admit(&pages, Algorithm::Lzo, ChunkSize::k4(), 0, lens, image);
        assert!(!admitted.hit);

        // A concurrent duplicate compute admits the same key again: counted
        // as a miss, entry kept once, later lookups hit.
        let (lens2, _) =
            scratch.compress(&pages, Algorithm::Lzo, ChunkSize::k4(), false, &mut fill);
        assert_eq!(lens, lens2, "duplicate computes are bit-identical");
        oracle.admit(&pages, Algorithm::Lzo, ChunkSize::k4(), 0, lens2, None);
        assert_eq!(oracle.len(), 1);
        assert_eq!(oracle.stats().misses, 2);
        let hit = oracle
            .lookup(&pages, Algorithm::Lzo, ChunkSize::k4(), 0)
            .expect("admitted entry must hit");
        assert_eq!(hit.compressed_len, lens.compressed_len);
    }

    #[test]
    fn payload_budget_keeps_and_drops_whole_images() {
        let mut oracle = CompressionOracle::new().with_payload_budget(2 * PAGE_SIZE);
        let pages = [page(1)];
        oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        let image = oracle
            .cached_image(&pages, Algorithm::Lzo, ChunkSize::k4(), 0)
            .expect("payload cached within budget")
            .clone();
        // The cached payload is the real compression of the real bytes.
        let mut data = vec![0u8; PAGE_SIZE];
        fill(pages[0], (&mut data[..]).try_into().unwrap());
        let codec = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
        assert_eq!(codec.decompress(&image).unwrap(), data);
        assert_eq!(image, codec.compress(&data).unwrap());

        // Fill past the byte budget: old payloads are dropped, metadata stays.
        for pfn in 10..40 {
            oracle.compress_pages(&[page(pfn)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        }
        assert!(oracle.payload_bytes() <= 2 * PAGE_SIZE);
        assert!(oracle.stats().payload_evictions > 0);
        let hit = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(hit.hit, "metadata survives payload eviction");
    }
}
