//! The memoized compression oracle.
//!
//! Every page in the workspace is synthesized deterministically: the bytes of
//! a page are a pure function of `(seed, profile, page)`. Compressing the
//! same page (or the same multi-page group) with the same algorithm and chunk
//! size therefore produces a bit-identical result every time — yet the
//! schemes used to re-pay page synthesis, a fresh buffer per page and a full
//! codec run on every relaunch storm, kswapd wake and zpool-overflow
//! writeback. [`CompressionOracle`] exploits the immutability: results are
//! memoized under `(pages, algorithm, chunk size)`, so repeated compressions
//! of unchanged data cost one hash lookup instead of a codec run.
//!
//! Three properties make the cache safe and fast:
//!
//! * **Bit-identity** — a hit returns exactly what a cold codec run would
//!   (the cold run itself goes through the zero-allocation
//!   [`compressed_len_only`](ariadne_compress::ChunkedCodec::compressed_len_only)
//!   path); property tests pin this across every algorithm × chunk size.
//! * **Zero allocation in steady state** — the probe key, the page-synthesis
//!   buffer and the per-chunk codec scratch are all reused; only the first
//!   sighting of a group allocates (to clone the key into the map).
//! * **Bounded memory** — entries are kept in strict LRU order with a
//!   configurable entry cap, and payload caching (storing the whole
//!   [`CompressedImage`], off by default) is governed by a byte budget.
//!
//! The oracle only memoizes *results* (sizes, and optionally payloads); the
//! simulated latency of a compression is still charged by the schemes from
//! the calibrated cost model, so experiment output is byte-identical with
//! the oracle on or off — only the host wall-clock changes.

use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec, CompressedImage};
use ariadne_mem::{PageId, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Cache key: the exact page group plus the codec configuration. Two groups
/// with the same pages in a different order are different keys (the
/// concatenated bytes differ), which is exactly what correctness requires.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OracleKey {
    algorithm: Algorithm,
    chunk_size: ChunkSize,
    pages: Vec<PageId>,
}

/// One memoized compression result.
#[derive(Debug, Clone)]
struct Slot {
    /// LRU tick of the most recent use (key into the order map).
    tick: u64,
    original_len: usize,
    compressed_len: usize,
    chunk_count: usize,
    /// The full compressed image, kept only while the payload byte budget
    /// allows (metadata survives payload eviction).
    image: Option<CompressedImage>,
}

/// What one oracle consultation produced. The sizes are bit-identical
/// whether the result came from the cache or from a cold codec run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Bytes of original (uncompressed) data.
    pub original_len: usize,
    /// Bytes the compressed image would occupy.
    pub compressed_len: usize,
    /// Number of chunks the data split into.
    pub chunk_count: usize,
    /// Whether the result was served from the cache.
    pub hit: bool,
}

/// Lifetime counters of one oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Consultations served from the cache.
    pub hits: usize,
    /// Consultations that ran the codec.
    pub misses: usize,
    /// Original bytes whose synthesis + compression a hit avoided.
    pub bytes_saved: usize,
    /// Entries evicted by the LRU entry cap.
    pub evictions: usize,
    /// Payloads dropped to stay within the payload byte budget.
    pub payload_evictions: usize,
}

/// Reusable synthesis + codec state for cold compression runs: the group
/// byte buffer, the per-chunk codec scratch and one boxed codec per
/// `(algorithm, chunk size)` pair. The oracle owns one for its own
/// single-threaded convenience path; `SchemeContext` keeps one per thread
/// so cold runs never execute under the shared oracle lock.
#[derive(Debug, Default)]
pub struct CodecScratch {
    data: Vec<u8>,
    chunk: Vec<u8>,
    codecs: HashMap<(Algorithm, ChunkSize), ChunkedCodec>,
}

impl CodecScratch {
    /// Synthesize `pages` via `fill` and compress them, reusing this
    /// scratch's buffers. Returns the sizes and, when `want_image`, the full
    /// [`CompressedImage`] (the only allocating variant).
    pub fn compress(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        want_image: bool,
        fill: &mut dyn FnMut(PageId, &mut [u8; PAGE_SIZE]),
    ) -> (ariadne_compress::CompressedLen, Option<CompressedImage>) {
        let original_len = pages.len() * PAGE_SIZE;
        self.data.clear();
        self.data.resize(original_len, 0);
        for (index, &page) in pages.iter().enumerate() {
            let buf: &mut [u8; PAGE_SIZE] = (&mut self.data
                [index * PAGE_SIZE..(index + 1) * PAGE_SIZE])
                .try_into()
                .expect("page-sized slice");
            fill(page, buf);
        }
        let codec = self
            .codecs
            .entry((algorithm, chunk_size))
            .or_insert_with(|| ChunkedCodec::new(algorithm, chunk_size));
        if want_image {
            let image = codec.compress(&self.data).expect("compression cannot fail");
            let lens = ariadne_compress::CompressedLen {
                original_len: image.original_len(),
                compressed_len: image.compressed_len(),
                chunk_count: image.chunk_count(),
            };
            (lens, Some(image))
        } else {
            let lens = codec
                .compressed_len_only(&self.data, &mut self.chunk)
                .expect("compression cannot fail");
            (lens, None)
        }
    }
}

/// Deterministic memoization layer over the chunked codecs (see the module
/// documentation).
///
/// ```
/// use ariadne_zram::SchemeContext;
/// use ariadne_compress::{Algorithm, ChunkSize};
/// use ariadne_trace::{AppName, WorkloadBuilder};
///
/// let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
/// let ctx = SchemeContext::new(1, &workloads);
/// let page = workloads[0].pages[0].page;
/// let cold = ctx.compress_pages(&[page], Algorithm::Lzo, ChunkSize::k4());
/// let hit = ctx.compress_pages(&[page], Algorithm::Lzo, ChunkSize::k4());
/// assert!(!cold.hit && hit.hit);
/// assert_eq!(cold.compressed_len, hit.compressed_len);
/// ```
#[derive(Debug)]
pub struct CompressionOracle {
    enabled: bool,
    max_entries: usize,
    payload_budget: usize,
    payload_bytes: usize,
    tick: u64,
    entries: HashMap<OracleKey, Slot>,
    /// LRU order: tick → key. Ticks are unique, so the lowest tick is always
    /// the least recently used entry; eviction order is fully deterministic.
    order: BTreeMap<u64, OracleKey>,
    /// The ticks (in LRU order) of the slots that still hold a payload, so
    /// payload eviction pops the oldest payload directly instead of
    /// rescanning already-stripped entries.
    payload_ticks: BTreeSet<u64>,
    /// Reused probe key: hits and the probe itself allocate nothing.
    key_scratch: OracleKey,
    /// Synthesis + codec scratch for the single-threaded convenience path
    /// ([`CompressionOracle::compress_pages`]).
    scratch: CodecScratch,
    stats: OracleStats,
}

impl CompressionOracle {
    /// Default cap on memoized entries. Each entry is a few hundred bytes of
    /// metadata, so the cap bounds the oracle to a few MiB of host memory.
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 16;

    /// Create an enabled oracle with the default entry cap and payload
    /// caching disabled (metadata only — what the swap schemes consume).
    #[must_use]
    pub fn new() -> Self {
        CompressionOracle {
            enabled: true,
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            payload_budget: 0,
            payload_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            payload_ticks: BTreeSet::new(),
            key_scratch: OracleKey {
                algorithm: Algorithm::Lzo,
                chunk_size: ChunkSize::k4(),
                pages: Vec::new(),
            },
            scratch: CodecScratch::default(),
            stats: OracleStats::default(),
        }
    }

    /// Create a disabled oracle: every consultation runs the codec (still
    /// through the zero-allocation scratch path) and nothing is cached. Used
    /// to pin that results are byte-identical with memoization on or off.
    #[must_use]
    pub fn disabled() -> Self {
        CompressionOracle {
            enabled: false,
            ..CompressionOracle::new()
        }
    }

    /// Override the LRU entry cap (at least 1).
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    /// Enable payload caching: full [`CompressedImage`]s are kept alongside
    /// the metadata while their total compressed size fits in `bytes`.
    #[must_use]
    pub fn with_payload_budget(mut self, bytes: usize) -> Self {
        self.payload_budget = bytes;
        self
    }

    /// Whether memoization is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compressed bytes currently held by cached payloads.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Probe the cache for `(pages, algorithm, chunk_size)`. A hit updates
    /// the LRU order and the hit/bytes-saved counters; a miss (or a disabled
    /// oracle) returns `None` without touching anything, so callers can run
    /// the codec **outside** the oracle lock and [`CompressionOracle::admit`]
    /// the result afterwards.
    pub fn lookup(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
    ) -> Option<OracleOutcome> {
        if !self.enabled {
            return None;
        }
        self.key_scratch.algorithm = algorithm;
        self.key_scratch.chunk_size = chunk_size;
        self.key_scratch.pages.clear();
        self.key_scratch.pages.extend_from_slice(pages);
        let slot = self.entries.get_mut(&self.key_scratch)?;
        self.tick += 1;
        let key = self
            .order
            .remove(&slot.tick)
            .expect("every live slot has an order entry");
        self.order.insert(self.tick, key);
        if slot.image.is_some() {
            self.payload_ticks.remove(&slot.tick);
            self.payload_ticks.insert(self.tick);
        }
        slot.tick = self.tick;
        self.stats.hits += 1;
        self.stats.bytes_saved += slot.original_len;
        Some(OracleOutcome {
            original_len: slot.original_len,
            compressed_len: slot.compressed_len,
            chunk_count: slot.chunk_count,
            hit: true,
        })
    }

    /// Whether a cold run should build the full [`CompressedImage`] so it
    /// can be admitted as a cached payload.
    #[must_use]
    pub fn caches_payloads(&self) -> bool {
        self.enabled && self.payload_budget > 0
    }

    /// Record a cold compression result computed by the caller (typically
    /// outside the oracle lock, via [`CodecScratch::compress`]). Counts the
    /// miss and inserts the entry unless a concurrent caller admitted the
    /// same key first — duplicate computes of the same key are bit-identical
    /// by construction, so dropping the copy is harmless.
    pub fn admit(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        lens: ariadne_compress::CompressedLen,
        image: Option<CompressedImage>,
    ) -> OracleOutcome {
        let outcome = OracleOutcome {
            original_len: lens.original_len,
            compressed_len: lens.compressed_len,
            chunk_count: lens.chunk_count,
            hit: false,
        };
        if !self.enabled {
            return outcome;
        }
        self.stats.misses += 1;
        self.key_scratch.algorithm = algorithm;
        self.key_scratch.chunk_size = chunk_size;
        self.key_scratch.pages.clear();
        self.key_scratch.pages.extend_from_slice(pages);
        if self.entries.contains_key(&self.key_scratch) {
            return outcome;
        }
        let image = image.filter(|i| i.compressed_len() <= self.payload_budget);
        self.payload_bytes += image.as_ref().map_or(0, CompressedImage::compressed_len);
        self.tick += 1;
        if image.is_some() {
            self.payload_ticks.insert(self.tick);
        }
        let key = self.key_scratch.clone();
        self.order.insert(self.tick, key.clone());
        self.entries.insert(
            key,
            Slot {
                tick: self.tick,
                original_len: lens.original_len,
                compressed_len: lens.compressed_len,
                chunk_count: lens.chunk_count,
                image,
            },
        );
        self.enforce_budgets();
        outcome
    }

    /// Compress the concatenated contents of `pages` with `(algorithm,
    /// chunk_size)`, serving from the cache when possible. `fill` synthesizes
    /// one page into the reused group buffer on a miss (it is not called on
    /// hits — that is the point). Single-threaded convenience over
    /// [`CompressionOracle::lookup`] / [`CompressionOracle::admit`]; lock
    /// holders that can compute outside the lock should use those directly.
    pub fn compress_pages(
        &mut self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
        fill: &mut dyn FnMut(PageId, &mut [u8; PAGE_SIZE]),
    ) -> OracleOutcome {
        if let Some(hit) = self.lookup(pages, algorithm, chunk_size) {
            return hit;
        }
        let want_image = self.caches_payloads();
        let mut scratch = std::mem::take(&mut self.scratch);
        let (lens, image) = scratch.compress(pages, algorithm, chunk_size, want_image, fill);
        self.scratch = scratch;
        self.admit(pages, algorithm, chunk_size, lens, image)
    }

    /// The cached compressed image for a group, if payload caching kept it.
    #[must_use]
    pub fn cached_image(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
    ) -> Option<&CompressedImage> {
        let key = OracleKey {
            algorithm,
            chunk_size,
            pages: pages.to_vec(),
        };
        self.entries.get(&key)?.image.as_ref()
    }

    /// Evict (a) whole entries beyond the LRU cap and (b) payloads beyond
    /// the payload byte budget, both oldest-first. The payload walk pops
    /// from the payload-tick index, so its cost is proportional to the
    /// payloads actually evicted, not to the cache size.
    fn enforce_budgets(&mut self) {
        while self.entries.len() > self.max_entries {
            let (tick, key) = self
                .order
                .pop_first()
                .expect("non-empty cache has an order entry");
            let slot = self
                .entries
                .remove(&key)
                .expect("order entries name live slots");
            if slot.image.is_some() {
                self.payload_ticks.remove(&tick);
            }
            self.payload_bytes -= slot
                .image
                .as_ref()
                .map_or(0, CompressedImage::compressed_len);
            self.stats.evictions += 1;
        }
        while self.payload_bytes > self.payload_budget {
            let Some(tick) = self.payload_ticks.pop_first() else {
                break;
            };
            let key = &self.order[&tick];
            let slot = self.entries.get_mut(key).expect("live slot");
            let image = slot.image.take().expect("payload tick names a payload");
            self.payload_bytes -= image.compressed_len();
            self.stats.payload_evictions += 1;
        }
    }
}

impl Default for CompressionOracle {
    fn default() -> Self {
        CompressionOracle::new()
    }
}

/// A cloneable handle to one shared [`CompressionOracle`].
///
/// Within one experiment, every simulated system is built from the same
/// `(seed, scale)` — the synthesized bytes of a page are identical across
/// all of them — so the oracle pays off most when *shared across systems*:
/// the ZRAM column of Figure 10 compresses the same pages once per run of
/// five apps instead of five times. Experiments create one handle and attach
/// it to every system they build; systems with different seeds must never
/// share a handle (their page contents differ).
///
/// Sharing across concurrently running systems is safe for results (hits
/// and misses report bit-identical sizes, and simulated costs never depend
/// on the cache), but the hit/miss *counters* then depend on thread
/// interleaving — which is why experiment tables never include them.
#[derive(Debug, Clone)]
pub struct OracleHandle(pub(crate) std::sync::Arc<std::sync::Mutex<CompressionOracle>>);

impl OracleHandle {
    /// Wrap an oracle in a shareable handle.
    #[must_use]
    pub fn new(oracle: CompressionOracle) -> Self {
        OracleHandle(std::sync::Arc::new(std::sync::Mutex::new(oracle)))
    }

    /// An enabled ([`CompressionOracle::new`]) or disabled
    /// ([`CompressionOracle::disabled`]) oracle behind a fresh handle.
    #[must_use]
    pub fn enabled(enabled: bool) -> Self {
        if enabled {
            OracleHandle::new(CompressionOracle::new())
        } else {
            OracleHandle::new(CompressionOracle::disabled())
        }
    }

    /// Lifetime counters of the shared oracle.
    ///
    /// # Panics
    ///
    /// Panics if the lock was poisoned by a panicking thread.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        self.0.lock().expect("oracle lock poisoned").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::{AppId, Pfn};

    fn page(pfn: u64) -> PageId {
        PageId::new(AppId::new(1), Pfn::new(pfn))
    }

    /// A synthetic filler with recognizable, deterministic per-page content.
    fn fill(page: PageId, buf: &mut [u8; PAGE_SIZE]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((page.pfn().value() as usize * 31 + i / 64) % 251) as u8;
        }
    }

    #[test]
    fn hits_return_the_cold_result_bit_for_bit() {
        let mut oracle = CompressionOracle::new();
        let pages = [page(1), page(2), page(3), page(4)];
        let cold = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16(), &mut fill);
        let hit = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16(), &mut fill);
        assert!(!cold.hit && hit.hit);
        assert_eq!(cold.original_len, hit.original_len);
        assert_eq!(cold.compressed_len, hit.compressed_len);
        assert_eq!(cold.chunk_count, hit.chunk_count);
        assert_eq!(oracle.stats().hits, 1);
        assert_eq!(oracle.stats().misses, 1);
        assert_eq!(oracle.stats().bytes_saved, 4 * PAGE_SIZE);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let mut oracle = CompressionOracle::new();
        let a = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        let b = oracle.compress_pages(&[page(1)], Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        let c = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k1(), &mut fill);
        let d = oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(!a.hit && !b.hit && !c.hit && !d.hit);
        assert_eq!(oracle.len(), 4);
    }

    #[test]
    fn disabled_oracle_caches_nothing_but_reports_identical_sizes() {
        let mut enabled = CompressionOracle::new();
        let mut disabled = CompressionOracle::disabled();
        let pages = [page(7), page(9)];
        let on = enabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        let off = disabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        assert_eq!(on.compressed_len, off.compressed_len);
        let off2 = disabled.compress_pages(&pages, Algorithm::Lz4, ChunkSize::k4(), &mut fill);
        assert!(!off2.hit, "disabled oracle never hits");
        assert!(disabled.is_empty());
        assert_eq!(disabled.stats().misses, 0, "disabled oracle counts nothing");
    }

    #[test]
    fn lru_cap_evicts_the_least_recently_used_entry() {
        let mut oracle = CompressionOracle::new().with_max_entries(2);
        oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        // Touch page 1 so page 2 becomes the LRU victim.
        let hit = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(hit.hit);
        oracle.compress_pages(&[page(3)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert_eq!(oracle.len(), 2);
        assert_eq!(oracle.stats().evictions, 1);
        let page1 = oracle.compress_pages(&[page(1)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(page1.hit, "page 1 survived (recently used)");
        let page2 = oracle.compress_pages(&[page(2)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(!page2.hit, "page 2 was the LRU victim");
    }

    #[test]
    fn lookup_admit_round_trip_and_duplicate_admits_are_harmless() {
        let mut oracle = CompressionOracle::new();
        let pages = [page(5), page(6)];
        assert!(oracle
            .lookup(&pages, Algorithm::Lzo, ChunkSize::k4())
            .is_none());

        // Compute outside the oracle (the two-phase context path) and admit.
        let mut scratch = CodecScratch::default();
        let (lens, image) =
            scratch.compress(&pages, Algorithm::Lzo, ChunkSize::k4(), false, &mut fill);
        assert!(image.is_none(), "payload caching is off by default");
        let admitted = oracle.admit(&pages, Algorithm::Lzo, ChunkSize::k4(), lens, image);
        assert!(!admitted.hit);

        // A concurrent duplicate compute admits the same key again: counted
        // as a miss, entry kept once, later lookups hit.
        let (lens2, _) =
            scratch.compress(&pages, Algorithm::Lzo, ChunkSize::k4(), false, &mut fill);
        assert_eq!(lens, lens2, "duplicate computes are bit-identical");
        oracle.admit(&pages, Algorithm::Lzo, ChunkSize::k4(), lens2, None);
        assert_eq!(oracle.len(), 1);
        assert_eq!(oracle.stats().misses, 2);
        let hit = oracle
            .lookup(&pages, Algorithm::Lzo, ChunkSize::k4())
            .expect("admitted entry must hit");
        assert_eq!(hit.compressed_len, lens.compressed_len);
    }

    #[test]
    fn payload_budget_keeps_and_drops_whole_images() {
        let mut oracle = CompressionOracle::new().with_payload_budget(2 * PAGE_SIZE);
        let pages = [page(1)];
        oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        let image = oracle
            .cached_image(&pages, Algorithm::Lzo, ChunkSize::k4())
            .expect("payload cached within budget")
            .clone();
        // The cached payload is the real compression of the real bytes.
        let mut data = vec![0u8; PAGE_SIZE];
        fill(pages[0], (&mut data[..]).try_into().unwrap());
        let codec = ChunkedCodec::new(Algorithm::Lzo, ChunkSize::k4());
        assert_eq!(codec.decompress(&image).unwrap(), data);
        assert_eq!(image, codec.compress(&data).unwrap());

        // Fill past the byte budget: old payloads are dropped, metadata stays.
        for pfn in 10..40 {
            oracle.compress_pages(&[page(pfn)], Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        }
        assert!(oracle.payload_bytes() <= 2 * PAGE_SIZE);
        assert!(oracle.stats().payload_evictions > 0);
        let hit = oracle.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k4(), &mut fill);
        assert!(hit.hit, "metadata survives payload eviction");
    }
}
