//! The [`SwapScheme`] abstraction shared by the baselines and by Ariadne.
//!
//! A swap scheme owns the memory hierarchy of the simulated device (DRAM,
//! zpool, flash swap) and decides what happens on page registration, page
//! access and memory reclaim. The whole-system simulator in `ariadne-sim`
//! drives schemes exclusively through this trait, so the baseline-versus-
//! Ariadne comparisons of the paper's evaluation are apples-to-apples.

use crate::oracle::{
    CodecScratch, CompressionOracle, OracleHandle, OracleOutcome, OracleShards, OracleStats,
};
use ariadne_compress::{
    Algorithm, ChunkSize, CostNanos, LatencyModel, ThermalConfig, ThermalModel,
};
use ariadne_mem::{
    AppId, CpuBreakdown, FlashIoConfig, FlashStats, MainMemory, MemTimingModel, PageId,
    PageLocation, ReclaimReason, ReclaimRequest, SimClock, Watermarks, ZpoolStats, PAGE_SIZE,
};
use ariadne_obs::metrics::names as metric_names;
use ariadne_obs::{profile, MetricsHandle, Phase, TraceEventKind, TraceHandle};
use ariadne_trace::{AppProfile, AppWorkload, PageDataGenerator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

thread_local! {
    /// Per-thread synthesis + codec scratch for cold oracle runs, so misses
    /// never execute under the shared oracle lock (see
    /// [`SchemeContext::compress_pages`]).
    static CODEC_SCRATCH: std::cell::RefCell<CodecScratch> =
        std::cell::RefCell::new(CodecScratch::default());
}

/// Implements the [`SwapScheme`] identity boilerplate (`as_any`,
/// `as_any_mut` and optionally `name`) inside a `impl SwapScheme for ...`
/// block. Every scheme in the workspace repeats these verbatim; the macro
/// keeps them in one place.
///
/// * `swap_scheme_identity!("DRAM");` expands to the two upcasts plus a
///   `name` returning the given literal;
/// * `swap_scheme_identity!();` expands to the upcasts only, for schemes
///   whose name depends on runtime configuration.
#[macro_export]
macro_rules! swap_scheme_identity {
    ($name:expr) => {
        $crate::swap_scheme_identity!();

        fn name(&self) -> ::std::string::String {
            ::std::string::String::from($name)
        }
    };
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

/// What kind of activity triggered a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// First (cold) launch of the application.
    Launch,
    /// Hot launch — the access is on the relaunch critical path.
    Relaunch,
    /// Ordinary execution after the application is in the foreground.
    Execution,
}

/// The result of a single page access through a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// User-visible latency of the access (what accumulates into relaunch
    /// latency when the access happens during a relaunch).
    pub latency: CostNanos,
    /// Where the page was found before the access.
    pub found_in: PageLocation,
    /// The part of [`AccessOutcome::latency`] spent stalled on in-flight
    /// flash I/O (waiting for a queued write of the faulted page to
    /// complete). Always `<= latency`; zero for schemes without a flash
    /// queue or when the page was at rest.
    pub io_stall: CostNanos,
}

/// The result of a reclaim pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimOutcome {
    /// Pages removed from DRAM.
    pub pages_reclaimed: usize,
    /// Bytes of DRAM freed.
    pub bytes_freed: usize,
}

/// What [`SwapScheme::release_app`] freed when a process was killed: the
/// victim's entire footprint across every tier of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleasedFootprint {
    /// Resident pages evicted from DRAM.
    pub dram_pages: usize,
    /// Compressed zpool entries invalidated.
    pub zpool_entries: usize,
    /// Pages those zpool entries covered.
    pub zpool_pages: usize,
    /// Flash swap slots freed (at rest or with their write still in flight).
    pub flash_slots: usize,
    /// Pages those flash objects covered.
    pub flash_pages: usize,
    /// Pages dropped from the pre-decompression buffer (Ariadne only).
    pub buffered_pages: usize,
}

impl ReleasedFootprint {
    /// Total pages released across all tiers.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.dram_pages + self.zpool_pages + self.flash_pages + self.buffered_pages
    }

    /// `true` when the kill freed nothing (the app held no data).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_pages() == 0 && self.zpool_entries == 0 && self.flash_slots == 0
    }
}

/// How a scheme behaves when its zpool runs out of space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritebackPolicy {
    /// Drop the least recently stored compressed entries (the data is lost;
    /// a later access to it behaves like a cold start for those pages).
    /// This models plain ZRAM, where vendors disable writeback.
    DropOldest,
    /// Write compressed entries to the flash swap area (ZSWAP behaviour).
    WritebackToFlash,
}

/// Sizing and algorithm configuration shared by every scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// DRAM capacity in bytes available to anonymous pages.
    pub dram_bytes: usize,
    /// zpool capacity in bytes (the paper's parameter `S`, 3 GB full scale).
    pub zpool_bytes: usize,
    /// Flash swap area capacity in bytes.
    pub flash_swap_bytes: usize,
    /// Reclaim watermarks.
    pub watermarks: Watermarks,
    /// Compression algorithm (LZO is the Pixel 7 default).
    pub algorithm: Algorithm,
    /// Behaviour when the zpool is full.
    pub writeback: WritebackPolicy,
    /// The flash-device I/O model (queued/async by default; see
    /// [`FlashIoConfig`]).
    pub io: FlashIoConfig,
}

impl MemoryConfig {
    /// A Pixel-7-like configuration (12 GB DRAM, 3 GB zpool, 8 GB swap),
    /// scaled down by `scale` so simulations stay fast. `scale` = 1
    /// reproduces the full device.
    #[must_use]
    pub fn pixel7_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        // Of the 12 GB of DRAM, roughly 3 GB is available to application
        // anonymous data once the system, file cache and GPU take their
        // share; that is the budget that creates memory pressure with ten
        // live applications (whose anonymous data totals ~4.7 GB, Table 1).
        let dram = 3 * 1024 * 1024 * 1024 / scale;
        MemoryConfig {
            dram_bytes: dram,
            zpool_bytes: 3 * 1024 * 1024 * 1024 / scale,
            flash_swap_bytes: 8 * 1024 * 1024 * 1024 / scale,
            watermarks: Watermarks::android_default(dram),
            algorithm: Algorithm::Lzo,
            writeback: WritebackPolicy::DropOldest,
            io: FlashIoConfig::ufs31(),
        }
    }

    /// Same as [`MemoryConfig::pixel7_scaled`] but with an effectively
    /// unlimited DRAM, for the optimistic `DRAM` baseline.
    #[must_use]
    pub fn unlimited_dram(scale: usize) -> Self {
        let mut config = MemoryConfig::pixel7_scaled(scale);
        config.dram_bytes = usize::MAX / 4;
        config.watermarks = Watermarks::android_default(config.dram_bytes);
        config
    }

    /// Override the compression algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Override the writeback policy.
    #[must_use]
    pub fn with_writeback(mut self, writeback: WritebackPolicy) -> Self {
        self.writeback = writeback;
        self
    }

    /// Override the flash I/O model.
    #[must_use]
    pub fn with_io(mut self, io: FlashIoConfig) -> Self {
        self.io = io;
        self
    }
}

/// How urgent a memory-pressure notification is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PressureLevel {
    /// Background pressure: reclaim can proceed at leisure.
    Medium,
    /// Critical pressure: a large allocation is imminent.
    Critical,
}

/// A memory-pressure notification delivered by the simulation engine when a
/// pressure-spike event fires (camera burst, large file-cache allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPressure {
    /// How many pages the platform wants freed.
    pub target_pages: usize,
    /// How urgent the request is.
    pub level: PressureLevel,
}

impl MemoryPressure {
    /// The equivalent proactive [`ReclaimRequest`].
    #[must_use]
    pub fn as_reclaim_request(&self) -> ReclaimRequest {
        ReclaimRequest {
            target_pages: self.target_pages,
            reason: ReclaimReason::Proactive {
                bytes: self.target_pages * PAGE_SIZE,
            },
        }
    }
}

/// [`SchemeContext::poison_flags`] value: calibrated content profile.
const CALIBRATED: u8 = 0;
/// [`SchemeContext::poison_flags`] value: adversarial incompressible profile.
const POISONED: u8 = 1;
/// [`SchemeContext::poison_flags`] value: app id outside the workload set.
const NO_PROFILE: u8 = 2;

/// Read-only context handed to schemes: page contents, application profiles,
/// the latency models and the shared [`CompressionOracle`].
#[derive(Debug, Clone)]
pub struct SchemeContext {
    data: PageDataGenerator,
    profiles: HashMap<AppId, AppProfile>,
    /// `poison_flags[app id]` — [`POISONED`] when the app carries the
    /// adversarial incompressible profile, [`CALIBRATED`] when calibrated,
    /// [`NO_PROFILE`] when the id is outside the workload set. Dense so the
    /// per-consultation content-variant tag costs an array index per page
    /// instead of a hash probe (the oracle hit path runs millions of times).
    poison_flags: Vec<u8>,
    /// The memoized, sharded compression oracle shared by every consumer of
    /// this context (clones share the same cache).
    oracle: Arc<OracleShards>,
    /// Memory-hierarchy latency constants.
    pub timing: MemTimingModel,
    /// Compression-latency cost model.
    pub latency: LatencyModel,
    /// How many pages of deferred work the engine hands a scheme per drain
    /// tick (see [`SwapScheme::drain_deferred`]).
    pub drain_batch_pages: usize,
    /// The thermal throttling state. Every scheme charges (de)compression
    /// through [`SchemeContext::compression_cost`] /
    /// [`SchemeContext::decompression_cost`], so the throttle hits all of
    /// them identically; disabled (the default) it is a pass-through.
    thermal: ThermalModel,
    /// Structured-event sink (disabled by default; see `ariadne-obs`).
    /// Observation never perturbs simulation: a disabled handle is one
    /// branch, an enabled one only copies values out.
    trace: TraceHandle,
    /// Metrics sink for codec counters/ratios (disabled by default).
    metrics: MetricsHandle,
}

impl SchemeContext {
    /// Build a context for the given workloads (oracle enabled).
    #[must_use]
    pub fn new(seed: u64, workloads: &[AppWorkload]) -> Self {
        let max_id = workloads
            .iter()
            .map(|w| w.app.value() as usize)
            .max()
            .unwrap_or(0);
        let mut poison_flags = vec![NO_PROFILE; max_id + 1];
        for w in workloads {
            poison_flags[w.app.value() as usize] = if w.profile.media_weight >= 1.0 {
                POISONED
            } else {
                CALIBRATED
            };
        }
        SchemeContext {
            data: PageDataGenerator::new(seed),
            profiles: workloads.iter().map(|w| (w.app, w.profile)).collect(),
            poison_flags,
            oracle: Arc::new(OracleShards::new(
                CompressionOracle::new(),
                OracleShards::DEFAULT_SHARDS,
            )),
            timing: MemTimingModel::pixel7(),
            latency: LatencyModel::pixel7(),
            drain_batch_pages: 32,
            thermal: ThermalModel::default(),
            trace: TraceHandle::disabled(),
            metrics: MetricsHandle::disabled(),
        }
    }

    /// Attach a trace sink: codec cost charges and thermal inflations are
    /// emitted through it. Disabled handles (the default) cost one branch.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Attach a metrics sink: codec op counters and compression-ratio
    /// samples are recorded through it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// The attached trace handle (disabled unless [`SchemeContext::with_trace`] ran).
    #[must_use]
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The attached metrics handle (disabled unless [`SchemeContext::with_metrics`] ran).
    #[must_use]
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Enable (or explicitly disable) the thermal throttling model. The
    /// returned context starts from a cold CPU.
    #[must_use]
    pub fn with_thermal(mut self, config: ThermalConfig) -> Self {
        self.thermal = ThermalModel::new(config);
        self
    }

    /// The thermal throttling state (heat level, lifetime inflation).
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Simulated time to compress `bytes` in chunks of `chunk` at instant
    /// `now_nanos`, inflated by the current thermal throttle. All schemes
    /// must charge compression through here (not [`SchemeContext::latency`]
    /// directly), so throttling treats them identically.
    #[must_use]
    pub fn compression_cost(
        &self,
        algorithm: Algorithm,
        chunk: ChunkSize,
        bytes: usize,
        now_nanos: u128,
    ) -> CostNanos {
        let base = self.latency.compression_cost(algorithm, chunk, bytes);
        let cost = self.thermal.charge(base, now_nanos);
        if cost > base {
            self.metrics.count(metric_names::THERMAL_INFLATIONS, 1);
            self.trace
                .emit(now_nanos, || TraceEventKind::ThermalInflation {
                    base_nanos: base.0,
                    inflated_nanos: cost.0,
                });
        }
        self.metrics.count(metric_names::COMPRESS_OPS, 1);
        self.trace.emit(now_nanos, || TraceEventKind::Compress {
            bytes,
            cost_nanos: cost.0,
        });
        cost
    }

    /// Simulated time to decompress `bytes` of original data compressed in
    /// chunks of `chunk`, inflated by the current thermal throttle (the
    /// decompression counterpart of [`SchemeContext::compression_cost`]).
    #[must_use]
    pub fn decompression_cost(
        &self,
        algorithm: Algorithm,
        chunk: ChunkSize,
        bytes: usize,
        now_nanos: u128,
    ) -> CostNanos {
        let base = self.latency.decompression_cost(algorithm, chunk, bytes);
        let cost = self.thermal.charge(base, now_nanos);
        if cost > base {
            self.metrics.count(metric_names::THERMAL_INFLATIONS, 1);
            self.trace
                .emit(now_nanos, || TraceEventKind::ThermalInflation {
                    base_nanos: base.0,
                    inflated_nanos: cost.0,
                });
        }
        self.metrics.count(metric_names::DECOMPRESS_OPS, 1);
        self.trace.emit(now_nanos, || TraceEventKind::Decompress {
            bytes,
            cost_nanos: cost.0,
        });
        cost
    }

    /// Override the deferred-work drain batch size.
    #[must_use]
    pub fn with_drain_batch_pages(mut self, pages: usize) -> Self {
        self.drain_batch_pages = pages.max(1);
        self
    }

    /// Replace the oracle (e.g. [`CompressionOracle::disabled`] to pin that
    /// results are byte-identical with memoization off, or one with a
    /// payload budget). The context gets its own fresh cache.
    #[must_use]
    pub fn with_oracle(mut self, oracle: CompressionOracle) -> Self {
        self.oracle = Arc::new(OracleShards::new(oracle, OracleShards::DEFAULT_SHARDS));
        self
    }

    /// Enable or disable memoization, keeping everything else. Results are
    /// byte-identical either way; only host wall-clock changes.
    #[must_use]
    pub fn with_oracle_enabled(self, enabled: bool) -> Self {
        if enabled {
            self.with_oracle(CompressionOracle::new())
        } else {
            self.with_oracle(CompressionOracle::disabled())
        }
    }

    /// Attach a shared oracle: this context joins the cache behind `handle`
    /// (see [`OracleHandle`] for when sharing is sound).
    #[must_use]
    pub fn with_oracle_handle(mut self, handle: &OracleHandle) -> Self {
        self.oracle = std::sync::Arc::clone(&handle.0);
        self
    }

    /// A handle to this context's oracle, for sharing it with other systems
    /// built from the same seed.
    #[must_use]
    pub fn oracle_handle(&self) -> OracleHandle {
        OracleHandle(std::sync::Arc::clone(&self.oracle))
    }

    /// The synthetic contents of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the page belongs to an application that was not part of the
    /// workloads this context was built from.
    #[must_use]
    pub fn page_bytes(&self, page: PageId) -> Vec<u8> {
        let profile = self
            .profiles
            .get(&page.app())
            .unwrap_or_else(|| panic!("no profile registered for {}", page.app()));
        self.data.page_bytes(profile, page)
    }

    /// Synthesize the contents of `page` into a caller-provided buffer
    /// without allocating (the zero-allocation variant of
    /// [`SchemeContext::page_bytes`]).
    ///
    /// # Panics
    ///
    /// Panics if the page belongs to an application that was not part of the
    /// workloads this context was built from.
    pub fn fill_page_bytes(&self, page: PageId, out: &mut [u8; PAGE_SIZE]) {
        let profile = self
            .profiles
            .get(&page.app())
            .unwrap_or_else(|| panic!("no profile registered for {}", page.app()));
        self.data.fill_page_bytes(profile, page, out);
    }

    /// Concatenated contents of several pages (what a multi-page compression
    /// chunk operates on).
    #[must_use]
    pub fn pages_bytes(&self, pages: &[PageId]) -> Vec<u8> {
        let mut out = Vec::with_capacity(pages.len() * PAGE_SIZE);
        for page in pages {
            out.extend(self.page_bytes(*page));
        }
        out
    }

    /// Compress the concatenated contents of `pages` through the shared
    /// [`CompressionOracle`]: a repeat of an earlier `(pages, algorithm,
    /// chunk_size)` consultation is served from the cache without
    /// re-synthesizing or re-compressing a single byte. The sizes returned
    /// are bit-identical to a cold codec run either way.
    ///
    /// # Panics
    ///
    /// Panics if a page belongs to an application that was not part of the
    /// workloads this context was built from, or if the oracle lock was
    /// poisoned by a panicking thread.
    #[must_use]
    pub fn compress_pages(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
    ) -> OracleOutcome {
        // Host-time attribution only; the simulated result is untouched.
        let _codec = profile::span(Phase::Codec);
        let outcome = self.consult_oracle(pages, algorithm, chunk_size);
        if self.metrics.is_enabled() && outcome.original_len > 0 {
            self.metrics.count(
                metric_names::COMPRESS_ORIGINAL_BYTES,
                outcome.original_len as u64,
            );
            self.metrics.count(
                metric_names::COMPRESS_STORED_BYTES,
                outcome.compressed_len as u64,
            );
            self.metrics.record(
                metric_names::COMPRESSION_RATIO_PCT,
                (outcome.compressed_len as u64).saturating_mul(100) / outcome.original_len as u64,
            );
        }
        outcome
    }

    fn consult_oracle(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
    ) -> OracleOutcome {
        // Two-phase consultation so no shard lock is ever held across a
        // codec run: pick the key's shard without locking, probe under that
        // shard's lock, compute a miss on this thread's own scratch with the
        // lock released (parallel cells of a shared grid stay parallel on
        // cold caches), then admit the result. Two threads may compute the
        // same key concurrently; the results are bit-identical by
        // construction and `admit` keeps the first.
        let variant = self.content_variant(pages);
        let shard = self.oracle.shard(pages, algorithm, chunk_size, variant);
        let want_image = {
            let mut oracle = shard.lock().expect("oracle lock poisoned");
            if let Some(hit) = oracle.lookup(pages, algorithm, chunk_size, variant) {
                return hit;
            }
            oracle.caches_payloads()
        };
        let (lens, image) = CODEC_SCRATCH.with(|scratch| {
            scratch.borrow_mut().compress(
                pages,
                algorithm,
                chunk_size,
                want_image,
                &mut |page, buf| self.fill_page_bytes(page, buf),
            )
        });
        shard
            .lock()
            .expect("oracle lock poisoned")
            .admit(pages, algorithm, chunk_size, variant, lens, image)
    }

    /// The content-variant tag of a page group: one bit per page, set when
    /// the page's app carries the adversarial incompressible profile. A
    /// page's bytes are a pure function of `(seed, page, that flag)`, so the
    /// tag makes oracle keys exact across contexts that share an oracle but
    /// poison different apps (the adversarial-mix grid).
    ///
    /// # Panics
    ///
    /// Panics if a page belongs to an application that was not part of the
    /// workloads this context was built from.
    #[must_use]
    fn content_variant(&self, pages: &[PageId]) -> u64 {
        debug_assert!(pages.len() <= 64, "group exceeds the variant bitmask");
        let mut variant = 0u64;
        for (index, page) in pages.iter().enumerate() {
            let flag = self
                .poison_flags
                .get(page.app().value() as usize)
                .copied()
                .unwrap_or(NO_PROFILE);
            assert!(
                flag != NO_PROFILE,
                "no profile registered for {}",
                page.app()
            );
            variant |= u64::from(flag) << (index & 63);
        }
        variant
    }

    /// Lifetime counters of the shared oracle.
    ///
    /// # Panics
    ///
    /// Panics if the oracle lock was poisoned by a panicking thread.
    #[must_use]
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// A clone of the compressed image the oracle cached for `(pages,
    /// algorithm, chunk_size)`, if payload caching kept one. Tests use this
    /// to pin that cached payloads are bit-identical to fresh codec runs.
    ///
    /// # Panics
    ///
    /// Panics if the oracle lock was poisoned by a panicking thread.
    #[must_use]
    pub fn cached_image(
        &self,
        pages: &[PageId],
        algorithm: Algorithm,
        chunk_size: ChunkSize,
    ) -> Option<ariadne_compress::CompressedImage> {
        let variant = self.content_variant(pages);
        self.oracle
            .shard(pages, algorithm, chunk_size, variant)
            .lock()
            .expect("oracle lock poisoned")
            .cached_image(pages, algorithm, chunk_size, variant)
            .cloned()
    }

    /// The profile of `app`, if it is part of the workload set.
    #[must_use]
    pub fn profile(&self, app: AppId) -> Option<&AppProfile> {
        self.profiles.get(&app)
    }
}

/// Lifetime statistics a scheme reports to the experiment harness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchemeStats {
    /// Number of compression operations performed.
    pub compression_ops: usize,
    /// Number of decompression operations performed.
    pub decompression_ops: usize,
    /// Pages compressed (swap-out side).
    pub pages_compressed: usize,
    /// Pages decompressed (swap-in side).
    pub pages_decompressed: usize,
    /// Original bytes passed to the compressor.
    pub bytes_before_compression: usize,
    /// Bytes produced by the compressor.
    pub bytes_after_compression: usize,
    /// Simulated time spent compressing.
    pub compression_time: CostNanos,
    /// Simulated time spent decompressing.
    pub decompression_time: CostNanos,
    /// CPU ledger of the scheme's own work.
    pub cpu: CpuBreakdown,
    /// Flash swap traffic.
    pub flash: FlashStats,
    /// zpool usage.
    pub zpool: ZpoolStats,
    /// Pages served from the pre-decompression buffer (Ariadne only).
    pub predecomp_hits: usize,
    /// Pages pre-decompressed but never used before eviction (Ariadne only).
    pub predecomp_wasted: usize,
    /// Pages whose data was dropped (zpool overflow without writeback) and
    /// had to be recreated on access.
    pub dropped_pages: usize,
    /// Fault-side flash stalls: faults waiting for an in-flight write of
    /// the faulted page to complete (queued I/O), or for the device to
    /// finish inline writeback before it can serve the read (sync I/O).
    pub io_stall_time: CostNanos,
    /// Submitter-side flash stalls: reclaim or the background flusher
    /// waiting for a free command-queue slot before submitting more
    /// writeback (a measure of writeback throttling, not of user-visible
    /// latency unless the submitter was a direct reclaim).
    pub io_queue_stall_time: CostNanos,
    /// Compressions served from the memoized [`CompressionOracle`] without
    /// running the codec.
    pub oracle_hits: usize,
    /// Compressions that had to run the codec (cold oracle consultations).
    pub oracle_misses: usize,
    /// Original bytes whose synthesis and compression an oracle hit avoided
    /// (host-CPU work saved; simulated costs are charged identically).
    pub oracle_bytes_saved: usize,
    /// Order in which pages were first compressed (the Figure 4 analysis
    /// sorts compressed data by compression time).
    pub compression_log: Vec<PageId>,
    /// zpool sectors touched by swap-ins, in access order (the Table 3
    /// locality analysis runs over this sequence).
    pub swapin_sector_trace: Vec<u64>,
}

impl SchemeStats {
    /// Aggregate compression ratio achieved so far (1.0 when nothing was
    /// compressed).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_after_compression == 0 {
            1.0
        } else {
            self.bytes_before_compression as f64 / self.bytes_after_compression as f64
        }
    }

    /// CPU time attributable to compression plus decompression — the
    /// quantity normalised in the paper's Figure 11.
    #[must_use]
    pub fn compression_cpu(&self) -> CostNanos {
        self.compression_time + self.decompression_time
    }

    /// Record one [`CompressionOracle`] consultation in the hit/miss/
    /// bytes-saved ledger (called by the schemes after every compression).
    pub fn record_oracle(&mut self, outcome: &OracleOutcome) {
        if outcome.hit {
            self.oracle_hits += 1;
            self.oracle_bytes_saved += outcome.original_len;
        } else {
            self.oracle_misses += 1;
        }
    }
}

impl fmt::Display for SchemeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comp_ops={} decomp_ops={} ratio={:.2} comp={:.2}ms decomp={:.2}ms flash_writes={}",
            self.compression_ops,
            self.decompression_ops,
            self.compression_ratio(),
            self.compression_time.as_millis_f64(),
            self.decompression_time.as_millis_f64(),
            self.flash.writes
        )
    }
}

/// A memory-swap policy: the baseline schemes and Ariadne all implement this.
pub trait SwapScheme {
    /// Upcast to [`std::any::Any`] so experiments can reach scheme-specific
    /// probes (e.g. Ariadne's identification metrics) behind `dyn SwapScheme`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable variant of [`SwapScheme::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Human-readable name (used in reports, e.g. `ZRAM`, `Ariadne-EHL-1K-2K-16K`).
    fn name(&self) -> String;

    /// Attach a trace sink to the scheme's internals (the flash device's
    /// writeback submit/complete hooks, for schemes that have one). The
    /// default ignores the handle: schemes without traced internals need no
    /// code. Observation never perturbs simulation — implementations must
    /// only copy values out through the handle.
    fn attach_trace(&mut self, _trace: &TraceHandle) {}

    /// Register a freshly allocated anonymous page and make it resident.
    /// May trigger direct reclaim internally if DRAM is full.
    fn register_page(&mut self, page: PageId, clock: &mut SimClock, ctx: &SchemeContext);

    /// Access `page` (faulting it in if it is not resident). Returns where
    /// the page was found and the user-visible latency.
    fn access(
        &mut self,
        page: PageId,
        kind: AccessKind,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> AccessOutcome;

    /// Background reclaim (kswapd): evict at least `request.target_pages`
    /// pages from DRAM according to the scheme's policy.
    fn reclaim(
        &mut self,
        request: ReclaimRequest,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome;

    /// The application moved to the foreground.
    fn on_foreground(&mut self, app: AppId);

    /// The application moved to the background.
    fn on_background(&mut self, app: AppId);

    /// A relaunch of `app` is about to start (Ariadne rotates its hot list
    /// here; baselines ignore it).
    fn on_relaunch_start(&mut self, _app: AppId) {}

    /// The relaunch of `app` finished.
    fn on_relaunch_end(&mut self, _app: AppId) {}

    /// A memory-pressure spike was injected by the event engine. The default
    /// treats it as a proactive reclaim of `pressure.target_pages` pages;
    /// schemes with nothing to proactively reclaim (the DRAM baseline)
    /// override it to a no-op.
    fn on_pressure(
        &mut self,
        pressure: MemoryPressure,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReclaimOutcome {
        self.reclaim(pressure.as_reclaim_request(), clock, ctx)
    }

    /// How many pages of deferred background work the scheme currently has
    /// pending (ZSWAP writeback flushes, Ariadne pre-decompression refills).
    /// The event engine polls this after app-lifecycle events and schedules
    /// drain ticks while it stays positive. Baselines with no deferred work
    /// keep the default of zero.
    fn deferred_pages(&self) -> usize {
        0
    }

    /// Perform up to `budget` pages of deferred background work off the
    /// relaunch critical path (CPU is charged, the clock does not advance).
    /// Returns the number of pages actually processed; the engine stops
    /// rescheduling drain ticks once this returns zero.
    fn drain_deferred(
        &mut self,
        _budget: usize,
        _clock: &mut SimClock,
        _ctx: &SchemeContext,
    ) -> usize {
        0
    }

    /// Completion time (simulated nanoseconds) of the earliest in-flight
    /// flash write command, if any. The event engine schedules an
    /// `IoComplete` event at this instant so completions land on the
    /// deterministic `(time, class, seq)` queue. Schemes without a flash
    /// queue keep the default of `None`.
    fn next_io_completion(&self) -> Option<u128> {
        None
    }

    /// Retire every flash write command whose completion time has passed
    /// `now_nanos`; its data becomes at-rest flash contents. Retirement is
    /// also performed lazily (by timestamp) on every device operation, so
    /// calling this is an accounting convenience, never a semantic
    /// requirement — that equivalence is what keeps event-driven and
    /// imperative replays byte-identical. Returns the commands retired.
    fn complete_io(&mut self, _now_nanos: u128) -> usize {
        0
    }

    /// The process of `app` was killed (by lmkd or the user): free the
    /// app's **entire** footprint — resident DRAM pages, compressed zpool
    /// entries, flash swap slots (including objects whose write command is
    /// still in flight, which must retire harmlessly afterwards) and any
    /// scheme-private caches (Ariadne's hotness lists and pre-decompression
    /// buffer). After this returns, no page of `app` may be reachable
    /// (`location_of` reports [`PageLocation::Absent`]) and
    /// [`SwapScheme::leak_check`] must still pass. Required for every
    /// scheme: forgetting a tier silently inflates effective memory
    /// capacity, which is exactly what the lifecycle experiments measure.
    fn release_app(
        &mut self,
        app: AppId,
        clock: &mut SimClock,
        ctx: &SchemeContext,
    ) -> ReleasedFootprint;

    /// Verify the scheme's internal slot/index invariants (today: the flash
    /// device's [`leak_check`](ariadne_mem::FlashDevice::leak_check)).
    /// Schemes without a flash device keep the default `Ok`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    fn leak_check(&self) -> Result<(), String> {
        Ok(())
    }

    /// Where `page` currently lives.
    fn location_of(&self, page: PageId) -> PageLocation;

    /// The scheme's DRAM model (for watermark checks by the driver).
    fn dram(&self) -> &MainMemory;

    /// Lifetime statistics.
    fn stats(&self) -> &SchemeStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_trace::{AppName, WorkloadBuilder};

    #[test]
    fn pixel7_scaled_config_preserves_ratios() {
        let full = MemoryConfig::pixel7_scaled(1);
        let scaled = MemoryConfig::pixel7_scaled(64);
        assert_eq!(full.dram_bytes / scaled.dram_bytes, 64);
        assert_eq!(full.zpool_bytes / scaled.zpool_bytes, 64);
        assert_eq!(scaled.algorithm, Algorithm::Lzo);
    }

    #[test]
    fn unlimited_dram_is_effectively_infinite() {
        let config = MemoryConfig::unlimited_dram(64);
        assert!(config.dram_bytes > (1usize << 60));
    }

    #[test]
    fn config_builders_override_fields() {
        let config = MemoryConfig::pixel7_scaled(64)
            .with_algorithm(Algorithm::Lz4)
            .with_writeback(WritebackPolicy::WritebackToFlash);
        assert_eq!(config.algorithm, Algorithm::Lz4);
        assert_eq!(config.writeback, WritebackPolicy::WritebackToFlash);
    }

    #[test]
    fn context_produces_page_bytes_for_registered_apps() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let page = workloads[0].pages[0].page;
        assert_eq!(ctx.page_bytes(page).len(), PAGE_SIZE);
        assert_eq!(ctx.pages_bytes(&[page, page]).len(), 2 * PAGE_SIZE);
        assert!(ctx.profile(page.app()).is_some());
        assert!(ctx.profile(AppId::new(1)).is_none());
    }

    #[test]
    fn context_oracle_serves_repeat_compressions_from_the_cache() {
        let workloads = vec![WorkloadBuilder::new(1).scale(1024).build(AppName::Twitter)];
        let ctx = SchemeContext::new(1, &workloads);
        let pages: Vec<PageId> = workloads[0].pages.iter().map(|p| p.page).take(4).collect();
        let cold = ctx.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16());
        let warm = ctx.compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16());
        assert!(!cold.hit && warm.hit);
        assert_eq!(cold.compressed_len, warm.compressed_len);
        assert_eq!(cold.original_len, 4 * PAGE_SIZE);
        // Clones share the cache; a disabled context gets a fresh one but
        // reports the same sizes.
        let clone_hit = ctx
            .clone()
            .compress_pages(&pages, Algorithm::Lzo, ChunkSize::k16());
        assert!(clone_hit.hit);
        let off = ctx.clone().with_oracle_enabled(false).compress_pages(
            &pages,
            Algorithm::Lzo,
            ChunkSize::k16(),
        );
        assert!(!off.hit);
        assert_eq!(off.compressed_len, cold.compressed_len);
        assert_eq!(ctx.oracle_stats().hits, 2);
    }

    #[test]
    fn stats_record_oracle_consultations() {
        let mut stats = SchemeStats::default();
        stats.record_oracle(&OracleOutcome {
            original_len: PAGE_SIZE,
            compressed_len: 1000,
            chunk_count: 1,
            hit: false,
        });
        stats.record_oracle(&OracleOutcome {
            original_len: PAGE_SIZE,
            compressed_len: 1000,
            chunk_count: 1,
            hit: true,
        });
        assert_eq!(stats.oracle_hits, 1);
        assert_eq!(stats.oracle_misses, 1);
        assert_eq!(stats.oracle_bytes_saved, PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "no profile registered")]
    fn context_panics_for_unknown_apps() {
        let ctx = SchemeContext::new(1, &[]);
        let _ = ctx.page_bytes(PageId::new(AppId::new(5), ariadne_mem::Pfn::new(0)));
    }

    #[test]
    fn stats_ratio_handles_the_empty_case() {
        let stats = SchemeStats::default();
        assert!((stats.compression_ratio() - 1.0).abs() < 1e-12);
        let stats = SchemeStats {
            bytes_before_compression: 8192,
            bytes_after_compression: 2048,
            ..SchemeStats::default()
        };
        assert!((stats.compression_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn memory_pressure_converts_to_a_proactive_request() {
        let pressure = MemoryPressure {
            target_pages: 3,
            level: PressureLevel::Medium,
        };
        let request = pressure.as_reclaim_request();
        assert_eq!(request.target_pages, 3);
        assert_eq!(
            request.reason,
            ReclaimReason::Proactive {
                bytes: 3 * PAGE_SIZE
            }
        );
    }

    #[test]
    fn drain_batch_pages_is_configurable_and_never_zero() {
        let ctx = SchemeContext::new(1, &[]);
        assert_eq!(ctx.drain_batch_pages, 32);
        assert_eq!(ctx.with_drain_batch_pages(0).drain_batch_pages, 1);
    }

    #[test]
    fn stats_display_mentions_the_key_numbers() {
        let stats = SchemeStats {
            compression_ops: 3,
            bytes_before_compression: 100,
            bytes_after_compression: 50,
            ..SchemeStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("comp_ops=3") && text.contains("2.00"));
    }
}
