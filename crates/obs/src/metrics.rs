//! Mergeable counters and log-bucketed histograms.
//!
//! The registry is the seed of the ROADMAP's fleet-scale percentile
//! sketches: a [`Histogram`] is a log-linear bucket array (4 sub-buckets per
//! power of two → every bucket is at most 25 % wide), so
//! [`Histogram::merge`] is exactly bucket-wise addition and quantiles of a
//! merged histogram equal quantiles of the concatenated sample stream —
//! pinned by the property tests in `tests/histogram_properties.rs`.
//! Counters saturate rather than wrap.

use crate::json_escape;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Well-known metric names recorded by the simulator's hook sites, so the
/// registry, the exporters and the tests agree on spelling.
pub mod names {
    /// Histogram: warm-relaunch latency, microseconds.
    pub const RELAUNCH_WARM_MICROS: &str = "relaunch_warm_micros";
    /// Histogram: cold-relaunch latency, microseconds.
    pub const RELAUNCH_COLD_MICROS: &str = "relaunch_cold_micros";
    /// Histogram: per-relaunch I/O stall, microseconds.
    pub const IO_STALL_MICROS: &str = "io_stall_micros";
    /// Histogram: PSI some-avg samples at lmkd wakes, parts-per-million.
    pub const PSI_SOME_PPM: &str = "psi_some_ppm";
    /// Histogram: compressed size as a percentage of original size.
    pub const COMPRESSION_RATIO_PCT: &str = "compression_ratio_pct";
    /// Counter: lmkd kills.
    pub const KILLS: &str = "kills";
    /// Counter: page faults served below DRAM.
    pub const FAULTS: &str = "faults";
    /// Counter: compression batches charged.
    pub const COMPRESS_OPS: &str = "compress_ops";
    /// Counter: decompressions charged.
    pub const DECOMPRESS_OPS: &str = "decompress_ops";
    /// Counter: uncompressed bytes entering the codec.
    pub const COMPRESS_ORIGINAL_BYTES: &str = "compress_original_bytes";
    /// Counter: compressed bytes leaving the codec.
    pub const COMPRESS_STORED_BYTES: &str = "compress_stored_bytes";
    /// Counter: writeback commands submitted to flash.
    pub const WRITEBACK_COMMANDS: &str = "writeback_commands";
    /// Counter: pages shipped to flash by writeback.
    pub const WRITEBACK_PAGES: &str = "writeback_pages";
    /// Counter: kswapd pressure wakes.
    pub const PRESSURE_WAKES: &str = "pressure_wakes";
    /// Counter: codec costs inflated by the thermal model.
    pub const THERMAL_INFLATIONS: &str = "thermal_inflations";
}

/// Sub-buckets per power of two. Four sub-buckets bound the relative bucket
/// width at 1/4, so any quantile is within 25 % of the exact sample value.
const SUB_BUCKET_BITS: u32 = 2;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Values 0..SUB_BUCKETS get exact unit buckets; each following octave
/// contributes SUB_BUCKETS buckets up to the top bit of `u64`.
const BUCKET_COUNT: usize = (SUB_BUCKETS + (64 - SUB_BUCKET_BITS as u64) * SUB_BUCKETS) as usize;

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let base = (msb - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS as usize;
    let sub = ((value >> (msb - SUB_BUCKET_BITS)) - SUB_BUCKETS) as usize;
    base + sub
}

fn bucket_lower(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let group = index as u64 / SUB_BUCKETS;
    let msb = group - 1 + SUB_BUCKET_BITS as u64;
    let sub = index as u64 % SUB_BUCKETS;
    (1u64 << msb) + (sub << (msb - SUB_BUCKET_BITS as u64))
}

fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let group = index as u64 / SUB_BUCKETS;
    let msb = group - 1 + SUB_BUCKET_BITS as u64;
    let width = 1u64 << (msb - SUB_BUCKET_BITS as u64);
    // The very top bucket ends exactly at u64::MAX; saturate instead of
    // overflowing past it.
    bucket_lower(index).saturating_add(width - 1)
}

/// A log-linear histogram of `u64` samples with exact count/sum (so the mean
/// is exact) and ≤25 %-wide buckets (so quantiles are within bucket
/// resolution). Merging is bucket-wise addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let index = bucket_index(value);
        self.counts[index] = self.counts[index].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(value));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of all samples, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank — within 25 % of the exact order statistic.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(bucket);
            if seen >= rank {
                return Some(bucket_upper(index).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Adds every bucket, the count, the sum and the extrema of `other`
    /// into `self`. Exactly equivalent to having recorded both sample
    /// streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower, upper, count)` triples.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (bucket_lower(index), bucket_upper(index), count))
            .collect()
    }

    fn to_json(&self) -> String {
        let quantiles = |q| {
            self.quantile(q)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        let buckets: Vec<String> = self
            .buckets()
            .iter()
            .map(|(lower, upper, count)| format!("[{lower},{upper},{count}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min().map_or_else(|| "null".into(), |v| v.to_string()),
            self.max().map_or_else(|| "null".into(), |v| v.to_string()),
            self.mean()
                .map_or_else(|| "null".into(), |v| format!("{v:.3}")),
            quantiles(0.5),
            quantiles(0.9),
            quantiles(0.99),
            buckets.join(",")
        )
    }
}

/// Named saturating counters plus named [`Histogram`]s, both stored in
/// `BTreeMap`s so every export is deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (saturating).
    pub fn count(&mut self, name: &str, delta: u64) {
        let counter = self.counters.entry(name.to_string()).or_insert(0);
        *counter = counter.saturating_add(delta);
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of the named counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add (saturating),
    /// histograms merge bucket-wise. The cross-cell aggregation primitive.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.count(name, *value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Exports the registry as one deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, value)| format!("{}:{value}", json_escape(name)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, histogram)| format!("{}:{}", json_escape(name), histogram.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            histograms.join(",")
        )
    }
}

/// A cheap, cloneable reference to a shared [`MetricsRegistry`], or — the
/// default — a disabled handle whose recorders are a single branch.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl MetricsHandle {
    /// A handle with no registry attached.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsHandle::default()
    }

    /// A handle backed by a fresh shared registry.
    #[must_use]
    pub fn new_registry() -> Self {
        MetricsHandle {
            inner: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
        }
    }

    /// Whether a registry is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the named counter (no-op when disabled).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut registry) = inner.lock() {
                registry.count(name, delta);
            }
        }
    }

    /// Records one histogram sample (no-op when disabled).
    pub fn record(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut registry) = inner.lock() {
                registry.record(name, value);
            }
        }
    }

    /// A copy of the current registry contents (None when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsRegistry> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.lock().ok().map(|registry| registry.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_total() {
        let probes = [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1_000,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ];
        let mut last = None;
        for &value in &probes {
            let index = bucket_index(value);
            assert!(index < BUCKET_COUNT, "index {index} for {value}");
            assert!(
                bucket_lower(index) <= value && value <= bucket_upper(index),
                "value {value} outside bucket [{}, {}]",
                bucket_lower(index),
                bucket_upper(index)
            );
            if let Some(previous) = last {
                assert!(index >= previous, "indexing must be monotone");
            }
            last = Some(index);
        }
    }

    #[test]
    fn bucket_width_is_within_a_quarter() {
        for &value in &[17u64, 100, 999, 4097, 1 << 30] {
            let index = bucket_index(value);
            let width = bucket_upper(index) - bucket_lower(index);
            assert!(
                (width as f64) <= 0.25 * bucket_lower(index) as f64,
                "bucket [{}, {}] wider than 25% at {value}",
                bucket_lower(index),
                bucket_upper(index)
            );
        }
    }

    #[test]
    fn mean_is_exact_and_quantiles_bracket_samples() {
        let mut histogram = Histogram::new();
        for value in [10u64, 20, 30, 40, 1000] {
            histogram.record(value);
        }
        assert_eq!(histogram.count(), 5);
        assert_eq!(histogram.mean(), Some(220.0));
        assert_eq!(histogram.min(), Some(10));
        assert_eq!(histogram.max(), Some(1000));
        let p50 = histogram.quantile(0.5).unwrap();
        assert!((20..=40).contains(&p50), "p50={p50}");
        assert_eq!(histogram.quantile(1.0), Some(1000));
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.count(names::KILLS, 2);
        b.count(names::KILLS, 3);
        a.record(names::PSI_SOME_PPM, 100);
        b.record(names::PSI_SOME_PPM, 200);
        a.merge(&b);
        assert_eq!(a.counter(names::KILLS), 5);
        assert_eq!(a.histogram(names::PSI_SOME_PPM).unwrap().count(), 2);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let handle = MetricsHandle::disabled();
        handle.count(names::KILLS, 1);
        handle.record(names::PSI_SOME_PPM, 1);
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn registry_json_is_deterministic_and_ordered() {
        let mut registry = MetricsRegistry::new();
        registry.count("zeta", 1);
        registry.count("alpha", 2);
        registry.record("lat", 42);
        let json = registry.to_json();
        assert!(json.find("\"alpha\"").unwrap() < json.find("\"zeta\"").unwrap());
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"histograms\":{"));
        assert_eq!(json, registry.clone().to_json());
    }
}
