//! Structured simulation-event tracing.
//!
//! Hook sites throughout the workspace hold a [`TraceHandle`] and call
//! [`TraceHandle::emit`] with the *simulated* timestamp and a closure that
//! builds the event. A disabled handle (the default) makes `emit` a single
//! branch — the closure never runs, nothing allocates, and the simulation
//! path is untouched. An enabled handle forwards the event to a
//! [`TraceSink`]; the stock sink is [`TraceBuffer`], a bounded ring that
//! drops the oldest events once full and exports either Chrome
//! `trace_event` JSON (loadable in Perfetto / `chrome://tracing`) or JSONL.

use crate::json_escape;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough for every event of a quick-mode grid cell
/// while bounding memory for pathological workloads.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// One structured simulation event. Variants mirror the paper-relevant
/// mechanisms: page faults, codec work, zpool→flash writeback, lmkd kills,
/// kswapd pressure wakes and thermal throttling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A page access missed DRAM and was served from a slower tier.
    Fault {
        /// Application label (e.g. `"Twitter"`).
        app: String,
        /// Numeric application id (becomes the Chrome-trace `tid`).
        app_uid: u32,
        /// Tier that served the page (`"Zpool"`, `"Flash"`, …).
        location: &'static str,
        /// Simulated stall charged for the fault.
        latency_nanos: u128,
    },
    /// A foreground relaunch completed (one measurement row).
    Relaunch {
        /// Application label.
        app: String,
        /// Numeric application id (becomes the Chrome-trace `tid`).
        app_uid: u32,
        /// `"warm"` or `"cold"`.
        kind: &'static str,
        /// End-to-end simulated relaunch latency.
        latency_nanos: u128,
    },
    /// A compression cost was charged (one batch entering the codec).
    Compress {
        /// Uncompressed bytes entering the codec.
        bytes: usize,
        /// Simulated codec cost charged (after thermal inflation).
        cost_nanos: u128,
    },
    /// A decompression cost was charged (a compressed entry read back).
    Decompress {
        /// Original (uncompressed) bytes decompressed.
        bytes: usize,
        /// Simulated codec cost charged (after thermal inflation).
        cost_nanos: u128,
    },
    /// Writeback commands were submitted to the flash device.
    WritebackSubmit {
        /// Commands queued by this submission.
        commands: usize,
        /// Pages covered by the submission.
        pages: usize,
        /// Bytes shipped to flash.
        bytes: usize,
        /// Simulated completion time of the last command.
        completes_at_nanos: u128,
    },
    /// A queued flash command retired.
    WritebackComplete {
        /// Pages the retired command covered.
        pages: usize,
        /// Bytes the retired command wrote.
        bytes: usize,
    },
    /// lmkd killed a background application.
    Kill {
        /// Application label.
        app: String,
        /// Numeric application id (becomes the Chrome-trace `tid`).
        app_uid: u32,
    },
    /// kswapd woke to reclaim pages.
    PressureWake {
        /// Pressure level (`"Low"`, `"Medium"`, `"Critical"`).
        level: &'static str,
        /// Reclaim target handed to the scheme.
        target_pages: usize,
    },
    /// lmkd woke and sampled PSI.
    LmkdWake {
        /// PSI some-avg in parts-per-million at the wake.
        psi_ppm: u64,
        /// Whether this wake killed an application.
        killed: bool,
    },
    /// The thermal model inflated a codec cost.
    ThermalInflation {
        /// Cost before inflation.
        base_nanos: u128,
        /// Cost actually charged.
        inflated_nanos: u128,
    },
}

impl TraceEventKind {
    /// Short event name (the Chrome-trace `name` field).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Fault { .. } => "fault",
            TraceEventKind::Relaunch { .. } => "relaunch",
            TraceEventKind::Compress { .. } => "compress",
            TraceEventKind::Decompress { .. } => "decompress",
            TraceEventKind::WritebackSubmit { .. } => "writeback_submit",
            TraceEventKind::WritebackComplete { .. } => "writeback_complete",
            TraceEventKind::Kill { .. } => "kill",
            TraceEventKind::PressureWake { .. } => "pressure_wake",
            TraceEventKind::LmkdWake { .. } => "lmkd_wake",
            TraceEventKind::ThermalInflation { .. } => "thermal_inflation",
        }
    }

    /// Event category (the Chrome-trace `cat` field).
    #[must_use]
    pub fn category(&self) -> &'static str {
        match self {
            TraceEventKind::Fault { .. } | TraceEventKind::Relaunch { .. } => "app",
            TraceEventKind::Compress { .. }
            | TraceEventKind::Decompress { .. }
            | TraceEventKind::ThermalInflation { .. } => "codec",
            TraceEventKind::WritebackSubmit { .. } | TraceEventKind::WritebackComplete { .. } => {
                "writeback"
            }
            TraceEventKind::Kill { .. }
            | TraceEventKind::PressureWake { .. }
            | TraceEventKind::LmkdWake { .. } => "pressure",
        }
    }

    /// Simulated duration for events that span time (rendered as Chrome
    /// `ph:"X"` complete events); `None` renders as an instant (`ph:"i"`).
    #[must_use]
    pub fn duration_nanos(&self) -> Option<u128> {
        match self {
            TraceEventKind::Fault { latency_nanos, .. }
            | TraceEventKind::Relaunch { latency_nanos, .. } => Some(*latency_nanos),
            TraceEventKind::Compress { cost_nanos, .. }
            | TraceEventKind::Decompress { cost_nanos, .. } => Some(*cost_nanos),
            _ => None,
        }
    }

    /// Numeric application id for app-scoped events (the Chrome `tid`).
    #[must_use]
    pub fn thread_id(&self) -> u32 {
        match self {
            TraceEventKind::Fault { app_uid, .. }
            | TraceEventKind::Relaunch { app_uid, .. }
            | TraceEventKind::Kill { app_uid, .. } => *app_uid,
            _ => 0,
        }
    }

    /// The event payload as a JSON object (the Chrome `args` field).
    #[must_use]
    pub fn args_json(&self) -> String {
        match self {
            TraceEventKind::Fault {
                app,
                app_uid: _,
                location,
                latency_nanos,
            } => format!(
                "{{\"app\":{},\"location\":{},\"latency_nanos\":{latency_nanos}}}",
                json_escape(app),
                json_escape(location)
            ),
            TraceEventKind::Relaunch {
                app,
                app_uid: _,
                kind,
                latency_nanos,
            } => format!(
                "{{\"app\":{},\"kind\":{},\"latency_nanos\":{latency_nanos}}}",
                json_escape(app),
                json_escape(kind)
            ),
            TraceEventKind::Compress { bytes, cost_nanos } => {
                format!("{{\"bytes\":{bytes},\"cost_nanos\":{cost_nanos}}}")
            }
            TraceEventKind::Decompress { bytes, cost_nanos } => {
                format!("{{\"bytes\":{bytes},\"cost_nanos\":{cost_nanos}}}")
            }
            TraceEventKind::WritebackSubmit {
                commands,
                pages,
                bytes,
                completes_at_nanos,
            } => format!(
                "{{\"commands\":{commands},\"pages\":{pages},\"bytes\":{bytes},\
                 \"completes_at_nanos\":{completes_at_nanos}}}"
            ),
            TraceEventKind::WritebackComplete { pages, bytes } => {
                format!("{{\"pages\":{pages},\"bytes\":{bytes}}}")
            }
            TraceEventKind::Kill { app, app_uid: _ } => {
                format!("{{\"app\":{}}}", json_escape(app))
            }
            TraceEventKind::PressureWake {
                level,
                target_pages,
            } => format!(
                "{{\"level\":{},\"target_pages\":{target_pages}}}",
                json_escape(level)
            ),
            TraceEventKind::LmkdWake { psi_ppm, killed } => {
                format!("{{\"psi_ppm\":{psi_ppm},\"killed\":{killed}}}")
            }
            TraceEventKind::ThermalInflation {
                base_nanos,
                inflated_nanos,
            } => format!("{{\"base_nanos\":{base_nanos},\"inflated_nanos\":{inflated_nanos}}}"),
        }
    }
}

/// One recorded event: a simulated timestamp, the system that emitted it
/// (the Chrome `pid`), and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time the event happened, in nanoseconds.
    pub at_nanos: u128,
    /// Id of the emitting system (each attached system gets its own).
    pub pid: u32,
    /// The event payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Renders the event as one Chrome `trace_event` JSON object
    /// (timestamps in microseconds, as the format requires).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let ts = self.at_nanos as f64 / 1_000.0;
        let kind = &self.kind;
        let common = format!(
            "\"name\":{},\"cat\":{},\"ts\":{ts:.3},\"pid\":{},\"tid\":{},\"args\":{}",
            json_escape(kind.name()),
            json_escape(kind.category()),
            self.pid,
            kind.thread_id(),
            kind.args_json()
        );
        match kind.duration_nanos() {
            Some(dur) => format!(
                "{{{common},\"ph\":\"X\",\"dur\":{:.3}}}",
                dur as f64 / 1_000.0
            ),
            None => format!("{{{common},\"ph\":\"i\",\"s\":\"g\"}}"),
        }
    }

    /// Renders the event as one JSONL line (nanosecond timestamps, full
    /// payload — the lossless export).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"at_nanos\":{},\"pid\":{},\"name\":{},\"cat\":{},\"args\":{}}}",
            self.at_nanos,
            self.pid,
            json_escape(self.kind.name()),
            json_escape(self.kind.category()),
            self.kind.args_json()
        )
    }
}

/// Receiver of trace events. Implementations must not feed anything back
/// into the simulation — sinks observe, never perturb.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// The stock sink: a bounded ring buffer. Once `capacity` events are held,
/// recording a new event drops the oldest (and counts the drop), so memory
/// stays bounded no matter how long the simulation runs.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events currently held (oldest first).
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the ring as a Chrome `trace_event` JSON document
    /// (`{"traceEvents":[...]}`), loadable in Perfetto and
    /// `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_trace_json(&self) -> String {
        let events: Vec<String> = self.events.iter().map(TraceEvent::to_chrome_json).collect();
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\
             \"otherData\":{{\"dropped_events\":\"{}\"}}}}",
            events.join(","),
            self.dropped
        )
    }

    /// Exports the ring as JSONL, one event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[derive(Clone)]
enum Sink {
    Ring(Arc<Mutex<TraceBuffer>>),
    Custom(Arc<Mutex<Box<dyn TraceSink + Send>>>),
}

/// A cheap, cloneable reference to a trace sink, or — the default — a
/// disabled handle whose [`emit`](TraceHandle::emit) is a single branch.
///
/// Every system attached to the same handle family gets a distinct `pid`
/// (allocated from a shared counter by
/// [`for_next_system`](TraceHandle::for_next_system)), so events from
/// different grid cells stay distinguishable in one exported trace.
#[derive(Clone)]
pub struct TraceHandle {
    sink: Option<Sink>,
    next_pid: Arc<AtomicU32>,
    pid: u32,
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::disabled()
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.sink.is_some())
            .field("pid", &self.pid)
            .finish()
    }
}

impl TraceHandle {
    /// A handle with no sink: emitting through it is one branch.
    #[must_use]
    pub fn disabled() -> Self {
        TraceHandle {
            sink: None,
            next_pid: Arc::new(AtomicU32::new(1)),
            pid: 0,
        }
    }

    /// Creates a ring-buffer sink and a handle feeding it. The returned
    /// buffer reference is what the caller later exports from.
    #[must_use]
    pub fn ring(capacity: usize) -> (Self, Arc<Mutex<TraceBuffer>>) {
        let buffer = Arc::new(Mutex::new(TraceBuffer::new(capacity)));
        let handle = TraceHandle {
            sink: Some(Sink::Ring(Arc::clone(&buffer))),
            next_pid: Arc::new(AtomicU32::new(1)),
            pid: 0,
        };
        (handle, buffer)
    }

    /// Wraps a custom sink implementation.
    #[must_use]
    pub fn custom(sink: Box<dyn TraceSink + Send>) -> Self {
        TraceHandle {
            sink: Some(Sink::Custom(Arc::new(Mutex::new(sink)))),
            next_pid: Arc::new(AtomicU32::new(1)),
            pid: 0,
        }
    }

    /// Whether a sink is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The `pid` this handle stamps on emitted events.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// A clone of this handle with a fresh `pid` from the shared counter —
    /// called once per attached system so concurrent systems sharing one
    /// sink stay distinguishable.
    #[must_use]
    pub fn for_next_system(&self) -> Self {
        let mut handle = self.clone();
        handle.pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Emits one event at simulated time `at_nanos`. Disabled handles
    /// return immediately without running `kind`.
    pub fn emit(&self, at_nanos: u128, kind: impl FnOnce() -> TraceEventKind) {
        let Some(sink) = &self.sink else { return };
        let event = TraceEvent {
            at_nanos,
            pid: self.pid,
            kind: kind(),
        };
        match sink {
            Sink::Ring(buffer) => {
                if let Ok(mut buffer) = buffer.lock() {
                    buffer.record(event);
                }
            }
            Sink::Custom(custom) => {
                if let Ok(mut custom) = custom.lock() {
                    custom.record(event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(app: &str) -> TraceEventKind {
        TraceEventKind::Kill {
            app: app.to_string(),
            app_uid: 7,
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_closure() {
        let handle = TraceHandle::disabled();
        handle.emit(5, || panic!("closure must not run on the off-path"));
        assert!(!handle.is_enabled());
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let (handle, buffer) = TraceHandle::ring(2);
        for at in 0..5u128 {
            handle.emit(at, || kill("A"));
        }
        let buffer = buffer.lock().unwrap();
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.dropped(), 3);
        assert_eq!(buffer.events()[0].at_nanos, 3);
        assert_eq!(buffer.events()[1].at_nanos, 4);
    }

    #[test]
    fn chrome_export_has_trace_events_array_and_phases() {
        let (handle, buffer) = TraceHandle::ring(16);
        let handle = handle.for_next_system();
        handle.emit(1_500, || kill("A"));
        handle.emit(2_000, || TraceEventKind::Fault {
            app: "B".into(),
            app_uid: 3,
            location: "Zpool",
            latency_nanos: 4_000,
        });
        let json = buffer.lock().unwrap().to_chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"i\""), "kill is an instant: {json}");
        assert!(json.contains("\"ph\":\"X\""), "fault has duration: {json}");
        assert!(json.contains("\"dur\":4.000"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn jsonl_export_is_one_line_per_event() {
        let (handle, buffer) = TraceHandle::ring(16);
        handle.emit(1, || kill("A"));
        handle.emit(2, || kill("B"));
        let jsonl = buffer.lock().unwrap().to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().all(|line| line.starts_with("{\"at_nanos\":")));
    }

    #[test]
    fn pids_are_distinct_per_system() {
        let (handle, _buffer) = TraceHandle::ring(4);
        let a = handle.for_next_system();
        let b = handle.for_next_system();
        assert_ne!(a.pid(), b.pid());
    }
}
