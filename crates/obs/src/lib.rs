//! Observability layer for the Ariadne reproduction.
//!
//! Three independent facilities, all built around the same contract —
//! **observation never perturbs simulation**:
//!
//! * [`trace`] — a structured event stream (faults, compress/decompress,
//!   writeback submit/complete, kills, pressure wakes, thermal inflation)
//!   recorded through a [`TraceHandle`] into a bounded ring buffer (or any
//!   custom [`TraceSink`]), exportable as Chrome `trace_event` JSON (loadable
//!   in Perfetto / `chrome://tracing`) and as JSONL.
//! * [`metrics`] — a registry of saturating counters and log-bucketed
//!   [`Histogram`]s. Histograms are *mergeable* ([`Histogram::merge`]):
//!   merging two histograms is exactly bucket-wise addition, so per-cell
//!   registries can be combined into fleet-level aggregates without losing
//!   quantile fidelity beyond the bucket resolution (±25 %).
//! * [`profile`] — a process-global self-profiler attributing the runner's
//!   host wall-clock to simulator phases (codec vs zpool/LRU bookkeeping vs
//!   event queue vs flash I/O model). It measures *host* time and is never
//!   consulted by the simulation, so it cannot affect simulated time.
//!
//! The determinism rules every hook site obeys:
//!
//! 1. A disabled handle is a `None` — the entire off-path is one branch and
//!    the event-construction closure is never run.
//! 2. Sinks receive copies of simulation state; nothing flows back.
//! 3. No host-clock reads on the simulated path: trace events are stamped
//!    with *simulated* nanoseconds supplied by the caller, and profiler
//!    spans read `Instant` only for host-side attribution.
//!
//! With that contract, simulation output is byte-identical with
//! observability off and on — pinned by `crates/sim/tests/obs_identity.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{Histogram, MetricsHandle, MetricsRegistry};
pub use profile::{Phase, PhaseBreakdown, PhaseSpan};
pub use trace::{TraceBuffer, TraceEvent, TraceEventKind, TraceHandle, TraceSink};

use std::sync::OnceLock;

static AMBIENT: OnceLock<(TraceHandle, MetricsHandle)> = OnceLock::new();

/// Installs process-wide ambient handles that newly constructed systems pick
/// up (the `experiments` binary calls this once before running; libraries and
/// tests attach handles explicitly instead). Returns `false` if ambient
/// handles were already installed — the first installation wins.
pub fn install_ambient(trace: TraceHandle, metrics: MetricsHandle) -> bool {
    AMBIENT.set((trace, metrics)).is_ok()
}

/// The ambient [`TraceHandle`], or a disabled handle if none was installed.
#[must_use]
pub fn ambient_trace() -> TraceHandle {
    AMBIENT
        .get()
        .map(|(trace, _)| trace.clone())
        .unwrap_or_default()
}

/// The ambient [`MetricsHandle`], or a disabled handle if none was installed.
#[must_use]
pub fn ambient_metrics() -> MetricsHandle {
    AMBIENT
        .get()
        .map(|(_, metrics)| metrics.clone())
        .unwrap_or_default()
}

/// Escapes a string for inclusion in JSON output (shared by the trace and
/// metrics exporters; the workspace deliberately carries no JSON dependency).
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_defaults_are_disabled() {
        // Nothing installs ambient handles under `cargo test`, so fresh
        // lookups must come back disabled (the off-path contract).
        assert!(!ambient_trace().is_enabled());
        assert!(!ambient_metrics().is_enabled());
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
