//! Self-profiler: host wall-clock attribution by simulator phase.
//!
//! The `--bench-json` harness wants to know *where* a cell's wall-clock
//! goes — codec work, zpool/LRU bookkeeping, the event queue, or the flash
//! I/O model — without perturbing the simulation. The profiler is therefore:
//!
//! * **process-global atomics**, not thread-locals: `run_grid` fans cells
//!   out over scoped worker threads, and all of them must land in the same
//!   accumulators;
//! * **host-time only**: spans read `Instant`, never the simulated clock,
//!   and nothing in the simulation ever reads the profiler back;
//! * **outermost-wins**: a span opened inside another span is a no-op (a
//!   per-thread depth counter guards re-entry), so nested hook sites —
//!   e.g. flash retirement inside a flash submit — are not double-counted;
//! * **disabled by default**: `span()` is one relaxed atomic load until the
//!   bench harness calls [`enable`]`(true)`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Simulator phases the profiler attributes host time to. Everything not
/// covered by a span is the cell's residual ("other": per-page simulation
/// bookkeeping, scheme logic, table formatting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Compression / decompression kernel work (including oracle misses).
    Codec,
    /// Zpool store/fault/release and LRU bookkeeping.
    Zpool,
    /// The flash I/O model (submit, fault-in, retirement, release sweeps).
    Io,
    /// Event-queue push/pop.
    Queue,
}

/// All attributable phases, in display order.
pub const PHASES: [Phase; 4] = [Phase::Codec, Phase::Zpool, Phase::Io, Phase::Queue];

impl Phase {
    /// Stable lower-case label (used as the JSON key in bench reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Codec => "codec",
            Phase::Zpool => "zpool",
            Phase::Io => "io",
            Phase::Queue => "queue",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Codec => 0,
            Phase::Zpool => 1,
            Phase::Io => 2,
            Phase::Queue => 3,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASE_NANOS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Turns the profiler on or off process-wide. The bench harness enables it
/// once; everything else leaves it off so `span()` stays a single load.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the profiler is currently accumulating.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every phase accumulator (called between bench cells).
pub fn reset() {
    for nanos in &PHASE_NANOS {
        nanos.store(0, Ordering::Relaxed);
    }
}

/// Opens a span attributing host time to `phase` until the guard drops.
/// Disabled profiler or a span already open on this thread → no-op guard.
#[must_use]
pub fn span(phase: Phase) -> PhaseSpan {
    if !ENABLED.load(Ordering::Relaxed) {
        return PhaseSpan { inner: None };
    }
    let outermost = SPAN_DEPTH.with(|depth| {
        let current = depth.get();
        depth.set(current + 1);
        current == 0
    });
    PhaseSpan {
        inner: Some(SpanInner {
            phase,
            start: outermost.then(Instant::now),
        }),
    }
}

struct SpanInner {
    phase: Phase,
    start: Option<Instant>,
}

/// Guard returned by [`span`]; accumulates elapsed host time on drop.
pub struct PhaseSpan {
    inner: Option<SpanInner>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            SPAN_DEPTH.with(|depth| depth.set(depth.get().saturating_sub(1)));
            if let Some(start) = inner.start {
                let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                PHASE_NANOS[inner.phase.index()].fetch_add(elapsed, Ordering::Relaxed);
            }
        }
    }
}

/// A snapshot of accumulated per-phase host time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    nanos: [u64; 4],
}

impl PhaseBreakdown {
    /// Accumulated host nanoseconds for `phase`.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Accumulated host milliseconds for `phase`.
    #[must_use]
    pub fn millis(&self, phase: Phase) -> f64 {
        self.nanos[phase.index()] as f64 / 1e6
    }

    /// Sum over all phases, milliseconds.
    #[must_use]
    pub fn total_millis(&self) -> f64 {
        self.nanos.iter().map(|&n| n as f64 / 1e6).sum()
    }
}

/// Reads the current accumulators (does not reset them).
#[must_use]
pub fn snapshot() -> PhaseBreakdown {
    let mut nanos = [0u64; 4];
    for phase in PHASES {
        nanos[phase.index()] = PHASE_NANOS[phase.index()].load(Ordering::Relaxed);
    }
    PhaseBreakdown { nanos }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global state, so every assertion about it
    // lives in this one test (cargo runs tests in one process, threaded).
    #[test]
    fn spans_accumulate_only_when_enabled_and_outermost() {
        reset();
        {
            let _off = span(Phase::Codec);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(snapshot().nanos(Phase::Codec), 0, "disabled profiler");

        enable(true);
        {
            let _outer = span(Phase::Zpool);
            {
                // Nested span: must not double-count (outermost wins).
                let _inner = span(Phase::Io);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        {
            let _queue = span(Phase::Queue);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        enable(false);

        let breakdown = snapshot();
        assert_eq!(breakdown.nanos(Phase::Io), 0, "nested span not counted");
        assert!(breakdown.nanos(Phase::Zpool) > 0, "outer span counted");
        assert!(breakdown.nanos(Phase::Queue) > 0);
        assert!(breakdown.total_millis() >= breakdown.millis(Phase::Zpool));

        reset();
        assert_eq!(snapshot(), PhaseBreakdown::default());
    }
}
