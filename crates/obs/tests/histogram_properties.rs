//! Property tests for the mergeable histogram and saturating counters —
//! the contract the ROADMAP's fleet-scale percentile sketches build on.
//!
//! * `merge(a, b)` is indistinguishable from recording the concatenated
//!   sample stream into one histogram (so quantiles agree exactly);
//! * merge is commutative and associative;
//! * quantile estimates stay within the documented 25 % bucket resolution
//!   of the exact order statistic;
//! * counters saturate at `u64::MAX` instead of wrapping.

use ariadne_obs::metrics::names;
use ariadne_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

fn histogram_of(samples: &[u64]) -> Histogram {
    let mut histogram = Histogram::new();
    for &sample in samples {
        histogram.record(sample);
    }
    histogram
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Merging two histograms must be exactly equivalent to one histogram of
    // the concatenated samples — same buckets, count, sum, extrema, and
    // therefore identical quantiles at every probe point.
    #[test]
    fn merge_equals_concatenated_samples(
        xs in proptest::collection::vec(0u64..1 << 40, 0..80),
        ys in proptest::collection::vec(0u64..1 << 40, 0..80),
    ) {
        let mut merged = histogram_of(&xs);
        merged.merge(&histogram_of(&ys));

        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let combined = histogram_of(&all);

        assert_eq!(merged, combined);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(
        xs in proptest::collection::vec(0u64..1 << 32, 0..60),
        ys in proptest::collection::vec(0u64..1 << 32, 0..60),
        zs in proptest::collection::vec(0u64..1 << 32, 0..60),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
    }

    // The estimate is the upper bound of the bucket holding the rank, and
    // buckets are at most 25% wide: exact ≤ estimate ≤ exact * 1.25 + 1.
    #[test]
    fn quantiles_stay_within_bucket_resolution(
        mut samples in proptest::collection::vec(0u64..1 << 40, 1..120),
        q in 0.0f64..1.0,
    ) {
        let histogram = histogram_of(&samples);
        samples.sort_unstable();
        let exact = exact_quantile(&samples, q);
        let estimate = histogram.quantile(q).expect("non-empty");
        assert!(estimate >= exact, "estimate {estimate} below exact {exact}");
        assert!(
            estimate <= exact + exact / 4 + 1,
            "estimate {estimate} beyond 25% of exact {exact}"
        );
    }

    #[test]
    fn counters_saturate_instead_of_wrapping(
        start in proptest::collection::vec(1u64..1 << 50, 1..8),
        delta in 1u64..1 << 50,
    ) {
        let mut registry = MetricsRegistry::new();
        for value in &start {
            registry.count(names::KILLS, *value);
        }
        registry.count(names::KILLS, u64::MAX);
        let saturated = registry.counter(names::KILLS);
        assert_eq!(saturated, u64::MAX, "push past the top must clamp");
        registry.count(names::KILLS, delta);
        assert_eq!(registry.counter(names::KILLS), u64::MAX, "stays clamped");

        // Merging two saturated registries must also clamp, not wrap.
        let mut other = MetricsRegistry::new();
        other.count(names::KILLS, u64::MAX);
        registry.merge(&other);
        assert_eq!(registry.counter(names::KILLS), u64::MAX);
    }
}
