//! Figure 10 companion bench: end-to-end simulation cost of the relaunch
//! study under ZRAM and the Ariadne configurations, plus a pre-decompression
//! ablation.

use ariadne_core::SizeConfig;
use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::{AppName, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ariadne_benchmarks(c: &mut Criterion) {
    let config = SimulationConfig::new(42).with_scale(512);
    let scenario = Scenario::relaunch_study(AppName::Youtube);
    let mut group = c.benchmark_group("ariadne_relaunch");
    let specs = [
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        SchemeSpec::ariadne_al(SizeConfig::k1_k2_k16()),
        SchemeSpec::Ariadne {
            sizes: SizeConfig::k1_k2_k16(),
            mode: ariadne_core::HotListMode::ExcludeHotList,
            predecomp: false,
        },
    ];
    for spec in specs {
        let label = if matches!(
            spec,
            SchemeSpec::Ariadne {
                predecomp: false,
                ..
            }
        ) {
            format!("{}-no-predecomp", spec.label())
        } else {
            spec.label()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| {
                let mut system = MobileSystem::new(*spec, config);
                system.run_scenario(&scenario);
                system.average_relaunch_millis()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ariadne_benchmarks
}
criterion_main!(benches);
