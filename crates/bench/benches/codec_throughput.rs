//! Real wall-clock throughput of the from-scratch codecs (LZ4-style,
//! LZO-style, BDI) on synthetic anonymous-page data.
//!
//! These numbers are auxiliary to the paper reproduction: simulated latencies
//! come from the calibrated cost model, while this bench documents how fast
//! the actual Rust implementations run on the host.

use ariadne_bench::anonymous_corpus;
use ariadne_compress::Algorithm;
use ariadne_trace::AppName;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn codec_benchmarks(c: &mut Criterion) {
    let corpus = anonymous_corpus(AppName::Twitter, 64, 42); // 256 KiB
    let mut group = c.benchmark_group("codec_throughput");
    group.throughput(Throughput::Bytes(corpus.len() as u64));
    for algorithm in Algorithm::ALL {
        let codec = algorithm.codec();
        group.bench_with_input(
            BenchmarkId::new("compress", algorithm.name()),
            &corpus,
            |b, data| b.iter(|| codec.compress(data).unwrap()),
        );
        let compressed = codec.compress(&corpus).unwrap();
        group.bench_with_input(
            BenchmarkId::new("decompress", algorithm.name()),
            &compressed,
            |b, data| b.iter(|| codec.decompress(data, corpus.len()).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = codec_benchmarks
}
criterion_main!(benches);
