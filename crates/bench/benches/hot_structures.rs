//! Micro-benchmarks for the slab-indexed hot paths and the sharded oracle.
//!
//! The experiment-level bench harness (`experiments --bench-json`) measures
//! whole cells; this bench isolates the data structures those cells hammer —
//! zpool store/fault/release, flash store/fault/release, oracle
//! lookup/admit, and the word-wide compression kernels (timed against the
//! retired scalar loops they replaced) — so a regression in one of them is
//! attributable directly instead of showing up as a diffuse slowdown across
//! every cell. CI runs it as a smoke step and uploads the output as an
//! artifact.

use ariadne_compress::reference::scalar_codec;
use ariadne_compress::{Algorithm, ChunkSize};
use ariadne_mem::{AppId, FlashDevice, Hotness, PageId, Pfn, WriteRequest, Zpool, PAGE_SIZE};
use ariadne_zram::CompressionOracle;
use criterion::{criterion_group, criterion_main, Criterion};

const APPS: u32 = 8;
const PAGES_PER_APP: u64 = 512;

fn page(app: u32, pfn: u64) -> PageId {
    PageId::new(AppId::new(app), Pfn::new(pfn))
}

/// Store one single-page entry per (app, pfn) pair, fault half of them back
/// out by handle, then kill every app — the exact op mix a relaunch storm
/// plus an lmkd sweep drives through the pool.
fn zpool_store_fault_release(c: &mut Criterion) {
    c.bench_function("zpool_store_fault_release", |b| {
        b.iter(|| {
            let mut zpool = Zpool::new(64 << 20);
            for app in 1..=APPS {
                for pfn in 0..PAGES_PER_APP {
                    zpool
                        .store(
                            vec![page(app, pfn)],
                            PAGE_SIZE,
                            PAGE_SIZE / 2,
                            ChunkSize::k4(),
                            if pfn % 3 == 0 {
                                Hotness::Hot
                            } else {
                                Hotness::Cold
                            },
                        )
                        .expect("store fits");
                }
            }
            for app in 1..=APPS {
                for pfn in (0..PAGES_PER_APP).step_by(2) {
                    let handle = zpool.handle_for(page(app, pfn)).expect("stored");
                    zpool.remove(handle).expect("live handle");
                }
            }
            for app in 1..=APPS {
                zpool.release_app(AppId::new(app));
            }
            zpool.stats().entries
        })
    });
}

/// Write one compressed page per (app, pfn) pair to flash, fault half back
/// in, then kill every app.
fn flash_store_fault_release(c: &mut Criterion) {
    c.bench_function("flash_store_fault_release", |b| {
        b.iter(|| {
            let mut flash = FlashDevice::new(256 << 20);
            let mut now = 0u128;
            for app in 1..=APPS {
                let requests: Vec<WriteRequest> = (0..PAGES_PER_APP)
                    .map(|pfn| WriteRequest {
                        pages: vec![page(app, pfn)],
                        original_bytes: PAGE_SIZE,
                        stored_bytes: PAGE_SIZE / 2,
                        compressed: true,
                    })
                    .collect();
                let result = flash.submit_writes(requests, now);
                assert!(result.dropped.is_empty(), "capacity holds the workload");
                now += 1_000_000;
            }
            now += 1_000_000_000;
            for app in 1..=APPS {
                for pfn in (0..PAGES_PER_APP).step_by(2) {
                    let slot = flash.slot_for(page(app, pfn)).expect("written");
                    flash.fault_in(slot, now).expect("live slot");
                }
            }
            for app in 1..=APPS {
                flash.release_app(AppId::new(app), now);
            }
            flash.len()
        })
    });
}

/// Admit a working set of cold results once, then hammer lookups (the
/// steady-state mix the memoized oracle serves during a relaunch storm).
fn oracle_lookup_admit(c: &mut Criterion) {
    let lens = ariadne_compress::CompressedLen {
        original_len: PAGE_SIZE,
        compressed_len: PAGE_SIZE / 2,
        chunk_count: 1,
    };
    c.bench_function("oracle_lookup_admit", |b| {
        b.iter(|| {
            let mut oracle = CompressionOracle::new();
            let algorithm = ariadne_compress::Algorithm::Lzo;
            for pfn in 0..1024u64 {
                let pages = [page(1, pfn)];
                assert!(oracle
                    .lookup(&pages, algorithm, ChunkSize::k4(), 0)
                    .is_none());
                oracle.admit(&pages, algorithm, ChunkSize::k4(), 0, lens, None);
            }
            let mut hits = 0usize;
            for round in 0..4 {
                for pfn in 0..1024u64 {
                    let pages = [page(1, (pfn * 7 + round) % 1024)];
                    if oracle
                        .lookup(&pages, algorithm, ChunkSize::k4(), 0)
                        .is_some()
                    {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
}

/// A 16-page corpus mixing what mobile anonymous memory looks like: mostly
/// repetitive pages with scattered single-byte perturbations, a couple of
/// incompressible (noise) pages and one all-zero page.
fn kernel_corpus() -> Vec<u8> {
    let pages = 16usize;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rand = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut corpus = Vec::with_capacity(pages * PAGE_SIZE);
    for p in 0..pages {
        match p % 8 {
            7 => corpus.extend(std::iter::repeat(0u8).take(PAGE_SIZE)),
            3 | 5 => corpus.extend((0..PAGE_SIZE / 8).flat_map(|_| rand().to_le_bytes())),
            _ => {
                let base: Vec<u8> = (0..PAGE_SIZE).map(|i| ((i / 32) % 251) as u8).collect();
                let mut page = base;
                for _ in 0..64 {
                    let at = (rand() as usize) % PAGE_SIZE;
                    page[at] ^= 0xFF;
                }
                corpus.extend(page);
            }
        }
    }
    corpus
}

/// Compress the corpus page by page with every algorithm, once with the
/// production word-wide kernel and once with the scalar reference loop the
/// kernel replaced. The pair of numbers makes the SWAR speedup (or a
/// regression) directly visible per algorithm.
fn compression_kernels(c: &mut Criterion) {
    let corpus = kernel_corpus();
    for algorithm in Algorithm::ALL {
        let variants: [(&str, Box<dyn ariadne_compress::Codec>); 2] = [
            ("swar", algorithm.codec()),
            ("scalar", scalar_codec(algorithm)),
        ];
        for (label, codec) in variants {
            let mut out = Vec::with_capacity(2 * PAGE_SIZE);
            c.bench_function(format!("kernel_{algorithm}_{label}"), |b| {
                b.iter(|| {
                    let mut total = 0usize;
                    for page in corpus.chunks(PAGE_SIZE) {
                        out.clear();
                        codec.compress_into(page, &mut out).expect("compress");
                        total += out.len();
                    }
                    total
                })
            });
        }
    }
}

/// The observability primitives that sit on simulation hot paths: a counter
/// increment and a histogram record through an enabled registry handle, and
/// — most importantly — the disabled-sink dispatch, which is the price every
/// *uninstrumented* run pays at each emission site. The disabled costs must
/// stay at a branch-on-none, or observability would tax the default runs it
/// promises not to perturb.
fn obs_primitives(c: &mut Criterion) {
    use ariadne_obs::{metrics::names, MetricsHandle, TraceEventKind, TraceHandle};

    let enabled = MetricsHandle::new_registry();
    c.bench_function("obs_counter_increment", |b| {
        b.iter(|| enabled.count(names::FAULTS, 1))
    });
    let mut value = 0u64;
    c.bench_function("obs_histogram_record", |b| {
        b.iter(|| {
            value = value
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            enabled.record(names::RELAUNCH_WARM_MICROS, value >> 32);
        })
    });

    let disabled_metrics = MetricsHandle::disabled();
    c.bench_function("obs_disabled_counter_dispatch", |b| {
        b.iter(|| disabled_metrics.count(names::FAULTS, 1))
    });
    let disabled_trace = TraceHandle::disabled();
    c.bench_function("obs_disabled_trace_dispatch", |b| {
        b.iter(|| {
            // The closure must never run on a disabled handle; Criterion
            // times the bare branch.
            disabled_trace.emit(0, || TraceEventKind::Kill {
                app: "youtube".to_string(),
                app_uid: 1,
            });
        })
    });
    let (tracing, _buffer) = TraceHandle::ring(1 << 12);
    c.bench_function("obs_ring_trace_emit", |b| {
        b.iter(|| {
            tracing.emit(0, || TraceEventKind::Compress {
                bytes: 4096,
                cost_nanos: 1_000,
            });
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = zpool_store_fault_release, flash_store_fault_release, oracle_lookup_admit,
        compression_kernels, obs_primitives
}
criterion_main!(benches);
