//! Figure 6 companion bench: compression wall time and achieved ratio as the
//! chunk size sweeps from 128 B to 128 KiB (real codec executions on the
//! host; the figure itself is produced by `experiments -- fig6` using the
//! Pixel-7-calibrated cost model).

use ariadne_bench::anonymous_corpus;
use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec};
use ariadne_trace::AppName;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn chunk_size_benchmarks(c: &mut Criterion) {
    let corpus = anonymous_corpus(AppName::Youtube, 128, 7); // 512 KiB
    let mut group = c.benchmark_group("chunk_size_sweep");
    group.throughput(Throughput::Bytes(corpus.len() as u64));
    for algorithm in [Algorithm::Lz4, Algorithm::Lzo] {
        for chunk_bytes in [128usize, 1024, 4096, 32 * 1024, 128 * 1024] {
            let chunk = ChunkSize::new(chunk_bytes).unwrap();
            let codec = ChunkedCodec::new(algorithm, chunk);
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), chunk.to_string()),
                &corpus,
                |b, data| b.iter(|| codec.compress(data).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = chunk_size_benchmarks
}
criterion_main!(benches);
