//! Figure 2 companion bench: end-to-end simulation cost of the relaunch
//! study under the three baseline schemes (DRAM, ZRAM, SWAP).
//!
//! The reported relaunch latencies come from `experiments -- fig2`; this
//! bench tracks how expensive the simulation itself is, which is what limits
//! how large a scale factor the harness can afford.

use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::{AppName, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn relaunch_study_benchmarks(c: &mut Criterion) {
    let config = SimulationConfig::new(42).with_scale(512);
    let scenario = Scenario::relaunch_study(AppName::Twitter);
    let mut group = c.benchmark_group("scheme_relaunch");
    for spec in [SchemeSpec::Dram, SchemeSpec::Zram, SchemeSpec::Swap] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.label()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut system = MobileSystem::new(*spec, config);
                    system.run_scenario(&scenario);
                    system.average_relaunch_millis()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = relaunch_study_benchmarks
}
criterion_main!(benches);
