//! Regenerates every table and figure of the Ariadne paper's evaluation.
//!
//! ```text
//! experiments [--quick] [--scale N] [--seed N] [--json] [--serial] [--list]
//!             [--no-oracle] [--thermal-off] [--bench-json PATH]
//!             [--bench-compare BASELINE] [--trace-out PATH]
//!             [--metrics-json PATH] [EXPERIMENT ... | status]
//! ```
//!
//! With no experiment names, all experiments run in paper order.
//! Independent experiments run in parallel (capped at the host's available
//! parallelism, merged in a fixed order, so output is byte-identical to
//! `--serial`). `--quick` uses fewer applications and a larger scale factor
//! (useful for a fast smoke run); `--scale` overrides the workload/memory
//! scale denominator (64 is the default and what `EXPERIMENTS.md` records);
//! `--json` emits one machine-readable JSON document instead of plain-text
//! tables; `--list` prints the catalog (honouring `--json`).
//!
//! The perf harness: `--bench-json PATH` times every experiment cell (host
//! wall-clock; the run is forced serial so each cell's time is its own) and
//! writes the `BENCH_*.json` trajectory document; `--bench-compare BASELINE`
//! additionally fails the run when any cell regresses more than 2× over the
//! recorded baseline. `--no-oracle` disables the memoized compression
//! oracle — output is byte-identical, only wall-clock changes, which is
//! exactly what the harness measures.
//!
//! `--thermal-off` forces the thermal model off in every experiment. For
//! everything except `lifetime` (whose default is the sustained-load
//! model) output is byte-identical to a default run — CI diffs the two
//! JSON documents to pin that.
//!
//! Observability (see `ariadne-obs`): `--trace-out PATH` attaches a trace
//! ring to every simulated system and writes a Chrome `trace_event`
//! document loadable in Perfetto (`.jsonl` extension switches to
//! line-delimited JSON); `--metrics-json PATH` writes the counter and
//! histogram registry. Both force a serial run so event order is
//! deterministic; experiment output stays byte-identical either way
//! (pinned by the `obs_identity` suite). `experiments status` prints a
//! one-shot device health report instead of running the catalog.

use ariadne_bench::perf::{self, BenchCell, BenchMeta, BenchReport, PhaseMillis};
use ariadne_obs::{profile, MetricsHandle, Phase, TraceHandle};
use ariadne_sim::experiments::{catalog, runner, status, ExperimentOptions};
use ariadne_sim::report::json_string;
use std::process::ExitCode;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OutputOptions {
    json: bool,
    serial: bool,
    list: bool,
    bench_json: Option<String>,
    bench_compare: Option<String>,
    trace_out: Option<String>,
    metrics_json: Option<String>,
}

fn parse_args() -> Result<(ExperimentOptions, OutputOptions, Vec<String>), String> {
    let mut opts = ExperimentOptions::full();
    let mut output = OutputOptions::default();
    let mut names = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let quick = ExperimentOptions::quick();
                opts.quick = true;
                opts.scale = quick.scale;
            }
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                opts.scale = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid scale `{value}`"))?
                    .max(1);
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                opts.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--no-oracle" => opts.oracle = false,
            "--thermal-off" => {
                opts.thermal = Some(ariadne_compress::ThermalConfig::off());
            }
            "--json" => output.json = true,
            "--serial" => output.serial = true,
            "--list" => output.list = true,
            "--bench-json" => {
                output.bench_json = Some(args.next().ok_or("--bench-json needs a path")?);
            }
            "--bench-compare" => {
                output.bench_compare =
                    Some(args.next().ok_or("--bench-compare needs a baseline path")?);
            }
            "--trace-out" => {
                output.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--metrics-json" => {
                output.metrics_json = Some(args.next().ok_or("--metrics-json needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--scale N] [--seed N] [--json] [--serial] \
                     [--list] [--no-oracle] [--thermal-off] [--bench-json PATH] \
                     [--bench-compare BASELINE] [--trace-out PATH] [--metrics-json PATH] \
                     [EXPERIMENT ... | status]"
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            name => names.push(name.to_string()),
        }
    }
    if output.bench_compare.is_some() && output.bench_json.is_none() {
        return Err("--bench-compare requires --bench-json (it compares the timed run)".into());
    }
    Ok((opts, output, names))
}

fn print_list(json: bool) {
    if json {
        let entries: Vec<String> = catalog()
            .iter()
            .map(|(name, title)| {
                format!(
                    "{{\"name\":{},\"title\":{}}}",
                    json_string(name),
                    json_string(title)
                )
            })
            .collect();
        println!("{{\"experiments\":[{}]}}", entries.join(","));
    } else {
        for (name, title) in catalog() {
            println!("{name:8} {title}");
        }
    }
}

fn main() -> ExitCode {
    let (opts, output, names) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if output.list {
        print_list(output.json);
        return ExitCode::SUCCESS;
    }

    if names.first().map(String::as_str) == Some("status") {
        print!("{}", status::status(&opts));
        return ExitCode::SUCCESS;
    }

    let selected: Vec<String> = if names.is_empty() {
        catalog().iter().map(|(n, _)| (*n).to_string()).collect()
    } else {
        names
    };

    // Observability sinks: installed as the process-ambient handles so
    // every `MobileSystem` any experiment builds picks them up.
    let observing = output.trace_out.is_some() || output.metrics_json.is_some();
    let mut trace_buffer = None;
    let metrics_handle = if output.metrics_json.is_some() {
        MetricsHandle::new_registry()
    } else {
        MetricsHandle::disabled()
    };
    if observing {
        let trace_handle = if output.trace_out.is_some() {
            let (handle, buffer) = TraceHandle::ring(ariadne_obs::trace::DEFAULT_RING_CAPACITY);
            trace_buffer = Some(buffer);
            handle
        } else {
            TraceHandle::disabled()
        };
        ariadne_obs::install_ambient(trace_handle, metrics_handle.clone());
    }

    // The perf harness forces a serial run so each cell's wall-clock is its
    // own (parallel neighbours would otherwise share the cores).
    let mut bench_cells: Vec<BenchCell> = Vec::new();
    let results: Vec<(String, Option<ariadne_sim::Table>)> = if output.bench_json.is_some() {
        profile::enable(true);
        selected
            .iter()
            .map(|name| {
                profile::reset();
                let (table, timing) =
                    perf::time_cell_stable(|| ariadne_sim::experiments::run_by_name(name, &opts));
                // The profiler accumulated across every sample iteration;
                // report the per-iteration share next to the mean.
                let breakdown = profile::snapshot();
                let per_iter = f64::from(timing.samples.max(1));
                let codec = breakdown.millis(Phase::Codec) / per_iter;
                let zpool = breakdown.millis(Phase::Zpool) / per_iter;
                let io = breakdown.millis(Phase::Io) / per_iter;
                let queue = breakdown.millis(Phase::Queue) / per_iter;
                if table.is_some() {
                    bench_cells.push(BenchCell {
                        name: name.clone(),
                        millis: timing.mean,
                        min: Some(timing.min),
                        stddev: Some(timing.stddev),
                        phases: Some(PhaseMillis {
                            codec,
                            zpool,
                            io,
                            queue,
                            other: (timing.mean - codec - zpool - io - queue).max(0.0),
                        }),
                    });
                }
                (name.clone(), table)
            })
            .collect()
    } else if output.serial || observing {
        // Observed runs are forced serial too: the trace ring is shared, so
        // parallel cells would interleave events nondeterministically.
        selected
            .iter()
            .map(|name| {
                (
                    name.clone(),
                    ariadne_sim::experiments::run_by_name(name, &opts),
                )
            })
            .collect()
    } else {
        runner::run_named_parallel(&selected, &opts)
    };

    let mut failures = 0usize;
    if output.json {
        let mut tables = Vec::new();
        for (name, table) in &results {
            match table {
                Some(table) => tables.push(format!(
                    "{{\"name\":{},\"table\":{}}}",
                    json_string(name),
                    table.to_json()
                )),
                None => {
                    eprintln!("error: unknown experiment `{name}` (use --list)");
                    failures += 1;
                }
            }
        }
        println!(
            "{{\"seed\":{},\"scale\":{},\"mode\":{},\"experiments\":[{}]}}",
            opts.seed,
            opts.scale,
            json_string(if opts.quick { "quick" } else { "full" }),
            tables.join(",")
        );
    } else {
        // The header must not mention parallel/serial: stdout is documented
        // to be byte-identical between the two modes.
        println!(
            "# Ariadne experiment harness (seed={}, scale=1/{}, mode={})",
            opts.seed,
            opts.scale,
            if opts.quick { "quick" } else { "full" },
        );
        println!();
        for (name, table) in &results {
            match table {
                Some(table) => println!("{table}"),
                None => {
                    eprintln!("error: unknown experiment `{name}` (use --list)");
                    failures += 1;
                }
            }
        }
    }
    if let Some(path) = &output.trace_out {
        let buffer = trace_buffer.expect("--trace-out installed a ring");
        let buffer = buffer.lock().expect("trace ring lock");
        let document = if path.ends_with(".jsonl") {
            buffer.to_jsonl()
        } else {
            buffer.to_chrome_trace_json()
        };
        if let Err(error) = std::fs::write(path, document) {
            eprintln!("error: cannot write {path}: {error}");
            failures += 1;
        } else {
            eprintln!(
                "trace: {} events ({} dropped), written to {path}",
                buffer.len(),
                buffer.dropped()
            );
        }
    }
    if let Some(path) = &output.metrics_json {
        let registry = metrics_handle.snapshot().unwrap_or_default();
        if let Err(error) = std::fs::write(path, registry.to_json()) {
            eprintln!("error: cannot write {path}: {error}");
            failures += 1;
        } else {
            eprintln!("metrics: written to {path}");
        }
    }
    if let Some(path) = &output.bench_json {
        let report = BenchReport {
            seed: opts.seed,
            scale: opts.scale,
            mode: if opts.quick { "quick" } else { "full" }.to_string(),
            oracle: opts.oracle,
            meta: Some(BenchMeta::capture()),
            cells: bench_cells,
        };
        if let Err(error) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {error}");
            failures += 1;
        } else {
            eprintln!(
                "bench: {} cells, {:.0} ms total, written to {path}",
                report.cells.len(),
                report.total_millis()
            );
        }
        if let Some(baseline_path) = &output.bench_compare {
            match std::fs::read_to_string(baseline_path)
                .map_err(|e| e.to_string())
                .and_then(|text| BenchReport::from_json(&text))
            {
                Ok(baseline) => {
                    if let Err(message) = report.comparable_with(&baseline) {
                        eprintln!("error: {message}");
                        failures += 1;
                    } else {
                        let regressions =
                            perf::regressions(&report, &baseline, perf::DEFAULT_REGRESSION_FACTOR);
                        for message in &regressions {
                            eprintln!("bench regression: {message}");
                        }
                        if regressions.is_empty() {
                            eprintln!("bench: no cell regressed over {baseline_path}");
                        }
                        failures += regressions.len();
                    }
                }
                Err(error) => {
                    eprintln!("error: cannot read baseline {baseline_path}: {error}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
