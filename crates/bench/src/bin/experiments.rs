//! Regenerates every table and figure of the Ariadne paper's evaluation.
//!
//! ```text
//! experiments [--quick] [--scale N] [--seed N] [--json] [--serial] [--list] [EXPERIMENT ...]
//! ```
//!
//! With no experiment names, all fifteen experiments run in paper order.
//! Independent experiments run in parallel (one OS thread each, merged in a
//! fixed order, so output is byte-identical to `--serial`). `--quick` uses
//! fewer applications and a larger scale factor (useful for a fast smoke
//! run); `--scale` overrides the workload/memory scale denominator (64 is
//! the default and what `EXPERIMENTS.md` records); `--json` emits one
//! machine-readable JSON document instead of plain-text tables (for
//! BENCH_*.json trajectory tracking); `--list` prints the catalog (honouring
//! `--json`).

use ariadne_sim::experiments::{catalog, runner, ExperimentOptions};
use ariadne_sim::report::json_string;
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OutputOptions {
    json: bool,
    serial: bool,
    list: bool,
}

fn parse_args() -> Result<(ExperimentOptions, OutputOptions, Vec<String>), String> {
    let mut opts = ExperimentOptions::full();
    let mut output = OutputOptions {
        json: false,
        serial: false,
        list: false,
    };
    let mut names = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let quick = ExperimentOptions::quick();
                opts.quick = true;
                opts.scale = quick.scale;
            }
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                opts.scale = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid scale `{value}`"))?
                    .max(1);
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                opts.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--json" => output.json = true,
            "--serial" => output.serial = true,
            "--list" => output.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--scale N] [--seed N] [--json] [--serial] \
                     [--list] [EXPERIMENT ...]"
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            name => names.push(name.to_string()),
        }
    }
    Ok((opts, output, names))
}

fn print_list(json: bool) {
    if json {
        let entries: Vec<String> = catalog()
            .iter()
            .map(|(name, title)| {
                format!(
                    "{{\"name\":{},\"title\":{}}}",
                    json_string(name),
                    json_string(title)
                )
            })
            .collect();
        println!("{{\"experiments\":[{}]}}", entries.join(","));
    } else {
        for (name, title) in catalog() {
            println!("{name:8} {title}");
        }
    }
}

fn main() -> ExitCode {
    let (opts, output, names) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if output.list {
        print_list(output.json);
        return ExitCode::SUCCESS;
    }

    let selected: Vec<String> = if names.is_empty() {
        catalog().iter().map(|(n, _)| (*n).to_string()).collect()
    } else {
        names
    };

    let results: Vec<(String, Option<ariadne_sim::Table>)> = if output.serial {
        selected
            .iter()
            .map(|name| {
                (
                    name.clone(),
                    ariadne_sim::experiments::run_by_name(name, &opts),
                )
            })
            .collect()
    } else {
        runner::run_named_parallel(&selected, &opts)
    };

    let mut failures = 0usize;
    if output.json {
        let mut tables = Vec::new();
        for (name, table) in &results {
            match table {
                Some(table) => tables.push(format!(
                    "{{\"name\":{},\"table\":{}}}",
                    json_string(name),
                    table.to_json()
                )),
                None => {
                    eprintln!("error: unknown experiment `{name}` (use --list)");
                    failures += 1;
                }
            }
        }
        println!(
            "{{\"seed\":{},\"scale\":{},\"mode\":{},\"experiments\":[{}]}}",
            opts.seed,
            opts.scale,
            json_string(if opts.quick { "quick" } else { "full" }),
            tables.join(",")
        );
    } else {
        // The header must not mention parallel/serial: stdout is documented
        // to be byte-identical between the two modes.
        println!(
            "# Ariadne experiment harness (seed={}, scale=1/{}, mode={})",
            opts.seed,
            opts.scale,
            if opts.quick { "quick" } else { "full" },
        );
        println!();
        for (name, table) in &results {
            match table {
                Some(table) => println!("{table}"),
                None => {
                    eprintln!("error: unknown experiment `{name}` (use --list)");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
