//! Regenerates every table and figure of the Ariadne paper's evaluation.
//!
//! ```text
//! experiments [--quick] [--scale N] [--seed N] [EXPERIMENT ...]
//! ```
//!
//! With no experiment names, all fourteen experiments run in paper order.
//! `--quick` uses fewer applications and a larger scale factor (useful for a
//! fast smoke run); `--scale` overrides the workload/memory scale denominator
//! (64 is the default and what `EXPERIMENTS.md` records).

use ariadne_sim::experiments::{catalog, run_by_name, ExperimentOptions};
use std::process::ExitCode;

fn parse_args() -> Result<(ExperimentOptions, Vec<String>), String> {
    let mut opts = ExperimentOptions::full();
    let mut names = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let quick = ExperimentOptions::quick();
                opts.quick = true;
                opts.scale = quick.scale;
            }
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                opts.scale = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid scale `{value}`"))?
                    .max(1);
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                opts.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--list" => {
                for (name, title) in catalog() {
                    println!("{name:8} {title}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--scale N] [--seed N] [--list] [EXPERIMENT ...]"
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            name => names.push(name.to_string()),
        }
    }
    Ok((opts, names))
}

fn main() -> ExitCode {
    let (opts, names) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let selected: Vec<String> = if names.is_empty() {
        catalog().iter().map(|(n, _)| (*n).to_string()).collect()
    } else {
        names
    };

    println!(
        "# Ariadne experiment harness (seed={}, scale=1/{}, mode={})",
        opts.seed,
        opts.scale,
        if opts.quick { "quick" } else { "full" }
    );
    println!();

    let mut failures = 0usize;
    for name in &selected {
        match run_by_name(name, &opts) {
            Some(table) => {
                println!("{table}");
            }
            None => {
                eprintln!("error: unknown experiment `{name}` (use --list)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
