//! The wall-clock perf-tracking harness behind `experiments --bench-json`.
//!
//! Every run of the harness records, per experiment cell, the *host*
//! wall-clock milliseconds the cell took (simulated time is a different
//! axis entirely and already byte-pinned by the determinism tests). The
//! resulting `BENCH_*.json` files form the repository's performance
//! trajectory: `BENCH_PR5.json` is the first recorded baseline,
//! `BENCH_PR6.json` the next point on the curve, and the CI bench-smoke
//! step fails when any cell regresses more than
//! [`DEFAULT_REGRESSION_FACTOR`]× over its recorded baseline (cells new
//! since the baseline are recorded but not gated).
//!
//! The JSON produced here is written and parsed by this module only (the
//! workspace deliberately carries no JSON dependency), so the parser is a
//! minimal exact-shape reader for the writer's output, with tests pinning
//! the round trip.

use std::fmt::Write as _;
use std::time::Instant;

/// A cell's cost must stay under `baseline × factor`; 2× absorbs host noise
/// while still catching real regressions.
pub const DEFAULT_REGRESSION_FACTOR: f64 = 2.0;

/// One timed experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// The experiment identifier (e.g. `fig10`).
    pub name: String,
    /// Host wall-clock the cell took, in milliseconds (the per-iteration
    /// mean when the cell was sampled more than once).
    pub millis: f64,
    /// Fastest single iteration, in milliseconds — the least-noisy figure
    /// for a repeated cell. `None` in reports written before the field
    /// existed (the parser accepts both shapes).
    pub min: Option<f64>,
    /// Population standard deviation across the iterations, in
    /// milliseconds; 0 for single-sample cells. `None` in old reports.
    pub stddev: Option<f64>,
    /// Where the cell's wall-clock went, attributed by the self-profiler
    /// (see [`ariadne_obs::profile`]). `None` in reports written before
    /// the profiler existed (BENCH_PR8 and earlier).
    pub phases: Option<PhaseMillis>,
}

/// Host wall-clock attribution of one cell across simulator phases, in
/// milliseconds. `other` is the remainder of the cell's total after the
/// instrumented phases — event dispatch glue, ledger bookkeeping, table
/// rendering.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseMillis {
    /// Compression/decompression codec work (cost charging included).
    pub codec: f64,
    /// Zpool slab and LRU bookkeeping.
    pub zpool: f64,
    /// Flash I/O model (submission, retirement, fault-in).
    pub io: f64,
    /// Event-queue pushes and pops.
    pub queue: f64,
    /// Everything the profiler did not attribute.
    pub other: f64,
}

/// Provenance of one `BENCH_*.json` document: enough to tell whose machine
/// the wall-clock numbers came from. `None` when parsing reports recorded
/// before the field existed (BENCH_PR8 and earlier).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchMeta {
    /// `git describe --always --dirty` of the tree that ran (or `unknown`).
    pub commit: String,
    /// Hostname of the recording machine (or `unknown`).
    pub host: String,
    /// Logical cores available to the run.
    pub cores: usize,
}

impl BenchMeta {
    /// Capture the current machine's provenance. Never fails: fields that
    /// cannot be determined read `unknown`.
    #[must_use]
    pub fn capture() -> Self {
        let commit = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let host = std::env::var("HOSTNAME")
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                std::process::Command::new("hostname")
                    .output()
                    .ok()
                    .filter(|o| o.status.success())
                    .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                    .filter(|s| !s.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        BenchMeta {
            commit,
            host,
            cores,
        }
    }
}

/// The timing distribution [`time_cell_stable`] measured for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Per-iteration mean, in milliseconds.
    pub mean: f64,
    /// Fastest iteration, in milliseconds.
    pub min: f64,
    /// Population standard deviation, in milliseconds (0 for one sample).
    pub stddev: f64,
    /// Iterations taken.
    pub samples: u32,
}

/// Everything one harness run records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Seed the experiments ran with.
    pub seed: u64,
    /// Scale denominator the experiments ran with.
    pub scale: usize,
    /// `quick` or `full`.
    pub mode: String,
    /// Whether the memoized compression oracle was active.
    pub oracle: bool,
    /// Which machine and tree recorded the run. `None` in old reports.
    pub meta: Option<BenchMeta>,
    /// Per-cell wall-clock, in run order.
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    /// Total wall-clock across all cells, in milliseconds.
    #[must_use]
    pub fn total_millis(&self) -> f64 {
        self.cells.iter().map(|c| c.millis).sum()
    }

    /// The recorded cell named `name`, if present.
    #[must_use]
    pub fn cell(&self, name: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Serialize to the `BENCH_*.json` format (deterministic key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seed\":{},\"scale\":{},\"mode\":\"{}\",\"oracle\":{}",
            self.seed, self.scale, self.mode, self.oracle
        );
        if let Some(meta) = &self.meta {
            let _ = write!(
                out,
                ",\"meta\":{{\"commit\":\"{}\",\"host\":\"{}\",\"cores\":{}}}",
                escape(&meta.commit),
                escape(&meta.host),
                meta.cores
            );
        }
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"millis\":{:.3}",
                cell.name, cell.millis
            );
            if let Some(min) = cell.min {
                let _ = write!(out, ",\"min\":{min:.3}");
            }
            if let Some(stddev) = cell.stddev {
                let _ = write!(out, ",\"stddev\":{stddev:.3}");
            }
            if let Some(phases) = cell.phases {
                let _ = write!(
                    out,
                    ",\"phases\":{{\"codec\":{:.3},\"zpool\":{:.3},\"io\":{:.3},\
                     \"queue\":{:.3},\"other\":{:.3}}}",
                    phases.codec, phases.zpool, phases.io, phases.queue, phases.other
                );
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a `BENCH_*.json` document produced by [`BenchReport::to_json`]
    /// — any vintage of it. Reports recorded before `meta` and per-cell
    /// `phases` existed (BENCH_PR8 and earlier, including the pre-`min`
    /// BENCH_PR5–PR7 shape) parse with those fields as `None`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let seed = scalar_field(text, "seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad seed: {e}"))?;
        let scale = scalar_field(text, "scale")?
            .parse::<usize>()
            .map_err(|e| format!("bad scale: {e}"))?;
        let mode = scalar_field(text, "mode")?;
        let oracle = scalar_field(text, "oracle")?
            .parse::<bool>()
            .map_err(|e| format!("bad oracle flag: {e}"))?;

        let meta = match object_field(text, "meta")? {
            Some(obj) => Some(BenchMeta {
                commit: scalar_field(obj, "commit")?,
                host: scalar_field(obj, "host")?,
                cores: scalar_field(obj, "cores")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad cores: {e}"))?,
            }),
            None => None,
        };

        let cells_key = text
            .find("\"cells\":")
            .ok_or_else(|| "missing field `cells`".to_string())?;
        let cells_at = text[cells_key..]
            .find('[')
            .ok_or_else(|| "field `cells` is not an array".to_string())?
            + cells_key;
        let mut cells = Vec::new();
        let mut rest = &text[cells_at + 1..];
        while let Some(obj_start) = rest.find('{') {
            let obj_end = matching_brace(rest, obj_start)?;
            let obj = &rest[obj_start..=obj_end];
            // `min`/`stddev` are optional: reports recorded before the
            // fields existed (BENCH_PR7 and earlier) parse as `None`.
            let optional = |key: &str| -> Result<Option<f64>, String> {
                match scalar_field(obj, key) {
                    Ok(text) => text
                        .parse::<f64>()
                        .map(Some)
                        .map_err(|e| format!("bad {key}: {e}")),
                    Err(_) => Ok(None),
                }
            };
            let phases = match object_field(obj, "phases")? {
                Some(ph) => {
                    let part = |key: &str| -> Result<f64, String> {
                        scalar_field(ph, key)?
                            .parse::<f64>()
                            .map_err(|e| format!("bad phase {key}: {e}"))
                    };
                    Some(PhaseMillis {
                        codec: part("codec")?,
                        zpool: part("zpool")?,
                        io: part("io")?,
                        queue: part("queue")?,
                        other: part("other")?,
                    })
                }
                None => None,
            };
            cells.push(BenchCell {
                name: scalar_field(obj, "name")?,
                millis: scalar_field(obj, "millis")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad millis: {e}"))?,
                min: optional("min")?,
                stddev: optional("stddev")?,
                phases,
            });
            rest = &rest[obj_end + 1..];
        }
        Ok(BenchReport {
            seed,
            scale,
            mode,
            oracle,
            meta,
            cells,
        })
    }
}

/// Extract the scalar value of `"key":` from `text`: the run of characters
/// up to the next `,`, `}` or `]`, unquoted and trimmed. Scalar values
/// never contain those characters in this format, and every scalar key is
/// unique within the region it is searched in.
fn scalar_field(text: &str, key: &str) -> Result<String, String> {
    let marker = format!("\"{key}\":");
    let start = text
        .find(&marker)
        .ok_or_else(|| format!("missing field `{key}`"))?
        + marker.len();
    let rest = &text[start..];
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field `{key}`"))?;
    Ok(rest[..end].trim().trim_matches('"').to_string())
}

/// Extract the `{...}` object value of `"key":` from `text`, nested braces
/// included. `Ok(None)` when the key is absent (old reports).
fn object_field<'a>(text: &'a str, key: &str) -> Result<Option<&'a str>, String> {
    let marker = format!("\"{key}\":");
    let Some(at) = text.find(&marker) else {
        return Ok(None);
    };
    let open = at
        + marker.len()
        + text[at + marker.len()..]
            .find('{')
            .ok_or_else(|| format!("field `{key}` is not an object"))?;
    let close = matching_brace(text, open)?;
    Ok(Some(&text[open..=close]))
}

/// Index of the `}` matching the `{` at byte `open`, skipping string
/// literals (escapes included).
fn matching_brace(text: &str, open: usize) -> Result<usize, String> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err("unterminated object".to_string())
}

/// Time one closure, returning `(its result, wall-clock milliseconds)`.
pub fn time_cell<T>(run: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = run();
    (result, start.elapsed().as_secs_f64() * 1000.0)
}

/// A cell faster than this is too short for one sample to mean anything —
/// scheduler jitter alone is a large fraction of the reading.
pub const MIN_SAMPLE_MILLIS: f64 = 10.0;

/// Hard cap on repeat iterations, so a pathologically fast cell cannot spin
/// the harness for long.
pub const MAX_SAMPLE_ITERATIONS: u32 = 64;

/// Time one closure with a noise floor: a run shorter than
/// [`MIN_SAMPLE_MILLIS`] is repeated (up to [`MAX_SAMPLE_ITERATIONS`] times)
/// until the *accumulated* measurement passes the floor, and the timing
/// distribution — per-iteration mean, fastest iteration and standard
/// deviation — is reported. Cells above the floor take exactly one sample
/// (`min == mean`, `stddev == 0`), like [`time_cell`]. This is what keeps
/// sub-10 ms quick-mode cells from failing the regression gate on pure
/// timer jitter: a 0.4 ms cell is sampled ~25 times and its mean is
/// stable, where a single sample could swing 3–4×; the recorded min and
/// stddev make the residual noise visible in the `BENCH_*.json`
/// trajectory instead of hiding inside the mean.
pub fn time_cell_stable<T>(mut run: impl FnMut() -> T) -> (T, CellTiming) {
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    let mut result = run();
    samples.push(start.elapsed().as_secs_f64() * 1000.0);
    let mut total = samples[0];
    while total < MIN_SAMPLE_MILLIS && samples.len() < MAX_SAMPLE_ITERATIONS as usize {
        let start = Instant::now();
        result = run();
        let sample = start.elapsed().as_secs_f64() * 1000.0;
        samples.push(sample);
        total += sample;
    }
    let n = samples.len() as f64;
    let mean = total / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let variance = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (
        result,
        CellTiming {
            mean,
            min,
            stddev: variance.sqrt(),
            samples: samples.len() as u32,
        },
    )
}

impl BenchReport {
    /// Whether `baseline` was recorded under the same conditions as this
    /// run. Wall-clock is only comparable for matching (mode, scale, seed,
    /// oracle) — a full-mode or `--no-oracle` run measured against the
    /// committed quick-mode oracle-on baseline would report a wall of bogus
    /// regressions, so the harness refuses instead.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching field.
    pub fn comparable_with(&self, baseline: &BenchReport) -> Result<(), String> {
        let fields = [
            ("mode", self.mode.clone(), baseline.mode.clone()),
            ("scale", self.scale.to_string(), baseline.scale.to_string()),
            ("seed", self.seed.to_string(), baseline.seed.to_string()),
            (
                "oracle",
                self.oracle.to_string(),
                baseline.oracle.to_string(),
            ),
        ];
        for (name, current, recorded) in fields {
            if current != recorded {
                return Err(format!(
                    "baseline {name} mismatch: this run used {name}={current}, \
                     the baseline recorded {name}={recorded} — wall-clock is \
                     not comparable across configurations"
                ));
            }
        }
        Ok(())
    }
}

/// Compare a fresh run against a recorded baseline. Returns one message per
/// failure: a cell whose wall-clock exceeds `baseline × factor`, or a
/// baseline cell the current run did not record at all — a silently
/// vanished cell would otherwise freeze its baseline forever while the
/// gate reported green. Cells new since the baseline are ignored (new
/// experiments start their own trajectory).
#[must_use]
pub fn regressions(current: &BenchReport, baseline: &BenchReport, factor: f64) -> Vec<String> {
    let mut messages = Vec::new();
    for cell in &current.cells {
        let Some(base) = baseline.cell(&cell.name) else {
            continue;
        };
        // Sub-millisecond baselines are pure noise; hold them to a 1 ms
        // floor so a 0.2 ms → 0.5 ms jitter does not fail the build.
        let limit = (base.millis * factor).max(1.0);
        if cell.millis > limit {
            messages.push(format!(
                "{}: {:.1} ms exceeds {:.1} ms ({}x over the {:.1} ms baseline)",
                cell.name, cell.millis, limit, factor, base.millis
            ));
        }
    }
    for base in &baseline.cells {
        if current.cell(&base.name).is_none() {
            messages.push(format!(
                "{}: recorded in the baseline but missing from this run — \
                 renamed or dropped cells must update the committed baseline",
                base.name
            ));
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            seed: 7,
            scale: 256,
            mode: "quick".to_string(),
            oracle: true,
            meta: None,
            cells: vec![
                BenchCell {
                    name: "fig10".to_string(),
                    millis: 123.456,
                    min: None,
                    stddev: None,
                    phases: None,
                },
                BenchCell {
                    name: "lifecycle".to_string(),
                    millis: 42.0,
                    min: None,
                    stddev: None,
                    phases: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let original = report();
        let parsed = BenchReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        assert!((parsed.total_millis() - 165.456).abs() < 1e-9);
    }

    #[test]
    fn min_and_stddev_round_trip_and_old_reports_parse_without_them() {
        let mut original = report();
        original.cells[0].min = Some(100.125);
        original.cells[0].stddev = Some(4.5);
        let text = original.to_json();
        assert!(text.contains("\"min\":100.125"));
        assert!(text.contains("\"stddev\":4.500"));
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, original);
        // The second cell carried no distribution — the writer omits the
        // keys and the parser reads them back as `None`, exactly like a
        // report recorded before the fields existed.
        assert_eq!(parsed.cells[1].min, None);
        assert_eq!(parsed.cells[1].stddev, None);
    }

    #[test]
    fn meta_and_phases_round_trip() {
        let mut original = report();
        original.meta = Some(BenchMeta {
            commit: "939b36c-dirty".to_string(),
            host: "build-box".to_string(),
            cores: 16,
        });
        original.cells[0].phases = Some(PhaseMillis {
            codec: 60.25,
            zpool: 20.5,
            io: 10.125,
            queue: 2.75,
            other: 29.831,
        });
        let text = original.to_json();
        assert!(text.contains("\"meta\":{\"commit\":\"939b36c-dirty\""));
        assert!(text.contains("\"phases\":{\"codec\":60.250"));
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, original);
        // The second cell carried no breakdown: parses back as `None`.
        assert_eq!(parsed.cells[1].phases, None);
    }

    #[test]
    fn captured_meta_has_no_empty_fields() {
        let meta = BenchMeta::capture();
        assert!(!meta.commit.is_empty());
        assert!(!meta.host.is_empty());
        assert!(meta.cores >= 1);
    }

    #[test]
    fn reports_from_previous_prs_parse_with_the_new_fields_absent() {
        // The exact shapes committed as BENCH_PR5.json (no min/stddev) and
        // BENCH_PR8.json (min/stddev, no meta/phases): both vintages must
        // keep parsing so `--bench-compare` works against any baseline.
        let pr5 = "{\"seed\":7,\"scale\":256,\"mode\":\"quick\",\"oracle\":true,\
                   \"cells\":[{\"name\":\"fig10\",\"millis\":123.456}]}\n";
        let parsed = BenchReport::from_json(pr5).unwrap();
        assert_eq!(parsed.meta, None);
        assert_eq!(parsed.cells[0].min, None);
        assert_eq!(parsed.cells[0].phases, None);
        let pr8 = "{\"seed\":7,\"scale\":256,\"mode\":\"quick\",\"oracle\":true,\
                   \"cells\":[{\"name\":\"fig10\",\"millis\":123.456,\
                   \"min\":120.000,\"stddev\":2.000}]}\n";
        let parsed = BenchReport::from_json(pr8).unwrap();
        assert_eq!(parsed.meta, None);
        assert_eq!(parsed.cells[0].min, Some(120.0));
        assert_eq!(parsed.cells[0].phases, None);
        // And a new-format report downgrades cleanly for an old cell mix.
        let new = BenchReport {
            meta: Some(BenchMeta::default()),
            ..parsed
        };
        let reparsed = BenchReport::from_json(&new.to_json()).unwrap();
        assert_eq!(reparsed, new);
    }

    #[test]
    fn malformed_json_is_rejected_with_a_reason() {
        assert!(BenchReport::from_json("{}").unwrap_err().contains("seed"));
        assert!(
            BenchReport::from_json("{\"seed\":1,\"scale\":2,\"mode\":\"q\",\"oracle\":true}")
                .unwrap_err()
                .contains("cells")
        );
    }

    #[test]
    fn pretty_printed_json_with_spaces_still_parses() {
        let text = "{\"seed\": 7, \"scale\": 256, \"mode\": \"quick\", \"oracle\": true, \
                    \"cells\": [{\"name\": \"fig10\", \"millis\": 123.456}, \
                    {\"name\": \"lifecycle\", \"millis\": 42.0}]}";
        let parsed = BenchReport::from_json(text).unwrap();
        assert_eq!(parsed, report());
    }

    #[test]
    fn regressions_flag_only_cells_beyond_the_factor() {
        let baseline = report();
        let mut current = report();
        current.cells[0].millis = 123.456 * 2.1; // beyond 2x
        current.cells[1].millis = 42.0 * 1.9; // within 2x
        current.cells.push(BenchCell {
            name: "brand-new".to_string(),
            millis: 9999.0, // no baseline: ignored
            min: None,
            stddev: None,
            phases: None,
        });
        let messages = regressions(&current, &baseline, DEFAULT_REGRESSION_FACTOR);
        assert_eq!(messages.len(), 1);
        assert!(messages[0].starts_with("fig10:"));
    }

    #[test]
    fn a_cell_missing_from_the_current_run_fails_the_gate() {
        let baseline = report();
        let mut current = report();
        current.cells.remove(1); // `lifecycle` vanished from this run
        let messages = regressions(&current, &baseline, DEFAULT_REGRESSION_FACTOR);
        assert_eq!(messages.len(), 1);
        assert!(messages[0].starts_with("lifecycle:"), "{messages:?}");
        assert!(messages[0].contains("missing from this run"));
    }

    #[test]
    fn mismatched_recording_conditions_are_not_comparable() {
        let base = report();
        assert!(base.comparable_with(&report()).is_ok());
        let full = BenchReport {
            mode: "full".to_string(),
            ..report()
        };
        assert!(full.comparable_with(&base).unwrap_err().contains("mode"));
        let no_oracle = BenchReport {
            oracle: false,
            ..report()
        };
        assert!(no_oracle
            .comparable_with(&base)
            .unwrap_err()
            .contains("oracle"));
        let rescaled = BenchReport {
            scale: 64,
            ..report()
        };
        assert!(rescaled
            .comparable_with(&base)
            .unwrap_err()
            .contains("scale"));
    }

    #[test]
    fn tiny_baselines_get_a_noise_floor() {
        let baseline = BenchReport {
            cells: vec![BenchCell {
                name: "t".to_string(),
                millis: 0.2,
                min: None,
                stddev: None,
                phases: None,
            }],
            ..report()
        };
        let current = BenchReport {
            cells: vec![BenchCell {
                name: "t".to_string(),
                millis: 0.9, // 4.5x but under the 1 ms floor
                min: None,
                stddev: None,
                phases: None,
            }],
            ..report()
        };
        assert!(regressions(&current, &baseline, 2.0).is_empty());
    }

    #[test]
    fn time_cell_stable_repeats_fast_cells_and_reports_the_distribution() {
        let mut calls = 0u32;
        let (value, timing) = time_cell_stable(|| {
            calls += 1;
            calls
        });
        // A near-instant cell must be repeated up to the iteration cap, and
        // the reported per-iteration mean must stay near-instant (far below
        // the accumulated total).
        assert_eq!(value, calls);
        assert!(calls > 1, "sub-floor cells are repeated (ran {calls}x)");
        assert!(calls <= MAX_SAMPLE_ITERATIONS);
        assert_eq!(timing.samples, calls);
        assert!(timing.mean < MIN_SAMPLE_MILLIS);
        assert!(timing.min <= timing.mean, "the fastest run bounds the mean");
        assert!(timing.stddev >= 0.0 && timing.stddev.is_finite());
    }

    #[test]
    fn time_cell_stable_takes_one_sample_of_slow_cells() {
        let mut calls = 0u32;
        let (_, timing) = time_cell_stable(|| {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(11));
        });
        assert_eq!(calls, 1, "cells above the floor are not repeated");
        assert!(timing.mean >= MIN_SAMPLE_MILLIS);
        assert_eq!(timing.samples, 1);
        assert!((timing.min - timing.mean).abs() < 1e-12);
        assert_eq!(timing.stddev, 0.0, "one sample has no spread");
    }

    #[test]
    fn time_cell_reports_positive_wall_clock() {
        let (value, millis) = time_cell(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(value, 7);
        assert!(millis >= 1.0);
    }
}
