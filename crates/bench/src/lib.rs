//! Shared helpers for the Ariadne benchmark suite.
//!
//! The actual entry points are the `experiments` binary (regenerates every
//! table and figure of the paper via `ariadne-sim`, and doubles as the
//! wall-clock perf harness via `--bench-json` / `--bench-compare`) and the
//! Criterion benches under `benches/` (real wall-clock throughput of the
//! codecs and of the simulator itself).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use ariadne_mem::{AppId, PageId, Pfn, PAGE_SIZE};
use ariadne_trace::{AppName, PageDataGenerator};

/// Build a corpus of synthetic anonymous-page bytes for benchmarking the
/// codecs (`pages` pages drawn from the given application's profile). One
/// up-front allocation; pages are synthesized in place.
#[must_use]
pub fn anonymous_corpus(app: AppName, pages: usize, seed: u64) -> Vec<u8> {
    let generator = PageDataGenerator::new(seed);
    let profile = app.profile();
    let mut corpus = vec![0u8; pages * PAGE_SIZE];
    for pfn in 0..pages {
        let page = PageId::new(AppId::new(app.uid()), Pfn::new(pfn as u64));
        let buf: &mut [u8; PAGE_SIZE] = (&mut corpus[pfn * PAGE_SIZE..(pfn + 1) * PAGE_SIZE])
            .try_into()
            .expect("page-sized slice");
        generator.fill_page_bytes(&profile, page, buf);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_requested_size_and_is_deterministic() {
        let a = anonymous_corpus(AppName::Twitter, 8, 1);
        let b = anonymous_corpus(AppName::Twitter, 8, 1);
        assert_eq!(a.len(), 8 * 4096);
        assert_eq!(a, b);
    }
}
