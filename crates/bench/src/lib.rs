//! Shared helpers for the Ariadne benchmark suite.
//!
//! The actual entry points are the `experiments` binary (regenerates every
//! table and figure of the paper via `ariadne-sim`) and the Criterion
//! benches under `benches/` (real wall-clock throughput of the codecs and of
//! the simulator itself).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ariadne_mem::{AppId, PageId, Pfn};
use ariadne_trace::{AppName, PageDataGenerator};

/// Build a corpus of synthetic anonymous-page bytes for benchmarking the
/// codecs (`pages` pages drawn from the given application's profile).
#[must_use]
pub fn anonymous_corpus(app: AppName, pages: usize, seed: u64) -> Vec<u8> {
    let generator = PageDataGenerator::new(seed);
    let profile = app.profile();
    let mut corpus = Vec::with_capacity(pages * 4096);
    for pfn in 0..pages {
        let page = PageId::new(AppId::new(app.uid()), Pfn::new(pfn as u64));
        corpus.extend(generator.page_bytes(&profile, page));
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_requested_size_and_is_deterministic() {
        let a = anonymous_corpus(AppName::Twitter, 8, 1);
        let b = anonymous_corpus(AppName::Twitter, 8, 1);
        assert_eq!(a.len(), 8 * 4096);
        assert_eq!(a, b);
    }
}
