//! The concurrent multi-application experiment.
//!
//! The paper's setting — ten applications contending for a Pixel 7's memory
//! — only stresses HotnessOrg, size-adaptive compression and PreDecomp when
//! app lifecycles actually overlap. This experiment drives the canonical
//! [`TimedScenario::concurrent_relaunch_storm`] (six overlapping apps,
//! background churn, relaunches landing during memory-pressure spikes)
//! through the event engine for all five schemes, one OS thread per scheme.

use super::runner::{run_grid, GridCell};
use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use ariadne_core::SizeConfig;
use ariadne_trace::TimedScenario;

/// The five schemes the concurrent experiment compares.
#[must_use]
pub fn evaluated_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Dram,
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ]
}

/// Multi-app concurrent relaunch storm: relaunch latency and background
/// work for all five schemes under overlapping app timelines.
#[must_use]
pub fn multiapp(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Multi-app storm: concurrent relaunches under pressure (event engine)",
        &[
            "scheme",
            "avg relaunch",
            "relaunches",
            "comp ops",
            "decomp ops",
            "predecomp hits",
            "dropped",
            "reclaim CPU",
        ],
    );
    let config = opts.base_config();
    let scenario = TimedScenario::concurrent_relaunch_storm();
    let cells: Vec<GridCell> = evaluated_schemes()
        .into_iter()
        .map(|spec| GridCell {
            spec,
            scenario: scenario.clone(),
        })
        .collect();
    for outcome in run_grid(config, cells) {
        table.push_row(vec![
            outcome.scheme,
            fmt_unit(outcome.average_relaunch_millis, "ms"),
            outcome.relaunches.to_string(),
            outcome.compression_ops.to_string(),
            outcome.decompression_ops.to_string(),
            outcome.predecomp_hits.to_string(),
            outcome.dropped_pages.to_string(),
            fmt_unit(outcome.reclaim_cpu_millis, "ms"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiapp_reports_all_five_schemes_in_fixed_order() {
        let table = multiapp(&ExperimentOptions::quick());
        assert_eq!(table.row_count(), 5);
        let labels: Vec<&str> = table.rows().map(|r| r[0].as_str()).collect();
        assert_eq!(
            labels,
            vec!["DRAM", "SWAP", "ZRAM", "ZSWAP", "Ariadne-EHL-1K-2K-16K"]
        );
    }

    #[test]
    fn storm_makes_compressed_schemes_do_real_work() {
        let table = multiapp(&ExperimentOptions::quick());
        let zram_comp: f64 = table.row_by_key("ZRAM").unwrap()[3].parse().unwrap();
        let dram_comp: f64 = table.row_by_key("DRAM").unwrap()[3].parse().unwrap();
        assert!(zram_comp > 0.0);
        assert!(dram_comp == 0.0);
        // Every scheme measured the same number of relaunches.
        let counts: Vec<&str> = table.rows().map(|r| r[2].as_str()).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }
}
