//! One module per group of paper experiments.
//!
//! Every experiment function takes an [`ExperimentOptions`] (seed, scale and
//! a quick/full switch) and returns a [`Table`] with exactly the rows and
//! series the paper reports. The `experiments` binary in `ariadne-bench`
//! prints all of them; `EXPERIMENTS.md` records paper-reported versus
//! measured values.

pub mod baselines;
pub mod characterization;
pub mod concurrent;
pub mod evaluation;
pub mod identification;
pub mod lifecycle;
pub mod lifetime;
pub mod runner;
pub mod status;
pub mod writeback;

use crate::report::Table;
use ariadne_trace::AppName;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Deterministic seed.
    pub seed: u64,
    /// Workload / memory scale denominator (64 reproduces the figures,
    /// larger values run faster).
    pub scale: usize,
    /// Quick mode: fewer applications and smaller samples, for CI and tests.
    pub quick: bool,
    /// Whether simulations use the memoized compression oracle. Output is
    /// byte-identical either way (pinned by `tests/oracle_equivalence.rs`);
    /// the switch exists so the perf harness can measure the saving.
    pub oracle: bool,
    /// Thermal-model override. `None` leaves each experiment's own choice in
    /// place (most run with the model off; `lifetime` turns it on); `Some`
    /// forces that configuration everywhere, which is how CI pins the
    /// thermal-off output against the default catalog output.
    pub thermal: Option<ariadne_compress::ThermalConfig>,
}

impl ExperimentOptions {
    /// The full-fidelity configuration used to regenerate the figures.
    #[must_use]
    pub fn full() -> Self {
        ExperimentOptions {
            seed: 0x0A71_AD4E,
            scale: 64,
            quick: false,
            oracle: true,
            thermal: None,
        }
    }

    /// A reduced configuration for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentOptions {
            seed: 0x0A71_AD4E,
            scale: 256,
            quick: true,
            oracle: true,
            thermal: None,
        }
    }

    /// Disable (or re-enable) the memoized compression oracle.
    #[must_use]
    pub fn with_oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// Force a thermal configuration onto every experiment.
    #[must_use]
    pub fn with_thermal(mut self, thermal: ariadne_compress::ThermalConfig) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// The simulation configuration every experiment starts from: seed and
    /// scale from these options, plus the oracle switch. Experiments layer
    /// their own overrides (I/O model, zpool shrink, lmkd) on top.
    #[must_use]
    pub fn base_config(&self) -> crate::system::SimulationConfig {
        let mut config = crate::system::SimulationConfig::new(self.seed)
            .with_scale(self.scale)
            .with_oracle(self.oracle);
        if let Some(thermal) = self.thermal {
            config = config.with_thermal(thermal);
        }
        config
    }

    /// The applications whose per-app results are reported (the paper plots
    /// five of the ten for readability; quick mode uses two).
    #[must_use]
    pub fn reported_apps(&self) -> Vec<AppName> {
        if self.quick {
            vec![AppName::Youtube, AppName::BangDream]
        } else {
            AppName::REPORTED.to_vec()
        }
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions::full()
    }
}

/// Every experiment, in paper order: (identifier, human title, function).
#[must_use]
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "table1",
            "Table 1: anonymous data volume of five applications",
        ),
        (
            "fig2",
            "Figure 2: relaunch latency under DRAM / ZRAM / SWAP",
        ),
        (
            "fig3",
            "Figure 3: reclaim (kswapd) CPU usage under DRAM / ZRAM / SWAP",
        ),
        ("table2", "Table 2: energy under three swap schemes"),
        (
            "fig4",
            "Figure 4: hot/warm/cold share per compression-order decile",
        ),
        (
            "fig5",
            "Figure 5: hot-data similarity and reuse across relaunches",
        ),
        (
            "fig6",
            "Figure 6: latency and ratio versus compression chunk size",
        ),
        (
            "table3",
            "Table 3: probability of consecutive zpool accesses",
        ),
        ("fig10", "Figure 10: application relaunch latency"),
        (
            "fig11",
            "Figure 11: normalized compression/decompression CPU usage",
        ),
        ("fig12", "Figure 12: compression and decompression latency"),
        ("fig13", "Figure 13: compression ratios"),
        (
            "fig14",
            "Figure 14: coverage and accuracy of hot-data identification",
        ),
        ("fig15", "Figure 15: chunk-size sensitivity study"),
        (
            "multiapp",
            "Multi-app storm: concurrent relaunches under pressure",
        ),
        (
            "writeback",
            "Writeback study: sync vs async vs batched flash I/O",
        ),
        (
            "lifecycle",
            "Process lifecycle: lmkd kills and cold-vs-warm relaunch latency",
        ),
        (
            "lifetime",
            "Device lifetime: wear, thermal throttling and kills over an hours-long soak",
        ),
    ]
}

/// Run one experiment by its identifier (e.g. `fig10`). Returns `None` for an
/// unknown identifier.
#[must_use]
pub fn run_by_name(name: &str, opts: &ExperimentOptions) -> Option<Table> {
    let table = match name {
        "table1" => characterization::table1(opts),
        "fig2" => baselines::fig2(opts),
        "fig3" => baselines::fig3(opts),
        "table2" => baselines::table2(opts),
        "fig4" => characterization::fig4(opts),
        "fig5" => characterization::fig5(opts),
        "fig6" => characterization::fig6(opts),
        "table3" => characterization::table3(opts),
        "fig10" => evaluation::fig10(opts),
        "fig11" => evaluation::fig11(opts),
        "fig12" => evaluation::fig12(opts),
        "fig13" => evaluation::fig13(opts),
        "fig14" => identification::fig14(opts),
        "fig15" => evaluation::fig15(opts),
        "multiapp" => concurrent::multiapp(opts),
        "writeback" => writeback::writeback(opts),
        "lifecycle" => lifecycle::lifecycle(opts),
        "lifetime" => lifetime::lifetime(opts),
        _ => return None,
    };
    Some(table)
}

/// Run every experiment in paper order, serially.
#[must_use]
pub fn run_all(opts: &ExperimentOptions) -> Vec<Table> {
    catalog()
        .iter()
        .filter_map(|(name, _)| run_by_name(name, opts))
        .collect()
}

/// Run every experiment in paper order using all host cores (one OS thread
/// per experiment; results merge in catalog order, byte-identical to
/// [`run_all`]).
#[must_use]
pub fn run_all_parallel(opts: &ExperimentOptions) -> Vec<Table> {
    let names: Vec<String> = catalog().iter().map(|(n, _)| (*n).to_string()).collect();
    runner::run_named_parallel(&names, opts)
        .into_iter()
        .filter_map(|(_, table)| table)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_table_and_figure_of_the_evaluation() {
        let names: Vec<&str> = catalog().iter().map(|(n, _)| *n).collect();
        for required in [
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "multiapp",
            "writeback",
            "lifecycle",
            "lifetime",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn unknown_experiment_names_return_none() {
        assert!(run_by_name("fig99", &ExperimentOptions::quick()).is_none());
    }

    #[test]
    fn quick_options_reduce_the_reported_apps() {
        assert_eq!(ExperimentOptions::quick().reported_apps().len(), 2);
        assert_eq!(ExperimentOptions::full().reported_apps().len(), 5);
    }
}
