//! Figure 14: coverage and accuracy of Ariadne's hot-data identification.

use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::MobileSystem;
use ariadne_core::{AriadneScheme, SizeConfig};
use ariadne_trace::{AppName, Scenario, ScenarioEvent, ScenarioKind};
use ariadne_zram::OracleHandle;

/// Build a scenario that relaunches `target` several times with other
/// applications launched in between (so hot-list predictions are exercised
/// under real memory pressure).
fn repeated_relaunch_scenario(target: AppName, rounds: usize) -> Scenario {
    let mut events = vec![
        ScenarioEvent::Launch(target),
        ScenarioEvent::Background(target),
    ];
    for app in AppName::ALL.iter().filter(|&&a| a != target) {
        events.push(ScenarioEvent::Launch(*app));
        events.push(ScenarioEvent::Background(*app));
    }
    for round in 0..rounds {
        events.push(ScenarioEvent::Relaunch {
            app: target,
            relaunch_index: round,
        });
        events.push(ScenarioEvent::Background(target));
        // Touch two other applications between relaunches of the target.
        for other in AppName::ALL.iter().filter(|&&a| a != target).take(2) {
            events.push(ScenarioEvent::Relaunch {
                app: *other,
                relaunch_index: round,
            });
            events.push(ScenarioEvent::Background(*other));
        }
    }
    Scenario {
        kind: ScenarioKind::RelaunchStudy,
        events,
    }
}

/// Figure 14: per-application coverage and accuracy of hot-data
/// identification under Ariadne-EHL-1K-2K-16K.
#[must_use]
pub fn fig14(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 14: hot-data identification quality",
        &["app", "coverage", "accuracy"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let rounds = if opts.quick { 3 } else { 4 };
    for app in opts.reported_apps() {
        let mut system =
            MobileSystem::new(SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()), config);
        system.attach_oracle(&oracle);
        system.run_scenario(&repeated_relaunch_scenario(app, rounds));
        let target_id = system.workload(app).app;
        let ariadne = system
            .scheme_mut()
            .as_any_mut()
            .downcast_mut::<AriadneScheme>()
            .expect("the scheme under test is Ariadne");
        let samples = ariadne.identification_metrics();
        let target_samples: Vec<_> = samples
            .iter()
            .filter(|(id, m)| *id == target_id && m.predicted_pages > 0)
            .map(|(_, m)| *m)
            .collect();
        if target_samples.is_empty() {
            table.push_row(vec![app.to_string(), "n/a".to_string(), "n/a".to_string()]);
            continue;
        }
        let coverage =
            target_samples.iter().map(|m| m.coverage).sum::<f64>() / target_samples.len() as f64;
        let accuracy =
            target_samples.iter().map(|m| m.accuracy).sum::<f64>() / target_samples.len() as f64;
        table.push_row(vec![
            app.to_string(),
            fmt_unit(coverage * 100.0, "%"),
            fmt_unit(accuracy * 100.0, "%"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_reports_high_coverage_and_accuracy() {
        let table = fig14(&ExperimentOptions::quick());
        assert!(table.row_count() >= 2);
        for row in table.rows() {
            assert_ne!(row[1], "n/a", "{}: no identification samples", row[0]);
            let coverage: f64 = row[1].trim_end_matches('%').parse().unwrap();
            let accuracy: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(coverage > 40.0, "{}: coverage {coverage}", row[0]);
            assert!(accuracy > 50.0, "{}: accuracy {accuracy}", row[0]);
        }
    }

    #[test]
    fn repeated_relaunch_scenario_relaunches_the_target_each_round() {
        let scenario = repeated_relaunch_scenario(AppName::Twitter, 3);
        let target_relaunches = scenario
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ScenarioEvent::Relaunch {
                        app: AppName::Twitter,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(target_relaunches, 3);
    }
}
