//! The writeback study: synchronous versus asynchronous versus batched
//! flash I/O.
//!
//! The Ariadne paper's CPU and relaunch wins assume cold data can be shipped
//! to flash *without* the foreground paying for it. This experiment drives
//! the I/O-heavy [`TimedScenario::writeback_storm`] through every
//! flash-writing scheme under three device models:
//!
//! * **sync** — every write is charged inline on whoever triggered it (the
//!   legacy model; background drains are disabled because writeback cannot
//!   overlap anything);
//! * **async** — writes are queued commands, one object per command;
//! * **batched** — queued commands carrying up to eight pages each, paying
//!   the per-command overhead once per batch.
//!
//! Reported per cell: average relaunch latency, time stalled on in-flight
//! I/O, total CPU busy time, and flash wear (device commands and megabytes
//! written at full scale).

use super::runner::run_cells;
use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::MobileSystem;
use ariadne_core::SizeConfig;
use ariadne_mem::FlashIoConfig;
use ariadne_trace::TimedScenario;
use ariadne_zram::OracleHandle;

/// The three I/O models the experiment compares.
#[must_use]
pub fn evaluated_io_modes() -> Vec<(&'static str, FlashIoConfig)> {
    vec![
        ("sync", FlashIoConfig::sync()),
        ("async", FlashIoConfig::ufs31().with_max_batch_pages(1)),
        ("batched", FlashIoConfig::ufs31()),
    ]
}

/// The flash-writing schemes the experiment compares.
#[must_use]
pub fn evaluated_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Swap,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ]
}

/// Writeback study: relaunch latency, I/O stalls, CPU busy time and flash
/// wear under sync / async / batched writeback for every flash-writing
/// scheme.
#[must_use]
pub fn writeback(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Writeback study: sync vs async vs batched flash I/O (writeback storm)",
        &[
            "scheme",
            "io mode",
            "avg relaunch",
            "io stall",
            "cpu busy",
            "flash cmds",
            "flash MB",
        ],
    );
    let scenario = TimedScenario::writeback_storm();
    let mut cells = Vec::new();
    for spec in evaluated_schemes() {
        for (label, io) in evaluated_io_modes() {
            cells.push((spec, label, io));
        }
    }
    let base = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let scale = opts.scale;
    let rows = run_cells(cells, |(spec, label, io)| {
        // A vendor-sized zswap pool (1/16 of the paper's 3 GB) keeps the
        // compressed pool overflowing, so writeback traffic is sustained.
        let config = base.with_io(io).with_zpool_shrink(16);
        let mut system = MobileSystem::new(spec, config);
        system.attach_oracle(&oracle);
        system.run_timed(&scenario);
        let stats = system.stats();
        let full_scale = scale as f64;
        vec![
            spec.label(),
            label.to_string(),
            fmt_unit(system.average_relaunch_millis(), "ms"),
            fmt_unit(system.total_io_stall().as_millis_f64() * full_scale, "ms"),
            fmt_unit(system.cpu().total().as_millis_f64() * full_scale, "ms"),
            stats.flash.commands.to_string(),
            format!(
                "{:.1}",
                stats.flash.bytes_written as f64 * full_scale / (1024.0 * 1024.0)
            ),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writeback_reports_every_scheme_under_every_io_mode() {
        let table = writeback(&ExperimentOptions::quick());
        assert_eq!(table.row_count(), 9);
        let schemes: Vec<&str> = table.rows().map(|r| r[0].as_str()).collect();
        assert_eq!(schemes[0], "SWAP");
        assert_eq!(schemes[3], "ZSWAP");
        assert!(schemes[6].starts_with("Ariadne"));
        let modes: Vec<&str> = table.rows().map(|r| r[1].as_str()).collect();
        assert_eq!(&modes[..3], &["sync", "async", "batched"]);
    }

    #[test]
    fn async_writeback_never_loses_to_sync_on_relaunch_latency() {
        let table = writeback(&ExperimentOptions::quick());
        for scheme in 0..3 {
            let sync = table.cell_f64(scheme * 3, 2).unwrap();
            let asynchronous = table.cell_f64(scheme * 3 + 1, 2).unwrap();
            assert!(
                asynchronous <= sync,
                "row {scheme}: async {asynchronous} ms vs sync {sync} ms"
            );
        }
    }

    #[test]
    fn batching_reduces_device_commands() {
        let table = writeback(&ExperimentOptions::quick());
        // ZSWAP rows: async (index 4) vs batched (index 5).
        let unbatched: f64 = table.cell_f64(4, 5).unwrap();
        let batched: f64 = table.cell_f64(5, 5).unwrap();
        assert!(
            batched < unbatched,
            "batched {batched} commands vs unbatched {unbatched}"
        );
    }
}
