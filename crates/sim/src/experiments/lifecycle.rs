//! The process-lifecycle study: kills suffered, cold-versus-warm relaunch
//! latency and effective memory capacity under the low-memory killer.
//!
//! On a real device the alternative to swapping is killing: when a scheme
//! cannot absorb memory pressure, lmkd terminates cached background apps
//! and the user pays a full cold launch instead of a warm relaunch. This
//! experiment drives the canonical [`TimedScenario::kill_storm`] — six
//! overlapping apps, a foreground memory hog, background churn, then a
//! relaunch sweep — through every scheme with lmkd armed, over a
//! vendor-sized zpool that genuinely overflows. Schemes that keep relaunch
//! stalls low (Ariadne) ride out the storm with their apps alive; schemes
//! that stall on every fault (SWAP, ZRAM) see their cached apps killed and
//! pay the cold launches.

use super::runner::run_cells;
use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::{MobileSystem, RelaunchKind};
use ariadne_core::SizeConfig;
use ariadne_mem::{PageLocation, PAGE_SIZE};
use ariadne_trace::TimedScenario;
use ariadne_zram::OracleHandle;

/// The five schemes the lifecycle experiment compares.
#[must_use]
pub fn evaluated_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Dram,
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ]
}

/// Bytes of application data still reachable anywhere in the hierarchy
/// (DRAM, zpool, flash, pre-decompression buffer) — the effective memory
/// capacity the scheme provides after the storm.
fn retained_bytes(system: &MobileSystem) -> usize {
    let mut pages = 0usize;
    for app in system.launched_apps() {
        for spec in &system.workload(app).pages {
            if system.scheme().location_of(spec.page) != PageLocation::Absent {
                pages += 1;
            }
        }
    }
    pages * PAGE_SIZE
}

/// Process-lifecycle study: kills, cold-vs-warm relaunch latency and
/// retained data under lmkd on the kill-storm scenario.
#[must_use]
pub fn lifecycle(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Process lifecycle: kills and cold-vs-warm relaunch latency (kill storm, lmkd armed)",
        &[
            "scheme",
            "kills",
            "warm",
            "cold",
            "avg warm",
            "avg cold",
            "effective",
            "retained MB",
        ],
    );
    let scenario = TimedScenario::kill_storm();
    let base = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let scale = opts.scale;
    let rows = run_cells(evaluated_schemes(), |spec| {
        // A vendor-sized zpool (1/16 of the paper's 3 GB) that the storm
        // drives past what it can absorb.
        let config = base.with_zpool_shrink(16);
        let mut system = MobileSystem::new(spec, config);
        system.attach_oracle(&oracle);
        system.run_timed(&scenario);
        let full_scale = scale as f64;
        vec![
            spec.label(),
            system.kills().to_string(),
            system.measurements_of(RelaunchKind::Warm).len().to_string(),
            system.measurements_of(RelaunchKind::Cold).len().to_string(),
            fmt_unit(system.average_relaunch_millis_of(RelaunchKind::Warm), "ms"),
            fmt_unit(system.average_relaunch_millis_of(RelaunchKind::Cold), "ms"),
            fmt_unit(system.average_relaunch_millis(), "ms"),
            format!(
                "{:.1}",
                retained_bytes(&system) as f64 * full_scale / (1024.0 * 1024.0)
            ),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kills_of(table: &Table, scheme: &str) -> usize {
        table.row_by_key(scheme).unwrap()[1].parse().unwrap()
    }

    #[test]
    fn lifecycle_reports_all_five_schemes() {
        let table = lifecycle(&ExperimentOptions::quick());
        assert_eq!(table.row_count(), 5);
        let labels: Vec<&str> = table.rows().map(|r| r[0].as_str()).collect();
        assert_eq!(
            labels,
            vec!["DRAM", "SWAP", "ZRAM", "ZSWAP", "Ariadne-EHL-1K-2K-16K"]
        );
    }

    /// The headline claim of the lifecycle subsystem: under the same kill
    /// storm, ZRAM and SWAP stall enough that lmkd kills strictly more of
    /// their cached apps than Ariadne's, so they pay strictly more cold
    /// launches — while the optimistic DRAM bound is never killed at all.
    #[test]
    fn zram_and_swap_suffer_strictly_more_kills_than_ariadne() {
        let table = lifecycle(&ExperimentOptions::quick());
        let ariadne = kills_of(&table, "Ariadne-EHL-1K-2K-16K");
        let zram = kills_of(&table, "ZRAM");
        let swap = kills_of(&table, "SWAP");
        let dram = kills_of(&table, "DRAM");
        assert_eq!(dram, 0, "unlimited DRAM never stalls, never kills");
        assert!(zram > ariadne, "ZRAM kills {zram} vs Ariadne {ariadne}");
        assert!(swap > ariadne, "SWAP kills {swap} vs Ariadne {ariadne}");
    }

    #[test]
    fn kills_turn_into_cold_launches_reported_separately() {
        let table = lifecycle(&ExperimentOptions::quick());
        for row in table.rows() {
            let kills: usize = row[1].parse().unwrap();
            let cold: usize = row[3].parse().unwrap();
            assert_eq!(
                kills > 0,
                cold > 0,
                "{}: a scheme pays cold launches exactly when it was killed",
                row[0]
            );
        }
        // For the schemes whose warm path serves data from memory (ZRAM's
        // zpool, Ariadne's zpool + pre-decompression buffer) a cold launch
        // is strictly slower than a warm relaunch — the paper's core
        // motivation. (SWAP/ZSWAP can invert this: their "warm" relaunch
        // re-reads everything from flash, which the model prices above
        // rebuilding fresh pages in DRAM.)
        // Row order is fixed: DRAM, SWAP, ZRAM, ZSWAP, Ariadne.
        for (row, scheme) in [(2, "ZRAM"), (4, "Ariadne-EHL-1K-2K-16K")] {
            let cold_count: usize = table.row_by_key(scheme).unwrap()[3].parse().unwrap();
            if cold_count == 0 {
                continue;
            }
            let avg_warm = table.cell_f64(row, 4).unwrap();
            let avg_cold = table.cell_f64(row, 5).unwrap();
            assert!(
                avg_cold > avg_warm,
                "{scheme}: cold {avg_cold} ms must exceed warm {avg_warm} ms"
            );
        }
    }

    #[test]
    fn ariadne_retains_the_most_data_among_killing_schemes() {
        let table = lifecycle(&ExperimentOptions::quick());
        let retained =
            |scheme: &str| -> f64 { table.row_by_key(scheme).unwrap()[7].parse().unwrap() };
        // Effective memory capacity: Ariadne keeps more application data
        // reachable through the storm than ZRAM (which drops data on zpool
        // overflow) and at least as much as the flash-writing baselines.
        assert!(retained("Ariadne-EHL-1K-2K-16K") > retained("ZRAM"));
        assert!(retained("Ariadne-EHL-1K-2K-16K") >= retained("ZSWAP"));
    }
}
