//! The motivation experiments comparing DRAM, ZRAM and SWAP:
//! Figure 2 (relaunch latency), Figure 3 (reclaim CPU usage) and
//! Table 2 (energy).

use super::ExperimentOptions;
use crate::energy::EnergyModel;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::MobileSystem;
use ariadne_trace::{Scenario, ScenarioKind};
use ariadne_zram::OracleHandle;

const BASELINE_SCHEMES: [SchemeSpec; 3] = [SchemeSpec::Dram, SchemeSpec::Zram, SchemeSpec::Swap];

/// Figure 2: application relaunch latency under the three baseline swap
/// schemes (full-scale milliseconds).
#[must_use]
pub fn fig2(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 2: relaunch latency under DRAM / ZRAM / SWAP (ms)",
        &["app", "DRAM", "ZRAM", "SWAP"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    for app in opts.reported_apps() {
        let mut cells = vec![app.to_string()];
        for spec in BASELINE_SCHEMES {
            let mut system = MobileSystem::new(spec, config);
            system.attach_oracle(&oracle);
            system.run_scenario(&Scenario::relaunch_study(app));
            cells.push(fmt_unit(system.average_relaunch_millis(), "ms"));
        }
        table.push_row(cells);
    }
    table
}

/// Figure 3: CPU usage of the memory-reclaim procedure (kswapd) under the
/// three baseline schemes, in full-scale CPU seconds over the measurement
/// scenario.
#[must_use]
pub fn fig3(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 3: reclaim (kswapd) CPU usage (s)",
        &["scheme", "reclaim CPU", "normalized to SWAP"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let rounds = if opts.quick { 1 } else { 2 };
    let scenario = Scenario::heavy_switching(rounds);
    let mut results = Vec::new();
    for spec in BASELINE_SCHEMES {
        let mut system = MobileSystem::new(spec, config);
        system.attach_oracle(&oracle);
        system.run_scenario(&scenario);
        let cpu_seconds = system.cpu().reclaim_related().as_secs_f64() * opts.scale as f64;
        results.push((spec.label(), cpu_seconds));
    }
    let swap_cpu = results
        .iter()
        .find(|(label, _)| label == "SWAP")
        .map(|(_, s)| s.max(1e-9))
        .unwrap_or(1e-9);
    for (label, cpu_seconds) in results {
        table.push_row(vec![
            label,
            fmt_unit(cpu_seconds, "s"),
            fmt_unit(cpu_seconds / swap_cpu, "x"),
        ]);
    }
    table
}

/// Table 2: energy consumption under the three baseline schemes for the
/// light and heavy switching workloads.
#[must_use]
pub fn table2(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Table 2: energy consumption (J, 60 s window)",
        &["workload", "scheme", "energy", "normalized"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let model = EnergyModel::pixel7();
    let rounds = if opts.quick { 1 } else { 2 };
    for (kind, scenario) in [
        (ScenarioKind::Light, Scenario::light_switching(rounds)),
        (ScenarioKind::Heavy, Scenario::heavy_switching(rounds)),
    ] {
        // Application execution CPU over the 60 s window differs between the
        // light workload (1 s intermissions) and the heavy one (back-to-back
        // launches) but is identical across swap schemes.
        let baseline_cpu_seconds = match kind {
            ScenarioKind::Light => 8.0,
            _ => 22.0,
        };
        let mut energies = Vec::new();
        for spec in BASELINE_SCHEMES {
            let mut system = MobileSystem::new(spec, config);
            system.attach_oracle(&oracle);
            system.run_scenario(&scenario);
            let energy = model.energy_joules(
                60.0,
                baseline_cpu_seconds,
                system.cpu(),
                &system.stats().flash,
                opts.scale,
            );
            energies.push((spec.label(), energy));
        }
        let dram_energy = energies.first().map(|(_, e)| *e).unwrap_or(1.0);
        let label = match kind {
            ScenarioKind::Light => "Light",
            _ => "Heavy",
        };
        for (scheme, energy) in energies {
            table.push_row(vec![
                label.to_string(),
                scheme,
                fmt_unit(energy, "J"),
                format!("{:.3}", energy / dram_energy),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn fig2_shows_zram_and_swap_slower_than_dram() {
        let table = fig2(&opts());
        for row in table.rows() {
            let dram: f64 = row[1].trim_end_matches("ms").parse().unwrap();
            let zram: f64 = row[2].trim_end_matches("ms").parse().unwrap();
            let swap: f64 = row[3].trim_end_matches("ms").parse().unwrap();
            assert!(zram > dram, "{}: ZRAM {zram} vs DRAM {dram}", row[0]);
            assert!(swap > dram, "{}: SWAP {swap} vs DRAM {dram}", row[0]);
        }
    }

    #[test]
    fn fig3_shows_zram_reclaim_cpu_above_dram_and_swap() {
        let table = fig3(&opts());
        let dram = table.row_by_key("DRAM").unwrap()[1]
            .trim_end_matches('s')
            .parse::<f64>()
            .unwrap();
        let zram = table.row_by_key("ZRAM").unwrap()[1]
            .trim_end_matches('s')
            .parse::<f64>()
            .unwrap();
        let swap = table.row_by_key("SWAP").unwrap()[1]
            .trim_end_matches('s')
            .parse::<f64>()
            .unwrap();
        assert!(zram > dram, "zram {zram} vs dram {dram}");
        assert!(zram > swap, "zram {zram} vs swap {swap}");
    }

    #[test]
    fn table2_shows_zram_consuming_the_most_energy() {
        let table = table2(&opts());
        assert_eq!(table.row_count(), 6);
        for workload in ["Light", "Heavy"] {
            let values: Vec<f64> = table
                .rows()
                .filter(|r| r[0] == workload)
                .map(|r| r[2].trim_end_matches('J').parse::<f64>().unwrap())
                .collect();
            let (dram, zram, swap) = (values[0], values[1], values[2]);
            assert!(zram > dram, "{workload}: zram {zram} vs dram {dram}");
            assert!(zram > swap, "{workload}: zram {zram} vs swap {swap}");
            assert!(dram > 100.0 && dram < 300.0, "{workload}: dram {dram}");
        }
    }
}
