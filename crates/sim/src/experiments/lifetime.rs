//! The device-lifetime study: flash wear, thermal throttling and kill
//! behaviour over hours of simulated use, across device classes and
//! adversarial workload mixes.
//!
//! The rest of the evaluation measures seconds of usage on one flagship
//! device with well-behaved workloads. This experiment asks what a scheme
//! does to the *device* over the long run: it drives every scheme through
//! [`TimedScenario::lifetime`] — hours of sustained use with the low-memory
//! killer armed — on both catalog devices (a 2 GB entry phone with eMMC
//! flash and the paper's 12 GB flagship) under each adversarial mix
//! (calibrated baseline, incompressible page data, dirty/clean flip loops,
//! hog-then-exit churn). Flash wear accounting and the thermal throttling
//! model are both enabled, so the table reports write amplification, erase
//! cycles and thermally inflated CPU time next to kills and cold launches.

use super::lifecycle::evaluated_schemes;
use super::runner::run_cells;
use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::system::{MobileSystem, RelaunchKind, SimulationConfig};
use ariadne_compress::ThermalConfig;
use ariadne_trace::{AdversarialMix, DeviceClass, TimedScenario};
use ariadne_zram::{CompressionOracle, OracleHandle};

/// Wear-dependent latency inflation used by this experiment: each average
/// erase-block cycle consumed makes flash commands 10 % slower (an
/// aggressive but finite end-of-life model; the default everywhere else
/// stays 0, i.e. off).
pub const WEAR_LATENCY_PPM: u64 = 100_000;

/// Simulated hours of sustained use per cell.
#[must_use]
pub fn soak_hours(opts: &ExperimentOptions) -> u64 {
    if opts.quick {
        4
    } else {
        8
    }
}

/// One measured cell of the lifetime grid.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeOutcome {
    /// The simulated device.
    pub device: DeviceClass,
    /// The adversarial mix driving the workload.
    pub mix: AdversarialMix,
    /// The scheme label.
    pub scheme: String,
    /// Applications killed by lmkd over the soak.
    pub kills: usize,
    /// Warm relaunches measured.
    pub warm: usize,
    /// Post-kill cold launches measured.
    pub cold: usize,
    /// Average relaunch latency (all kinds) in full-scale milliseconds.
    pub avg_relaunch_millis: f64,
    /// Original bytes submitted to the compressor.
    pub bytes_before_compression: usize,
    /// Bytes the compressor produced.
    pub bytes_after_compression: usize,
    /// Host bytes the memoized oracle avoided re-synthesising.
    pub oracle_bytes_saved: usize,
    /// Write-amplification factor of the flash device (1.0 = none).
    pub waf: f64,
    /// Erase-block cycles consumed.
    pub erases: usize,
    /// Logical bytes written to flash.
    pub flash_bytes_written: usize,
    /// CPU time added by thermal throttling, in full-scale milliseconds.
    pub thermal_extra_millis: f64,
}

impl LifetimeOutcome {
    /// Net compression savings in the scheme's own ledger, in bytes
    /// (negative when compression *expanded* the data, as it must for
    /// incompressible pages).
    #[must_use]
    pub fn compression_savings(&self) -> i128 {
        self.bytes_before_compression as i128 - self.bytes_after_compression as i128
    }

    /// The composite row key used in the report table.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.device, self.mix, self.scheme)
    }
}

/// The configuration of one lifetime cell: the device's budgets and flash
/// speed class, wear-dependent latency inflation, the sustained-load
/// thermal model, and the mix's incompressible apps. Unlike the kill-storm
/// lifecycle experiment, no extra zpool shrink is applied — the device
/// catalog's own budgets are the point of the study (the entry class is
/// already tight). An [`ExperimentOptions::thermal`] override (the
/// `--thermal-off` flag) replaces the sustained-load default.
#[must_use]
pub fn cell_config(
    opts: &ExperimentOptions,
    device: DeviceClass,
    mix: AdversarialMix,
) -> SimulationConfig {
    opts.base_config()
        .with_device(device)
        .with_io(device.io().with_wear_latency_ppm(WEAR_LATENCY_PPM))
        .with_incompressible(mix.incompressible_apps())
        .with_thermal(opts.thermal.unwrap_or_else(ThermalConfig::sustained))
}

/// Run the full scheme × device × mix grid and return structured outcomes
/// in grid order (devices outermost, schemes innermost).
#[must_use]
pub fn grid(opts: &ExperimentOptions) -> Vec<LifetimeOutcome> {
    let hours = soak_hours(opts);
    // One scenario per mix, one oracle for the whole grid: every cell is
    // built from the same `(seed, scale)`, and the oracle key's
    // content-variant tag distinguishes poisoned from calibrated page bytes,
    // so mixes that poison different apps share every calibrated result
    // instead of re-compressing it four times. The entry cap scales with the
    // mix count because this one cache now holds what per-mix oracles used
    // to hold separately; the cap only bounds host memory — a memoized
    // result is bit-identical however it is obtained.
    let oracle =
        if opts.oracle {
            OracleHandle::new(CompressionOracle::new().with_max_entries(
                AdversarialMix::ALL.len() * CompressionOracle::DEFAULT_MAX_ENTRIES,
            ))
        } else {
            OracleHandle::enabled(false)
        };
    let scenarios: Vec<(AdversarialMix, TimedScenario)> = AdversarialMix::ALL
        .iter()
        .map(|&mix| (mix, TimedScenario::lifetime(mix, hours)))
        .collect();
    let mut cells = Vec::new();
    for &device in &DeviceClass::ALL {
        for (mix, scenario) in &scenarios {
            for spec in evaluated_schemes() {
                cells.push((device, *mix, scenario.clone(), oracle.clone(), spec));
            }
        }
    }
    let scale = opts.scale as f64;
    run_cells(cells, |(device, mix, scenario, oracle, spec)| {
        let config = cell_config(opts, device, mix);
        let mut system = MobileSystem::new(spec, config);
        system.attach_oracle(&oracle);
        system.run_timed(&scenario);
        let stats = system.stats().clone();
        LifetimeOutcome {
            device,
            mix,
            scheme: spec.label(),
            kills: system.kills(),
            warm: system.measurements_of(RelaunchKind::Warm).len(),
            cold: system.measurements_of(RelaunchKind::Cold).len(),
            avg_relaunch_millis: system.average_relaunch_millis(),
            bytes_before_compression: stats.bytes_before_compression,
            bytes_after_compression: stats.bytes_after_compression,
            oracle_bytes_saved: stats.oracle_bytes_saved,
            waf: stats.flash.waf(),
            erases: stats.flash.erases,
            flash_bytes_written: stats.flash.bytes_written,
            thermal_extra_millis: system.thermal_extra().as_millis_f64() * scale,
        }
    })
}

/// Device-lifetime study: kills, cold launches, write amplification and
/// thermally inflated CPU time per scheme × device class × adversarial mix.
#[must_use]
pub fn lifetime(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Device lifetime: kills, wear and thermal throttling over an hours-long soak",
        &[
            "device/mix/scheme",
            "kills",
            "warm",
            "cold",
            "avg relaunch",
            "WAF",
            "erases",
            "flash MB",
            "thermal",
            "saved MB",
        ],
    );
    let scale = opts.scale as f64;
    for outcome in grid(opts) {
        table.push_row(vec![
            outcome.key(),
            outcome.kills.to_string(),
            outcome.warm.to_string(),
            outcome.cold.to_string(),
            fmt_unit(outcome.avg_relaunch_millis, "ms"),
            format!("{:.3}", outcome.waf),
            outcome.erases.to_string(),
            format!(
                "{:.1}",
                outcome.flash_bytes_written as f64 * scale / (1024.0 * 1024.0)
            ),
            fmt_unit(outcome.thermal_extra_millis, "ms"),
            format!(
                "{:.1}",
                outcome.compression_savings() as f64 * scale / (1024.0 * 1024.0)
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick grid, run once and shared across every test in this
    /// module (a full run covers 40 cells of hours-long soaks).
    fn outcomes() -> &'static [LifetimeOutcome] {
        static GRID: std::sync::OnceLock<Vec<LifetimeOutcome>> = std::sync::OnceLock::new();
        GRID.get_or_init(|| grid(&ExperimentOptions::quick()))
    }

    fn cell<'a>(
        all: &'a [LifetimeOutcome],
        device: DeviceClass,
        mix: AdversarialMix,
        scheme: &str,
    ) -> &'a LifetimeOutcome {
        all.iter()
            .find(|o| o.device == device && o.mix == mix && o.scheme == scheme)
            .unwrap()
    }

    #[test]
    fn the_grid_covers_every_scheme_device_and_mix() {
        let all = outcomes();
        assert_eq!(
            all.len(),
            evaluated_schemes().len() * DeviceClass::ALL.len() * AdversarialMix::ALL.len()
        );
        let table = lifetime(&ExperimentOptions::quick());
        assert_eq!(table.row_count(), all.len());
        for outcome in all {
            assert!(table.row_by_key(&outcome.key()).is_some());
        }
    }

    /// Cliff: adversarially incompressible pages must never show
    /// compression savings in any scheme's ledger — the compressor can only
    /// break even or expand, on both devices.
    #[test]
    fn incompressible_apps_never_show_compression_savings() {
        let all = outcomes();
        for outcome in all
            .iter()
            .filter(|o| o.mix == AdversarialMix::Incompressible)
        {
            assert!(
                outcome.compression_savings() <= 0,
                "{}: {} bytes of impossible savings",
                outcome.key(),
                outcome.compression_savings()
            );
        }
        // The control: baseline pages do compress.
        for outcome in all
            .iter()
            .filter(|o| o.mix == AdversarialMix::Baseline && o.bytes_before_compression > 0)
        {
            assert!(
                outcome.compression_savings() > 0,
                "{}: calibrated pages must compress",
                outcome.key()
            );
        }
    }

    /// Cliff: on the 2 GB entry device under the baseline mix, Ariadne
    /// rides out the soak with strictly fewer lmkd kills — and therefore
    /// strictly fewer cold launches — than ZRAM and SWAP.
    #[test]
    fn ariadne_beats_zram_and_swap_on_kills_on_the_entry_device() {
        let all = outcomes();
        let ariadne = cell(
            all,
            DeviceClass::Entry2Gb,
            AdversarialMix::Baseline,
            "Ariadne-EHL-1K-2K-16K",
        );
        let zram = cell(all, DeviceClass::Entry2Gb, AdversarialMix::Baseline, "ZRAM");
        let swap = cell(all, DeviceClass::Entry2Gb, AdversarialMix::Baseline, "SWAP");
        let dram = cell(all, DeviceClass::Entry2Gb, AdversarialMix::Baseline, "DRAM");
        assert_eq!(dram.kills, 0, "unlimited DRAM never kills");
        assert!(
            zram.kills > ariadne.kills,
            "ZRAM kills {} vs Ariadne {}",
            zram.kills,
            ariadne.kills
        );
        assert!(
            swap.kills > ariadne.kills,
            "SWAP kills {} vs Ariadne {}",
            swap.kills,
            ariadne.kills
        );
        assert!(
            zram.cold > ariadne.cold && swap.cold > ariadne.cold,
            "cold launches must follow kills (zram {} swap {} ariadne {})",
            zram.cold,
            swap.cold,
            ariadne.cold
        );
    }

    /// Cliff: a dirty/clean flip loop recompresses the same pages over and
    /// over; the memoized oracle may serve those repeats, but its
    /// bytes-saved ledger can never exceed the bytes actually submitted
    /// for compression.
    #[test]
    fn flip_loops_do_not_inflate_the_oracle_savings_ledger() {
        for outcome in outcomes()
            .iter()
            .filter(|o| o.mix == AdversarialMix::FlipLoop)
        {
            assert!(
                outcome.oracle_bytes_saved <= outcome.bytes_before_compression,
                "{}: oracle claims {} saved of {} submitted",
                outcome.key(),
                outcome.oracle_bytes_saved,
                outcome.bytes_before_compression
            );
        }
    }

    /// Cliff: write amplification is pinned at exactly 1.0 for schemes that
    /// never touch flash, and is ≥ 1.0 wherever writeback happened; erase
    /// cycles only accrue where bytes were actually written.
    #[test]
    fn wear_only_accrues_where_flash_is_written() {
        for outcome in outcomes() {
            assert!(outcome.waf >= 1.0, "{}: WAF {}", outcome.key(), outcome.waf);
            if outcome.flash_bytes_written == 0 {
                assert_eq!(
                    outcome.erases,
                    0,
                    "{}: erases without writes",
                    outcome.key()
                );
            } else {
                assert!(
                    outcome.erases > 0,
                    "{}: writes without erases",
                    outcome.key()
                );
            }
        }
    }

    /// Thermal throttling is enabled for every cell, so any cell that
    /// compresses must also report thermally inflated CPU time.
    #[test]
    fn sustained_compression_heats_the_cpu() {
        for outcome in outcomes()
            .iter()
            .filter(|o| o.mix == AdversarialMix::Baseline)
        {
            if outcome.bytes_before_compression > 0 {
                assert!(
                    outcome.thermal_extra_millis > 0.0,
                    "{}: compression without thermal cost",
                    outcome.key()
                );
            } else {
                assert_eq!(outcome.thermal_extra_millis, 0.0, "{}", outcome.key());
            }
        }
    }
}
