//! The characterization experiments behind the paper's motivation and
//! insights: Table 1, Figures 4–6 and Table 3.

use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::MobileSystem;
use ariadne_compress::{Algorithm, ChunkSize, ChunkedCodec, CompressionRatio, LatencyModel};
use ariadne_mem::{Hotness, PageId, PAGE_SIZE};
use ariadne_trace::{
    measure_consecutive_probability, AppName, PageDataGenerator, Scenario, WorkloadBuilder,
};
use ariadne_zram::OracleHandle;
use std::collections::HashMap;

/// Table 1: anonymous data volume (MB) of five applications, 10 s and 5 min
/// after launch.
#[must_use]
pub fn table1(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Table 1: anonymous data volume (MB)",
        &["app", "10s", "5min"],
    );
    let early = WorkloadBuilder::new(opts.seed)
        .scale(opts.scale)
        .early_volume();
    let steady = WorkloadBuilder::new(opts.seed).scale(opts.scale);
    for app in AppName::REPORTED {
        let mb = |pages: usize| (pages * PAGE_SIZE * opts.scale) as f64 / (1024.0 * 1024.0);
        let at_10s = mb(early.build(app).total_pages());
        let at_5min = mb(steady.build(app).total_pages());
        table.push_row(vec![
            app.to_string(),
            format!("{at_10s:.0}"),
            format!("{at_5min:.0}"),
        ]);
    }
    table
}

/// Figure 4: proportion of hot, warm and cold data in each tenth of the
/// compressed data, ordered by compression time, under the baseline ZRAM.
#[must_use]
pub fn fig4(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 4: hotness share per compression-order decile (ZRAM)",
        &["app", "part", "hot", "warm", "cold"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    for app in opts.reported_apps() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, config);
        system.attach_oracle(&oracle);
        system.run_scenario(&Scenario::relaunch_study(app));
        let log = system.stats().compression_log.clone();
        if log.is_empty() {
            continue;
        }
        // Ground-truth hotness comes from the workloads, per owning app.
        let hotness_of = |page: PageId| -> Hotness {
            let name = AppName::ALL
                .iter()
                .find(|a| a.uid() == page.app().value())
                .copied()
                .unwrap_or(app);
            system
                .workload(name)
                .hotness_of(page)
                .unwrap_or(Hotness::Cold)
        };
        let parts = 10usize;
        let per_part = log.len().div_ceil(parts);
        for (part, chunk) in log.chunks(per_part).enumerate() {
            let mut counts: HashMap<Hotness, usize> = HashMap::new();
            for &page in chunk {
                *counts.entry(hotness_of(page)).or_insert(0) += 1;
            }
            let total = chunk.len().max(1) as f64;
            let share = |h: Hotness| *counts.get(&h).unwrap_or(&0) as f64 / total * 100.0;
            table.push_row(vec![
                app.to_string(),
                part.to_string(),
                fmt_unit(share(Hotness::Hot), "%"),
                fmt_unit(share(Hotness::Warm), "%"),
                fmt_unit(share(Hotness::Cold), "%"),
            ]);
        }
    }
    table
}

/// Figure 5: hot-data similarity and reused-data fraction between
/// consecutive relaunches.
#[must_use]
pub fn fig5(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 5: hot-data similarity and reuse across consecutive relaunches",
        &["app", "hot data similarity", "reused data"],
    );
    let builder = WorkloadBuilder::new(opts.seed).scale(opts.scale);
    for app in opts.reported_apps() {
        let workload = builder.build(app);
        let pairs = workload.relaunches.len().saturating_sub(1).max(1);
        let mut similarity = 0.0;
        let mut reuse = 0.0;
        for i in 0..workload.relaunches.len().saturating_sub(1) {
            similarity += workload.hot_similarity_between(i).unwrap_or(0.0);
            reuse += workload.reuse_between(i).unwrap_or(0.0);
        }
        table.push_row(vec![
            app.to_string(),
            fmt_unit(similarity / pairs as f64 * 100.0, "%"),
            fmt_unit(reuse / pairs as f64 * 100.0, "%"),
        ]);
    }
    table
}

/// Figure 6: compression latency, decompression latency and compression
/// ratio across chunk sizes from 128 B to 128 KiB, for LZ4 and LZO.
///
/// Ratios are measured by genuinely compressing synthetic anonymous data;
/// latencies report what the calibrated cost model predicts for the paper's
/// 576 MB corpus on the Pixel 7 (see DESIGN.md for the substitution).
#[must_use]
pub fn fig6(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Figure 6: chunk-size sweep (576 MB equivalent)",
        &["algorithm", "chunk", "CompTime", "DecompTime", "CompRatio"],
    );
    // Sample corpus: pages from several applications, interleaved. One
    // up-front allocation; pages are synthesized in place.
    let sample_pages_per_app = if opts.quick { 64 } else { 512 };
    let generator = PageDataGenerator::new(opts.seed);
    let apps = opts.reported_apps();
    let mut corpus = vec![0u8; apps.len() * sample_pages_per_app * PAGE_SIZE];
    for (app_index, app) in apps.iter().enumerate() {
        let profile = app.profile();
        for pfn in 0..sample_pages_per_app {
            let page = PageId::new(
                ariadne_mem::AppId::new(app.uid()),
                ariadne_mem::Pfn::new(pfn as u64),
            );
            let at = (app_index * sample_pages_per_app + pfn) * PAGE_SIZE;
            let buf: &mut [u8; PAGE_SIZE] = (&mut corpus[at..at + PAGE_SIZE])
                .try_into()
                .expect("page-sized slice");
            generator.fill_page_bytes(&profile, page, buf);
        }
    }

    let model = LatencyModel::pixel7();
    let full_corpus_bytes = 576 * 1024 * 1024usize;
    let sweep = if opts.quick {
        vec![
            ChunkSize::new(128).unwrap(),
            ChunkSize::k4(),
            ChunkSize::k128(),
        ]
    } else {
        ChunkSize::figure6_sweep()
    };
    // Every (algorithm × chunk) pair is an independent sweep point over the
    // shared read-only corpus, so the pairs run on the work-stealing cell
    // runner. Each worker thread reuses one scratch arena across all the
    // points it claims (the 128 B sweep alone is ~80k chunks), and the
    // size-only entry point skips building a CompressedImage. Rows merge in
    // pair order, so the table is byte-identical to the serial sweep.
    let pairs: Vec<(Algorithm, ChunkSize)> = [Algorithm::Lz4, Algorithm::Lzo]
        .into_iter()
        .flat_map(|algorithm| sweep.iter().map(move |&chunk| (algorithm, chunk)))
        .collect();
    let corpus = &corpus;
    let model = &model;
    let rows = super::runner::run_cells(pairs, |(algorithm, chunk)| {
        thread_local! {
            static SWEEP_SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let lens = SWEEP_SCRATCH.with(|scratch| {
            let codec = ChunkedCodec::new(algorithm, chunk);
            codec
                .compressed_len_only(corpus, &mut scratch.borrow_mut())
                .expect("compression cannot fail")
        });
        let ratio = CompressionRatio::from_sizes(lens.original_len, lens.compressed_len).value();
        let comp = model.compression_cost(algorithm, chunk, full_corpus_bytes);
        let decomp = model.decompression_cost(algorithm, chunk, full_corpus_bytes);
        vec![
            algorithm.to_string(),
            chunk.to_string(),
            fmt_unit(comp.as_secs_f64(), "s"),
            fmt_unit(decomp.as_secs_f64(), "s"),
            fmt_unit(ratio, "x"),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Table 3: probability of accessing two or four consecutive zpool pages
/// while swapping in during a relaunch (measured on the ZRAM baseline's
/// swap-in sector trace).
#[must_use]
pub fn table3(opts: &ExperimentOptions) -> Table {
    let mut table = Table::new(
        "Table 3: probability of consecutive zpool accesses during relaunch",
        &["app", "2 consecutive", "4 consecutive"],
    );
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    for app in opts.reported_apps() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, config);
        system.attach_oracle(&oracle);
        system.run_scenario(&Scenario::relaunch_study(app));
        let trace = &system.stats().swapin_sector_trace;
        let p2 = measure_consecutive_probability(trace, 2);
        let p4 = measure_consecutive_probability(trace, 4);
        table.push_row(vec![
            app.to_string(),
            format!("{p2:.2}"),
            format!("{p4:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn table1_reproduces_the_published_volumes_within_scaling_error() {
        let table = table1(&ExperimentOptions {
            scale: 64,
            ..ExperimentOptions::quick()
        });
        assert_eq!(table.row_count(), 5);
        let youtube = table.row_by_key("Youtube").unwrap().to_vec();
        let at_5min: f64 = youtube[2].parse().unwrap();
        assert!((at_5min - 358.0).abs() < 20.0, "5min volume {at_5min}");
    }

    #[test]
    fn fig5_matches_the_papers_averages() {
        let table = fig5(&opts());
        assert!(table.row_count() >= 2);
        for row in table.rows() {
            let similarity = row[1].trim_end_matches('%').parse::<f64>().unwrap();
            let reuse = row[2].trim_end_matches('%').parse::<f64>().unwrap();
            assert!(similarity > 50.0 && similarity < 90.0);
            assert!(reuse > 90.0);
        }
    }

    #[test]
    fn fig6_shows_the_latency_ratio_tradeoff() {
        let table = fig6(&opts());
        // First row is LZ4 at 128 B, last LZO at 128 KiB.
        let small_ratio = table.cell_f64(0, 4).unwrap();
        let rows = table.row_count();
        let large_ratio = table.cell_f64(rows - 1, 4).unwrap();
        assert!(large_ratio > small_ratio, "{large_ratio} vs {small_ratio}");
        let small_time = table.cell_f64(0, 2).unwrap();
        let large_time = table.cell_f64(rows / 2 - 1, 2).unwrap(); // LZ4 at 128K
        assert!(large_time > 20.0 * small_time);
    }

    #[test]
    fn fig4_and_table3_run_on_the_zram_baseline() {
        let table4 = fig4(&opts());
        assert!(table4.row_count() >= 10, "expected at least one decile set");
        let table3 = table3(&opts());
        assert_eq!(table3.row_count(), opts().reported_apps().len());
        for row in table3.rows() {
            let p2: f64 = row[1].parse().unwrap();
            let p4: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&p2));
            assert!(p4 <= p2 + 1e-9);
        }
    }
}
