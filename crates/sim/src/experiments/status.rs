//! `experiments status`: a one-shot, human-readable device health report
//! in the spirit of `zramctl`/`systemd-analyze` — run the lifecycle kill
//! storm once per scheme with the observability sinks attached and print
//! what the metrics registry saw: relaunch-latency quantiles, fault and
//! kill counts, compression-ratio distribution, writeback traffic and the
//! PSI signal. The report is deterministic for a given `(seed, scale)`.

use super::ExperimentOptions;
use crate::schemes::SchemeSpec;
use crate::system::{MobileSystem, RelaunchKind};
use ariadne_core::SizeConfig;
use ariadne_obs::metrics::names;
use ariadne_obs::{Histogram, MetricsHandle};
use ariadne_trace::TimedScenario;
use std::fmt::Write as _;

/// The schemes the status report covers, in reporting order.
fn schemes() -> Vec<(&'static str, SchemeSpec)> {
    vec![
        ("zram", SchemeSpec::Zram),
        ("zswap", SchemeSpec::Zswap),
        ("ariadne", SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16())),
    ]
}

/// Render one histogram as `p50/p90/p99` in milliseconds (values are
/// recorded in full-scale microseconds).
fn quantile_line(histogram: Option<&Histogram>) -> String {
    match histogram {
        Some(h) if h.count() > 0 => {
            let ms = |q: f64| h.quantile(q).unwrap_or(0) as f64 / 1_000.0;
            format!(
                "p50 {:.1} ms  p90 {:.1} ms  p99 {:.1} ms  ({} samples)",
                ms(0.5),
                ms(0.9),
                ms(0.99),
                h.count()
            )
        }
        _ => "no samples".to_string(),
    }
}

/// Build the status report under `opts` (see the module docs).
#[must_use]
pub fn status(opts: &ExperimentOptions) -> String {
    let scenario = TimedScenario::kill_storm();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ariadne device status (seed={}, scale=1/{}, scenario=kill-storm)",
        opts.seed, opts.scale
    );
    for (label, spec) in schemes() {
        let config = opts.base_config().with_zpool_shrink(16);
        let metrics = MetricsHandle::new_registry();
        let mut system = MobileSystem::new(spec, config);
        system.attach_metrics(&metrics);
        system.run_timed(&scenario);
        let registry = metrics.snapshot().unwrap_or_default();

        let _ = writeln!(out, "\nscheme {label}");
        let _ = writeln!(
            out,
            "  relaunch warm:  {}",
            quantile_line(registry.histogram(names::RELAUNCH_WARM_MICROS))
        );
        let _ = writeln!(
            out,
            "  relaunch cold:  {}",
            quantile_line(registry.histogram(names::RELAUNCH_COLD_MICROS))
        );
        let _ = writeln!(
            out,
            "  averages:       warm {:.1} ms, cold {:.1} ms (full scale)",
            system.average_relaunch_millis_of(RelaunchKind::Warm),
            system.average_relaunch_millis_of(RelaunchKind::Cold)
        );
        let _ = writeln!(
            out,
            "  faults:         {} dram-miss, io-stall {}",
            registry.counter(names::FAULTS),
            quantile_line(registry.histogram(names::IO_STALL_MICROS))
        );
        let ratio = registry
            .histogram(names::COMPRESSION_RATIO_PCT)
            .and_then(|h| h.quantile(0.5))
            .map_or("n/a".to_string(), |p| format!("{p}%"));
        let _ = writeln!(
            out,
            "  compression:    {} ops, {} decompressions, median ratio {}",
            registry.counter(names::COMPRESS_OPS),
            registry.counter(names::DECOMPRESS_OPS),
            ratio
        );
        let _ = writeln!(
            out,
            "  writeback:      {} commands, {} pages",
            registry.counter(names::WRITEBACK_COMMANDS),
            registry.counter(names::WRITEBACK_PAGES)
        );
        let _ = writeln!(
            out,
            "  pressure:       {} kills, {} wakes, psi(some) {} ppm",
            registry.counter(names::KILLS),
            registry.counter(names::PRESSURE_WAKES),
            system.psi_ppm()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_report_is_deterministic_and_covers_every_scheme() {
        let opts = ExperimentOptions::quick();
        let first = status(&opts);
        let second = status(&opts);
        assert_eq!(first, second, "status must be deterministic");
        for label in ["zram", "zswap", "ariadne"] {
            assert!(first.contains(&format!("scheme {label}")), "{first}");
        }
        assert!(first.contains("relaunch warm:"));
        assert!(first.contains("psi(some)"));
    }

    #[test]
    fn attaching_the_status_metrics_does_not_change_results() {
        // `status` attaches a registry; the identity contract says the
        // simulated numbers it prints match an unobserved run.
        let opts = ExperimentOptions::quick();
        let config = opts.base_config().with_zpool_shrink(16);
        let scenario = TimedScenario::kill_storm();
        let mut plain = MobileSystem::new(SchemeSpec::Zswap, config);
        plain.run_timed(&scenario);
        let metrics = MetricsHandle::new_registry();
        let mut observed = MobileSystem::new(SchemeSpec::Zswap, config);
        observed.attach_metrics(&metrics);
        observed.run_timed(&scenario);
        assert_eq!(plain.measurements(), observed.measurements());
        assert_eq!(plain.psi_ppm(), observed.psi_ppm());
    }
}
