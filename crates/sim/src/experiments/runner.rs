//! The deterministic parallel experiment runner.
//!
//! Experiment cells — a [`SchemeSpec`] × scenario pair, or a whole named
//! experiment table — are independent simulations: each constructs its own
//! [`MobileSystem`] from a seeded [`SimulationConfig`], so no state is
//! shared between cells. The runner exploits that by spawning cells onto
//! their own OS threads (there is no work stealing and no shared queue to
//! introduce scheduling nondeterminism), **capped at the host's available
//! parallelism**: cells are split into deterministic chunks of at most that
//! many threads, each chunk is spawned and joined **in spawn order**, and
//! only then does the next chunk start. The merge order is therefore a pure
//! function of the input order — byte-identical to the serial path for the
//! same `(seed, scale)` — while a 100-cell grid no longer spawns 100
//! simultaneous OS threads. The determinism regression tests in
//! `tests/determinism.rs` pin both properties.

use super::ExperimentOptions;
use crate::report::Table;
use crate::schemes::SchemeSpec;
use crate::system::{MobileSystem, SimulationConfig};
use ariadne_mem::CpuActivity;
use ariadne_trace::TimedScenario;

/// The cap on simultaneously live experiment threads: the host's available
/// parallelism (falling back to 8 when the platform cannot report it —
/// over-subscribing slightly is harmless, unbounded spawning is not).
#[must_use]
pub fn max_parallel_cells() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
        .max(1)
}

/// Run `run` over every cell, at most [`max_parallel_cells`] threads at a
/// time, and merge the results in input order (chunked spawn-order joins
/// keep the merge deterministic). Panics in a cell propagate to the caller.
pub fn run_cells<I, O, F>(cells: Vec<I>, run: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let cap = max_parallel_cells();
    let mut outputs = Vec::with_capacity(cells.len());
    let run = &run;
    let mut remaining = cells.into_iter();
    loop {
        let chunk: Vec<I> = remaining.by_ref().take(cap).collect();
        if chunk.is_empty() {
            break;
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .into_iter()
                .map(|cell| scope.spawn(move || run(cell)))
                .collect();
            for handle in handles {
                outputs.push(handle.join().expect("experiment cell panicked"));
            }
        });
    }
    outputs
}

/// One cell of a scheme × scenario grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The scheme to instantiate.
    pub spec: SchemeSpec,
    /// The timed scenario to drive it with.
    pub scenario: TimedScenario,
}

/// The summarized outcome of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// The scheme label (e.g. `ZRAM`, `Ariadne-EHL-1K-2K-16K`).
    pub scheme: String,
    /// The scenario name.
    pub scenario: String,
    /// Average relaunch latency in full-scale milliseconds.
    pub average_relaunch_millis: f64,
    /// Number of relaunches measured.
    pub relaunches: usize,
    /// Compression operations performed.
    pub compression_ops: usize,
    /// Decompression operations performed.
    pub decompression_ops: usize,
    /// Pages whose data was dropped (lost) along the way.
    pub dropped_pages: usize,
    /// Pre-decompression buffer hits (Ariadne only).
    pub predecomp_hits: usize,
    /// Pressure spikes absorbed.
    pub pressure_spikes: usize,
    /// Reclaim-related CPU in full-scale milliseconds.
    pub reclaim_cpu_millis: f64,
    /// Events dispatched by the engine.
    pub events: usize,
}

/// Run every grid cell on its own thread (one [`MobileSystem`] each) and
/// return the outcomes in cell order.
#[must_use]
pub fn run_grid(config: SimulationConfig, cells: Vec<GridCell>) -> Vec<GridOutcome> {
    // One oracle for the whole grid: every cell is built from the same
    // `(seed, scale)`, so the page bytes cell B compresses are the ones
    // cell A already compressed.
    let oracle = ariadne_zram::OracleHandle::enabled(config.oracle);
    run_cells(cells, |cell| {
        let mut system = MobileSystem::new(cell.spec, config);
        system.attach_oracle(&oracle);
        system.run_timed(&cell.scenario);
        let stats = system.stats();
        let reclaim_cpu = system.cpu().total_for(CpuActivity::ReclaimScan)
            + system.cpu().total_for(CpuActivity::Compression);
        GridOutcome {
            scheme: cell.spec.label(),
            scenario: cell.scenario.name.clone(),
            average_relaunch_millis: system.average_relaunch_millis(),
            relaunches: system.measurements().len(),
            compression_ops: stats.compression_ops,
            decompression_ops: stats.decompression_ops,
            dropped_pages: stats.dropped_pages,
            predecomp_hits: stats.predecomp_hits,
            pressure_spikes: system.pressure_spikes(),
            reclaim_cpu_millis: reclaim_cpu.as_millis_f64() * config.scale as f64,
            events: system.events_processed(),
        }
    })
}

/// Run the named experiments in parallel — one thread per experiment —
/// returning `(name, table)` pairs in the order the names were given.
/// Unknown names yield `None`, exactly like [`super::run_by_name`].
#[must_use]
pub fn run_named_parallel(
    names: &[String],
    opts: &ExperimentOptions,
) -> Vec<(String, Option<Table>)> {
    let cells: Vec<String> = names.to_vec();
    run_cells(cells, |name| {
        let table = super::run_by_name(&name, opts);
        (name, table)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_merges_in_input_order() {
        // Cells deliberately finish out of order (larger inputs spin more).
        let inputs: Vec<u64> = vec![400, 1, 200, 3];
        let outputs = run_cells(inputs.clone(), |n| {
            let mut acc = 0u64;
            for i in 0..n * 1000 {
                acc = acc.wrapping_add(i);
            }
            (n, acc & 1, acc | 1) // value depends on n only
        });
        let order: Vec<u64> = outputs.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(order, inputs);
    }

    #[test]
    fn run_cells_never_exceeds_available_parallelism() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cap = max_parallel_cells();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        // Far more cells than the cap: the chunked spawner must throttle.
        let cells: Vec<usize> = (0..cap * 4 + 3).collect();
        let outputs = run_cells(cells.clone(), |n| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
            n * 2
        });
        assert!(
            peak.load(Ordering::SeqCst) <= cap,
            "peak {} threads exceeded the cap {cap}",
            peak.load(Ordering::SeqCst)
        );
        let expected: Vec<usize> = cells.iter().map(|n| n * 2).collect();
        assert_eq!(outputs, expected, "merge order must stay the input order");
    }

    #[test]
    fn grid_outcomes_preserve_cell_order_and_labels() {
        let config = SimulationConfig::new(7).with_scale(1024);
        let scenario = TimedScenario::concurrent_relaunch_storm();
        let cells = vec![
            GridCell {
                spec: SchemeSpec::Dram,
                scenario: scenario.clone(),
            },
            GridCell {
                spec: SchemeSpec::Zram,
                scenario: scenario.clone(),
            },
        ];
        let outcomes = run_grid(config, cells);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scheme, "DRAM");
        assert_eq!(outcomes[1].scheme, "ZRAM");
        assert_eq!(outcomes[0].scenario, "concurrent-relaunch-storm");
        assert!(outcomes[0].relaunches > 0);
        // ZRAM pays compression where DRAM does not.
        assert_eq!(outcomes[0].compression_ops, 0);
        assert!(outcomes[1].compression_ops > 0);
    }

    #[test]
    fn parallel_named_runs_match_the_serial_path() {
        let opts = ExperimentOptions::quick();
        let names = vec!["table1".to_string(), "nonsense".to_string()];
        let parallel = run_named_parallel(&names, &opts);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].0, "table1");
        let serial = super::super::run_by_name("table1", &opts).unwrap();
        assert_eq!(parallel[0].1.as_ref().unwrap().to_json(), serial.to_json());
        assert!(parallel[1].1.is_none());
    }
}
